"""Vectorised multi-replica annealing: M replicas per instance in lock-step.

The scalar solvers advance one configuration at a time; this package advances
a whole replica batch per NumPy operation -- batched single-flip deltas and
full-energy evaluation on the QUBO matrices (:mod:`repro.batched.kernels`),
lock-step replica engines that preserve per-replica ``Generator`` streams for
exact scalar parity (:mod:`repro.batched.engine`), a batch-of-chips mode
that runs per-trial device ``variability`` as one slice of the hardware
stack's device axis per trial (see ARCHITECTURE.md), and drop-in batched
trial functions for the runtime's ``"hycim"``, ``"sa"`` and ``"dqubo"``
solvers (:mod:`repro.batched.trials`).

The front door is :func:`repro.runtime.run_trials` with
``backend="vectorized"`` (whole batch in-process) or ``replicas_per_task`` on
the process backend (vectorised groups inside each worker task); both produce
per-seed results identical to the serial backend in software mode on
integer-valued objective data (the paper's QKP benchmarks -- float
coefficients agree to floating-point tolerance, see
:mod:`repro.batched.kernels`).

The engines' control loops (temperature tables, acceptance, replica
exchange, RNG topology) are owned by :mod:`repro.dynamics`;
``run_trials(..., dynamics=ParallelTempering())`` runs a replica batch as
one tempered ladder with exchange at the iteration boundaries the replicas
already share.
"""

from repro.batched.engine import BatchedHyCiMSolver, BatchedSimulatedAnnealer
from repro.batched.kernels import (
    as_replica_matrix,
    batched_energies,
    batched_energy_delta,
    batched_inequality_verdicts,
)
from repro.batched.trials import (
    dqubo_batched_trials,
    hycim_batched_trials,
    sa_batched_trials,
)

__all__ = [
    "BatchedHyCiMSolver",
    "BatchedSimulatedAnnealer",
    "as_replica_matrix",
    "batched_energies",
    "batched_energy_delta",
    "batched_inequality_verdicts",
    "dqubo_batched_trials",
    "hycim_batched_trials",
    "sa_batched_trials",
]

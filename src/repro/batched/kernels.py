"""Batched NumPy kernels for multi-replica annealing.

These are the vectorised counterparts of the scalar hot-path primitives the
solvers call once per proposal: full QUBO evaluation
(:meth:`repro.core.qubo.QUBOModel.energy`), the O(n) single-flip delta
(:meth:`~repro.core.qubo.QUBOModel.energy_delta`) and the inequality
feasibility test (:meth:`repro.core.constraints.InequalityConstraint.
is_satisfied`).  Each kernel takes an ``(M, n)`` configuration matrix -- one
replica per row -- and returns one value per replica, so ``M`` replicas cost
one BLAS call instead of ``M`` Python round-trips.

All kernels are numerically *identical* to their scalar counterparts when the
coefficient data is integer-valued (every intermediate is an exactly
representable float64 integer, so summation order cannot change the result).
For float coefficients they agree to normal floating-point tolerance; the
scalar-parity suite under ``tests/batched`` therefore uses the paper's
integer-valued QKP family for its exact-match assertions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "as_replica_matrix",
    "batched_energies",
    "batched_energy_delta",
    "batched_inequality_verdicts",
]


def as_replica_matrix(configurations: np.ndarray, num_variables: int) -> np.ndarray:
    """Validate and coerce a replica batch into a float ``(M, n)`` matrix."""
    batch = np.asarray(configurations, dtype=float)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.ndim != 2 or batch.shape[1] != num_variables:
        raise ValueError(
            f"expected an (M, {num_variables}) replica matrix, got shape {batch.shape}"
        )
    if not np.all((batch == 0) | (batch == 1)):
        raise ValueError("replica configurations must be binary (0/1)")
    return batch


def batched_energies(matrix: np.ndarray, batch: np.ndarray,
                     offset: float = 0.0) -> np.ndarray:
    """``x_k^T Q x_k + offset`` for every row ``x_k`` of ``batch``.

    Equivalent to ``[QUBOModel.energy(row) for row in batch]`` in a single
    ``(M, n) x (n, n)`` product followed by a row-wise dot.
    """
    return ((batch @ matrix) * batch).sum(axis=1) + offset


def batched_energy_delta(matrix: np.ndarray, batch: np.ndarray,
                         flip_indices: np.ndarray,
                         symmetric: Optional[np.ndarray] = None) -> np.ndarray:
    """Energy change of flipping bit ``flip_indices[k]`` in row ``k``.

    Vectorised translation of :meth:`QUBOModel.energy_delta`: the flipped
    variable's contribution is its diagonal term plus its couplings to the
    other set bits (the upper triangle holds the full pairwise coefficient,
    so both the row and the column slice contribute).

    ``symmetric`` optionally supplies the precomputed ``matrix + matrix.T``
    -- callers evaluating many flip rounds against one matrix (the lock-step
    engines) pass it to halve the per-round gather work.
    """
    flips = np.asarray(flip_indices, dtype=np.intp)
    if flips.shape != (batch.shape[0],):
        raise ValueError(
            f"flip_indices must have one entry per replica, got shape {flips.shape}"
        )
    if flips.size and (flips.min() < 0 or flips.max() >= matrix.shape[0]):
        raise IndexError("a flip index is out of range")
    if symmetric is None:
        symmetric = matrix + matrix.T
    rows = np.arange(batch.shape[0])
    # symmetric's diagonal holds 2 * Q_ii; the flipped bit must not couple to
    # itself, so subtract its own contribution and add the linear term back.
    diag = matrix[flips, flips]
    current_bits = batch[rows, flips]
    coupling = (symmetric[flips] * batch).sum(axis=1) - 2.0 * diag * current_bits
    contribution = diag + coupling
    return (1.0 - 2.0 * current_bits) * contribution


def batched_inequality_verdicts(weights: np.ndarray, bound: float,
                                batch: np.ndarray,
                                tolerance: float = 1e-9) -> np.ndarray:
    """``w . x_k <= bound`` for every row, with the scalar path's tolerance.

    Mirrors :meth:`InequalityConstraint.is_satisfied` (which compares against
    ``bound + 1e-9``) so batched and scalar feasibility verdicts agree bit for
    bit on integer weight data.
    """
    return (batch @ np.asarray(weights, dtype=float)) <= bound + tolerance

"""Batched NumPy kernels for multi-replica annealing.

These are the vectorised counterparts of the scalar hot-path primitives the
solvers call once per proposal: full QUBO evaluation
(:meth:`repro.core.qubo.QUBOModel.energy`), the O(n) single-flip delta
(:meth:`~repro.core.qubo.QUBOModel.energy_delta`) and the inequality
feasibility test (:meth:`repro.core.constraints.InequalityConstraint.
is_satisfied`).  Each kernel takes an ``(M, n)`` configuration matrix -- one
replica per row -- and returns one value per replica, so ``M`` replicas cost
one BLAS call instead of ``M`` Python round-trips.

All kernels are numerically *identical* to their scalar counterparts when the
coefficient data is integer-valued (every intermediate is an exactly
representable float64 integer, so summation order cannot change the result).
For float coefficients they agree to normal floating-point tolerance; the
scalar-parity suite under ``tests/batched`` therefore uses the paper's
integer-valued QKP family for its exact-match assertions.

``matrix`` may be a dense ``(n, n)`` array or a SciPy CSR matrix (anything
with a ``tocsr`` method, e.g. :class:`repro.core.sparse.SparseQUBOModel`'s
payload): the energy kernels detect sparsity by duck-typing and return the
same dense per-replica results, so n=10k instances whose dense matrix would
not fit run through the identical call sites.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.sparse import is_sparse_matrix, symmetrized_matrix

__all__ = [
    "as_replica_matrix",
    "batched_energies",
    "batched_energy_delta",
    "batched_inequality_verdicts",
    "is_sparse_matrix",
    "symmetrized_matrix",
]


def as_replica_matrix(configurations: np.ndarray, num_variables: int,
                      validate: bool = True) -> np.ndarray:
    """Validate and coerce a replica batch into a float ``(M, n)`` matrix.

    ``validate=False`` skips the binary-entries scan (the shape check is
    kept -- it is O(1) and shape bugs are the dangerous ones): internal call
    sites that already own a validated batch, such as the engines re-entering
    with their own travelling state, use it to avoid an O(M*n) pass per call.
    Public entry points must leave validation on.
    """
    batch = np.asarray(configurations, dtype=float)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.ndim != 2 or batch.shape[1] != num_variables:
        raise ValueError(
            f"expected an (M, {num_variables}) replica matrix, got shape {batch.shape}"
        )
    if validate and not np.all((batch == 0) | (batch == 1)):
        raise ValueError("replica configurations must be binary (0/1)")
    return batch


def batched_energies(matrix: np.ndarray, batch: np.ndarray,
                     offset: float = 0.0) -> np.ndarray:
    """``x_k^T Q x_k + offset`` for every row ``x_k`` of ``batch``.

    Equivalent to ``[QUBOModel.energy(row) for row in batch]`` in a single
    ``(M, n) x (n, n)`` product followed by a row-wise dot.  A CSR ``matrix``
    takes the same product through scipy's dense-times-sparse path.
    """
    if is_sparse_matrix(matrix):
        product = np.asarray(batch @ matrix)
        return (product * batch).sum(axis=1) + offset
    return ((batch @ matrix) * batch).sum(axis=1) + offset


def batched_energy_delta(matrix: np.ndarray, batch: np.ndarray,
                         flip_indices: np.ndarray,
                         symmetric: Optional[np.ndarray] = None) -> np.ndarray:
    """Energy change of flipping bit ``flip_indices[k]`` in row ``k``.

    Vectorised translation of :meth:`QUBOModel.energy_delta`: the flipped
    variable's contribution is its diagonal term plus its couplings to the
    other set bits (the upper triangle holds the full pairwise coefficient,
    so both the row and the column slice contribute).

    ``symmetric`` optionally supplies the precomputed ``matrix + matrix.T``
    -- callers evaluating many flip rounds against one matrix (the lock-step
    engines) pass it to halve the per-round gather work.
    """
    flips = np.asarray(flip_indices, dtype=np.intp)
    if flips.shape != (batch.shape[0],):
        raise ValueError(
            f"flip_indices must have one entry per replica, got shape {flips.shape}"
        )
    if flips.size and (flips.min() < 0 or flips.max() >= matrix.shape[0]):
        raise IndexError("a flip index is out of range")
    if symmetric is None:
        symmetric = symmetrized_matrix(matrix)
    rows = np.arange(batch.shape[0])
    # symmetric's diagonal holds 2 * Q_ii; the flipped bit must not couple to
    # itself, so subtract its own contribution and add the linear term back.
    current_bits = batch[rows, flips]
    if is_sparse_matrix(matrix):
        diag = np.asarray(matrix.diagonal())[flips]
        gathered = symmetric[flips]
        coupling = (np.asarray(gathered.multiply(batch).sum(axis=1)).ravel()
                    - 2.0 * diag * current_bits)
    else:
        diag = matrix[flips, flips]
        coupling = ((symmetric[flips] * batch).sum(axis=1)
                    - 2.0 * diag * current_bits)
    contribution = diag + coupling
    return (1.0 - 2.0 * current_bits) * contribution


def batched_inequality_verdicts(weights: np.ndarray, bound: float,
                                batch: np.ndarray,
                                tolerance: float = 1e-9) -> np.ndarray:
    """``w . x_k <= bound`` for every row, with the scalar path's tolerance.

    Mirrors :meth:`InequalityConstraint.is_satisfied` (which compares against
    ``bound + 1e-9``) so batched and scalar feasibility verdicts agree bit for
    bit on integer weight data.
    """
    return (batch @ np.asarray(weights, dtype=float)) <= bound + tolerance

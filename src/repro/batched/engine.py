"""Lock-step multi-replica annealing engines (vectorised over replicas).

The paper's evaluation protocol runs many independent SA replicas per
instance; the scalar solvers (:class:`~repro.annealing.sa.SimulatedAnnealer`,
:class:`~repro.annealing.hycim.HyCiMSolver`) advance one configuration at a
time through Python-level loops, so the crossbar -- which in hardware
evaluates a whole array in one shot -- is simulated one candidate at a time.
The engines in this module advance ``M`` replicas per instance in lock-step:
every iteration proposes one move per replica, checks feasibility for all
replicas with one batched filter evaluation, evaluates all feasible
candidates with one batched QUBO computation (crossbar MVM in hardware mode,
one BLAS product in software mode) and applies the Metropolis rule per
replica.

**Scalar parity.**  Each replica owns its own :class:`numpy.random.Generator`
and the engines consume those streams in exactly the order the scalar solvers
do (one move draw per proposal, one uniform draw per feasible candidate), so
for fixed per-replica seeds the vectorised trajectories -- energies,
accept/reject decisions, final configurations -- are *identical* to ``M``
independent scalar runs in software mode (bit-for-bit on the integer-valued
paper benchmarks) and match within floating-point tolerance in ideal-hardware
mode, where the batched crossbar/filter arithmetic may associate sums
differently.  Hardware non-idealities that draw from a *shared* device RNG
(crossbar read noise on a shared chip) keep per-replica streams intact but
are only reproducible at batch granularity.

**Batch-of-chips.**  Per-trial device resampling -- the paper's Monte-Carlo
over simulated chips -- runs through the hardware stack's device axis
(ARCHITECTURE.md): :class:`BatchedHyCiMSolver` accepts one
:class:`~repro.fefet.variability.VariabilityModel` per replica and builds
device-axis filters and a device-axis crossbar, so replica ``k`` anneals on
chip ``k``'s sampled non-idealities while all chips advance per NumPy
operation.  Chip ``k``'s devices, noise and ADC codes are functions of chip
``k``'s seeds alone, which keeps per-seed results identical to ``M``
independent scalar trials that each rebuild their own hardware.

The engines are deliberately *not* new solvers: they borrow the model,
hardware, schedule and move generator from a scalar solver instance, so any
configuration accepted by the scalar path runs vectorised unchanged.

**Dynamics.**  The control loop itself -- temperature table, acceptance
decisions, inter-replica exchange, RNG topology -- is owned by
:class:`~repro.dynamics.driver.LoopDriver`; the engines contain no
Metropolis or cooling code.  Passing a
:class:`~repro.dynamics.Dynamics` bundle to :meth:`anneal` /
:meth:`solve_batch` turns the lock-step batch into a temperature ladder
with replica exchange (parallel tempering) and/or switches all replicas to
one chip-faithful shared RNG stream; the default dynamics reproduce the
scalar trajectories bit for bit.

**Kernels.**  The inner sweep itself -- propose, delta, filter, accept,
state update, best tracking -- lives in :mod:`repro.kernels`; the engines
build a :class:`~repro.kernels.SweepKernel` and drive it block-wise, with
:meth:`LoopDriver.block_length` placing block boundaries exactly where an
exchange round or telemetry probe is due.  ``kernel="reference"`` (the
default) is the engines' original loop body moved verbatim;
``kernel="fused"`` / ``"numba"`` are the incremental local-field kernels
(same RNG draws, different arithmetic -- exact on integer data); see
:mod:`repro.kernels.base` for the backend matrix.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.annealing.hycim import HyCiMSolver
from repro.annealing.result import SolveResult
from repro.annealing.sa import SimulatedAnnealer
from repro.batched.kernels import (
    as_replica_matrix,
    batched_energies,
    batched_inequality_verdicts,
)
from repro.cim.crossbar import CrossbarConfig, FeFETCrossbar
from repro.cim.inequality_filter import InequalityFilter
from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.dynamics.driver import LoopDriver
from repro.dynamics.dynamics import Dynamics
from repro.dynamics.moves import SingleFlipMove
from repro.fefet.variability import VariabilityModel
# NOTE: repro.kernels is imported lazily inside anneal()/solve_batch():
# its reference backend imports repro.batched.kernels, so a module-scope
# import here would make the package import order significant.

__all__ = ["BatchedHyCiMSolver", "BatchedSimulatedAnnealer"]

#: Per-row feasibility predicate (scalar fallback).
RowFilter = Callable[[np.ndarray], bool]
#: Vectorised feasibility predicate over an ``(M, n)`` batch.
BatchFilter = Callable[[np.ndarray], np.ndarray]


def _check_replica_generators(rngs: Sequence[np.random.Generator],
                              num_replicas: int) -> List[np.random.Generator]:
    generators = list(rngs)
    if len(generators) != num_replicas:
        raise ValueError(
            f"need one Generator per replica: got {len(generators)} for "
            f"{num_replicas} replicas"
        )
    return generators


def _drive_kernel(driver: LoopDriver, kernel, total_iterations: int,
                  record_history: bool, histories: List[List[float]],
                  solver_name: str) -> None:
    """Advance a sweep kernel block-wise to the end of the run.

    Block boundaries come from :meth:`LoopDriver.block_length`, so exchange
    rounds and telemetry probes fire at exactly the iterations the old
    per-iteration loop fired them at; a per-iteration energy history forces
    blocks of one.  Calling :meth:`maybe_exchange` at a non-exchange
    boundary is a no-op, as in the per-iteration convention.
    """
    limit = 1 if record_history else None
    num_replicas = kernel.current_energy.shape[0]
    iteration = 0
    while iteration < total_iterations:
        block = driver.block_length(iteration, limit)
        kernel.run_block(iteration, block)
        iteration += block
        boundary = iteration - 1
        driver.maybe_exchange(boundary, kernel.current_energy,
                              kernel.swap_arrays())
        if driver.probing:
            driver.maybe_probe(
                boundary, solver=solver_name,
                best_energy=kernel.best_energy,
                current_energy=kernel.current_energy,
                num_accepted=kernel.num_accepted,
                num_feasible=kernel.num_feasible,
                num_skipped=kernel.num_skipped,
                feasible_mask=getattr(kernel, "current_feasible", None),
                final=iteration == total_iterations)
        if record_history:
            for k in range(num_replicas):
                histories[k].append(float(kernel.best_energy[k]))
    kernel.finalize()


class BatchedSimulatedAnnealer:
    """``M`` lock-step replicas of a :class:`SimulatedAnnealer`.

    Parameters
    ----------
    annealer:
        The scalar annealer whose schedule, move generator and iteration
        budget the replicas share.  Single-flip moves take the fast path
        (vectorised incremental deltas); other move generators are proposed
        per replica but still evaluated in batch.
    """

    def __init__(self, annealer: SimulatedAnnealer) -> None:
        self.annealer = annealer

    def anneal(
        self,
        qubo: QUBOModel,
        initials: np.ndarray,
        rngs: Sequence[np.random.Generator],
        accept_filter: Optional[RowFilter] = None,
        accept_filter_batch: Optional[BatchFilter] = None,
        dynamics: Optional[Dynamics] = None,
        exchange_rng: Optional[np.random.Generator] = None,
        shared_rng: Optional[np.random.Generator] = None,
        kernel: Optional[str] = None,
        feasibility_constraints: Optional[Sequence[InequalityConstraint]] = None,
    ) -> List[SolveResult]:
        """Run one SA descent per replica, in lock-step.

        Parameters
        ----------
        qubo:
            The QUBO model to minimise (shared by all replicas); a
            :class:`~repro.core.sparse.SparseQUBOModel` runs through the
            sparse-aware kernels unchanged.
        initials:
            ``(M, n)`` matrix of starting configurations, one replica per row.
        rngs:
            One independent :class:`~numpy.random.Generator` per replica
            (e.g. seeded from :func:`repro.runtime.derive_trial_seeds`); in
            shared-RNG mode the entries alias the group's shared stream.
        accept_filter:
            Per-row feasibility predicate, semantically identical to the
            scalar annealer's ``accept_filter`` hook.
        accept_filter_batch:
            Optional vectorised form evaluating a whole candidate batch at
            once (e.g. :meth:`CombinatorialProblem.is_feasible_batch`); must
            agree with ``accept_filter`` row-wise.  Preferred when given.
        dynamics:
            Optional :class:`~repro.dynamics.Dynamics` bundle (temperature
            ladder, exchange policy, RNG topology).  ``None`` -- or a
            default bundle -- reproduces the scalar trajectories exactly.
        exchange_rng / shared_rng:
            The dedicated auxiliary streams coupled dynamics need (see
            :func:`repro.dynamics.exchange_stream` /
            :func:`repro.dynamics.shared_stream`).
        kernel:
            Sweep-kernel backend (``"reference"``/``"fused"``/``"numba"``/
            ``"auto"``; see :mod:`repro.kernels.base`).  ``None`` means the
            reference backend, whose trajectories this docstring describes.
        feasibility_constraints:
            The linear-inequality form of ``accept_filter_batch``, when one
            exists -- what lets the fused kernels track feasibility as
            incremental constraint loads instead of calling the opaque
            filter.  Ignored by the reference backend.
        """
        cfg = self.annealer
        n = qubo.num_variables
        current = as_replica_matrix(initials, n).copy()
        num_replicas = current.shape[0]
        generators = _check_replica_generators(rngs, num_replicas)
        matrix = qubo.matrix

        current_energy = batched_energies(matrix, current, qubo.offset)
        single_flip = isinstance(cfg.move_generator, SingleFlipMove)
        driver = LoopDriver(cfg.schedule, cfg.num_iterations, generators,
                            dynamics=dynamics, exchange_rng=exchange_rng,
                            shared_rng=shared_rng)
        from repro.kernels import make_sa_kernel

        sweep = make_sa_kernel(
            kernel, matrix=matrix, offset=qubo.offset, driver=driver,
            move_generator=cfg.move_generator, single_flip=single_flip,
            moves_per_iteration=cfg.moves_per_iteration, current=current,
            current_energy=current_energy, accept_filter=accept_filter,
            accept_filter_batch=accept_filter_batch,
            feasibility_constraints=feasibility_constraints,
            generators=generators)
        histories: List[List[float]] = [[] for _ in range(num_replicas)]
        _drive_kernel(driver, sweep, cfg.num_iterations, cfg.record_history,
                      histories, "SimulatedAnnealer")

        dynamics_meta = driver.metadata()
        kernel_meta = ({} if sweep.backend == "reference"
                       else {"kernel": sweep.backend})
        return [
            SolveResult(
                best_configuration=sweep.best[k].copy(),
                best_energy=float(sweep.best_energy[k]),
                energy_history=histories[k],
                num_iterations=cfg.num_iterations * cfg.moves_per_iteration,
                num_feasible_evaluations=int(sweep.num_feasible[k]),
                num_infeasible_skipped=int(sweep.num_skipped[k]),
                num_accepted_moves=int(sweep.num_accepted[k]),
                solver_name="SimulatedAnnealer",
                metadata={"seed": cfg.seed, "vectorized": True,
                          "num_replicas": num_replicas, **kernel_meta,
                          **dynamics_meta},
            )
            for k in range(num_replicas)
        ]


class BatchedHyCiMSolver:
    """``M`` lock-step replicas of a :class:`HyCiMSolver`.

    Without ``chips`` all replicas share the solver's single set of CiM
    components -- the physically faithful picture: one programmed crossbar
    and one filter array evaluate the whole replica batch, exactly as the
    hardware evaluates a whole array in one shot.

    Parameters
    ----------
    solver:
        The scalar solver whose model, schedule, move generator and iteration
        budget the replicas share.
    chips:
        Optional per-replica :class:`VariabilityModel` list (one freshly
        sampled chip per replica).  In hardware mode the engine then builds
        *device-axis* filters and crossbar -- replica ``k`` runs on chip
        ``k``'s sampled cells -- instead of the solver's shared hardware.
        Each chip's model is consumed in the scalar programming order
        (filters in constraint order, working before replica array), so chip
        ``k`` is identical to the hardware a scalar trial with the same
        model would build.
    chip_seeds:
        Per-replica crossbar/ADC seeds used when ``chips`` is given: chip
        ``k`` draws its crossbar ON-current factors, read noise and ADC
        noise from ``chip_seeds[k]``, mirroring the per-trial
        ``CrossbarConfig`` seed of the scalar path.
    """

    def __init__(self, solver: HyCiMSolver,
                 chips: Optional[Sequence[Optional[VariabilityModel]]] = None,
                 chip_seeds: Optional[Sequence[Optional[int]]] = None) -> None:
        self.solver = solver
        self.chips = list(chips) if chips is not None else None
        self._device_filters: Optional[Dict[int, InequalityFilter]] = None
        self._device_crossbar: Optional[FeFETCrossbar] = None
        if self.chips is not None and solver.use_hardware:
            self._build_device_hardware(chip_seeds)

    def _build_device_hardware(self,
                               chip_seeds: Optional[Sequence[Optional[int]]]) -> None:
        """One filter/crossbar *slice* per chip along the device axis."""
        solver = self.solver
        num_chips = len(self.chips)
        seeds = (list(chip_seeds) if chip_seeds is not None
                 else [None] * num_chips)
        if len(seeds) != num_chips:
            raise ValueError("need one chip seed per chip")
        self._device_filters = {}
        for index, constraint in enumerate(solver.model.constraints):
            if isinstance(constraint, InequalityConstraint):
                self._device_filters[index] = InequalityFilter(
                    constraint,
                    num_rows=solver.filter_rows,
                    variability=self.chips,
                    matchline_noise_sigma=solver.matchline_noise_sigma,
                )
        config = solver.crossbar_config or CrossbarConfig()
        self._device_crossbar = FeFETCrossbar.from_qubo(
            solver.model.qubo, config=config, device_seeds=seeds)

    # ------------------------------------------------------------------ #
    # Batched evaluation primitives
    # ------------------------------------------------------------------ #
    def _is_feasible_on_chip(self, x: np.ndarray, rng: np.random.Generator,
                             chip: int) -> bool:
        """Scalar mirror of ``HyCiMSolver._is_feasible`` on one chip slice."""
        for index, constraint in enumerate(self.solver.model.constraints):
            hardware_filter = self._device_filters.get(index)
            if hardware_filter is not None:
                if not hardware_filter.is_feasible(x, rng=rng, device=chip):
                    return False
            elif not constraint.is_satisfied(x):
                return False
        return True

    def _feasible_batch(self, batch: np.ndarray,
                        generators: Sequence[np.random.Generator]) -> np.ndarray:
        """Vectorised mirror of ``HyCiMSolver._is_feasible`` over replicas.

        With matchline noise enabled the scalar path consumes per-candidate
        noise draws *and* short-circuits across constraints, so the only way
        to preserve per-replica streams is to evaluate per replica; that slow
        path is taken automatically (per chip slice when a device axis is
        active).  Noise-free filters (and software mode) are evaluated in one
        shot per constraint -- a single device-axis shot covering every chip
        when per-replica chips are in play.
        """
        solver = self.solver
        device_mode = self._device_filters is not None
        filters = (self._device_filters if device_mode
                   else solver.inequality_filters)
        noisy = any(f.config.noise_sigma > 0 for f in filters.values())
        if noisy:
            if device_mode:
                return np.array([
                    self._is_feasible_on_chip(batch[k], generators[k], k)
                    for k in range(batch.shape[0])
                ], dtype=bool)
            return np.array([
                solver._is_feasible(batch[k], generators[k])
                for k in range(batch.shape[0])
            ], dtype=bool)
        verdicts = np.ones(batch.shape[0], dtype=bool)
        for index, constraint in enumerate(solver.model.constraints):
            hardware_filter = filters.get(index)
            if hardware_filter is not None:
                if device_mode:
                    verdicts &= hardware_filter.is_feasible_devices(batch)
                else:
                    verdicts &= hardware_filter.is_feasible_batch(batch)
            elif isinstance(constraint, InequalityConstraint):
                verdicts &= batched_inequality_verdicts(
                    constraint.weight_vector, constraint.bound, batch)
            else:
                verdicts &= np.array(
                    [constraint.is_satisfied(row) for row in batch], dtype=bool)
        return verdicts

    def _energies(self, batch: np.ndarray,
                  replicas: Optional[np.ndarray] = None) -> np.ndarray:
        """Batched QUBO values of *feasible* rows (crossbar or exact).

        ``replicas`` names the replica (= chip, when a device axis is
        active) index of each batch row, so every row is evaluated on its
        own chip's crossbar slice.
        """
        if self._device_crossbar is not None:
            return self._device_crossbar.compute_energies_devices(
                batch[:, None, :], devices=replicas)[:, 0]
        crossbar = self.solver.crossbar
        if crossbar is not None:
            return crossbar.compute_energies(batch)
        qubo = self.solver.model.qubo
        return batched_energies(qubo.matrix, batch, qubo.offset)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve_batch(self, initials: np.ndarray,
                    rngs: Sequence[np.random.Generator],
                    dynamics: Optional[Dynamics] = None,
                    exchange_rng: Optional[np.random.Generator] = None,
                    shared_rng: Optional[np.random.Generator] = None,
                    kernel: Optional[str] = None,
                    ) -> List[SolveResult]:
        """Run one HyCiM SA descent per replica, in lock-step.

        Mirrors ``HyCiMSolver.solve`` step for step: inequality filtering
        first (batched), QUBO computation on feasible candidates only
        (batched), then the per-replica Metropolis rule; infeasible
        incumbents drift freely at energy 0 exactly as in the scalar flow.

        ``dynamics`` plugs in a temperature ladder, replica exchange across
        the lock-step batch and/or the chip-faithful shared RNG topology
        (with the matching ``exchange_rng`` / ``shared_rng`` auxiliary
        streams); the default dynamics reproduce the scalar trajectories
        exactly.  Exchange swaps travelling state -- configurations,
        energies, feasibility flags, cached raw energies and kernel caches
        -- between rungs; on a device axis the chips stay put (replica ``k``
        keeps annealing chip ``k``, only its configuration migrates).

        ``kernel`` selects the sweep-kernel backend; the fused/JIT kernels
        cover the software-mode single-flip configuration (exact on integer
        data), hardware modes run on the reference backend (what ``"auto"``
        falls back to).
        """
        solver = self.solver
        n = solver.model.num_variables
        current = as_replica_matrix(initials, n).copy()
        num_replicas = current.shape[0]
        generators = _check_replica_generators(rngs, num_replicas)
        if self.chips is not None and len(self.chips) != num_replicas:
            raise ValueError(
                f"need one chip per replica: got {len(self.chips)} chips for "
                f"{num_replicas} replicas"
            )

        current_feasible = self._feasible_batch(current, generators)
        current_energy = np.zeros(num_replicas)
        feasible_idx = np.flatnonzero(current_feasible)
        if feasible_idx.size:
            current_energy[feasible_idx] = self._energies(current[feasible_idx],
                                                          replicas=feasible_idx)

        single_flip = isinstance(solver.move_generator, SingleFlipMove)
        # Software-mode single-flip fast path: track the raw QUBO value of
        # every incumbent (feasible or not) and update it with the O(n)
        # incremental delta instead of recomputing the O(n^2) quadratic form
        # per proposal.  The scalar solver recomputes in full, but for the
        # losslessly stored integer matrices of the paper benchmarks both
        # routes are exact, so parity is preserved; the hardware path always
        # goes through the batched crossbar MVM.
        use_crossbar = (solver.crossbar is not None
                        or self._device_crossbar is not None)
        use_delta = single_flip and not use_crossbar
        qubo = solver.model.qubo
        raw_energy = (batched_energies(qubo.matrix, current, qubo.offset)
                      if use_delta else None)
        use_hardware_filters = (self._device_filters is not None
                                or bool(solver.inequality_filters))
        driver = LoopDriver(solver.schedule, solver.num_iterations, generators,
                            dynamics=dynamics, exchange_rng=exchange_rng,
                            shared_rng=shared_rng)
        from repro.kernels import make_hycim_kernel

        sweep = make_hycim_kernel(
            kernel, num_variables=n, driver=driver,
            move_generator=solver.move_generator, single_flip=single_flip,
            moves_per_iteration=solver.moves_per_iteration,
            feasible_batch=lambda batch: self._feasible_batch(batch,
                                                              generators),
            energies=self._energies, current=current,
            current_energy=current_energy, current_feasible=current_feasible,
            use_delta=use_delta, matrix=qubo.matrix, raw_energy=raw_energy,
            constraints=solver.model.constraints,
            use_hardware_filters=use_hardware_filters,
            use_crossbar=use_crossbar, generators=generators)
        histories: List[List[float]] = [[] for _ in range(num_replicas)]
        _drive_kernel(driver, sweep, solver.num_iterations,
                      solver.record_history, histories, "HyCiM")

        best = sweep.best
        best_energy = sweep.best_energy
        best_feasible = sweep.best_feasible
        native = solver._native_problem
        dynamics_meta = driver.metadata()
        kernel_meta = ({} if sweep.backend == "reference"
                       else {"kernel": sweep.backend})
        results: List[SolveResult] = []
        for k in range(num_replicas):
            if best_feasible[k]:
                objective = (None if native is None
                             else native.objective(best[k]))
            else:
                objective = 0.0 if native is not None else None
            results.append(SolveResult(
                best_configuration=best[k].copy(),
                best_energy=float(best_energy[k]),
                best_objective=objective,
                feasible=bool(best_feasible[k]),
                energy_history=histories[k],
                num_iterations=solver.num_iterations * solver.moves_per_iteration,
                num_feasible_evaluations=int(sweep.num_feasible[k]),
                num_infeasible_skipped=int(sweep.num_skipped[k]),
                num_accepted_moves=int(sweep.num_accepted[k]),
                solver_name="HyCiM",
                metadata={
                    "use_hardware": solver.use_hardware,
                    "seed": solver.seed,
                    "num_constraints": solver.model.num_constraints,
                    "vectorized": True,
                    "num_replicas": num_replicas,
                    **({"num_chips": len(self.chips)}
                       if self.chips is not None else {}),
                    **kernel_meta,
                    **dynamics_meta,
                },
            ))
        return results

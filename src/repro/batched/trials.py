"""Batched trial functions: vectorised counterparts of the registry solvers.

A *batched trial function* runs a whole group of trials -- one replica per
spawned trial seed -- through a lock-step engine instead of a scalar loop:

    batched_fn(problem, params, seeds, initials) -> [SolveResult, ...]

The contract mirrors :data:`repro.runtime.registry.TrialFunction` exactly:
replica ``k`` consumes ``np.random.default_rng(seeds[k])`` in the same order
the scalar trial function would (initial-configuration draw first, then the
solver's own draws), so the returned results are identical per seed to the
scalar path in software mode and match within floating-point tolerance under
ideal hardware.  This is what lets :func:`repro.runtime.run_trials` treat
``backend="vectorized"`` (and ``replicas_per_task`` groups on the process
backend) as a pure throughput knob.

Per-trial device ``variability`` -- a freshly programmed chip per trial --
runs through the hardware stack's *device axis* (ARCHITECTURE.md): each
trial's chip is sampled exactly as the scalar path samples it (one
:func:`~repro.runtime.registry._build_variability` model per trial seed) and
occupies one slice of the device-axis filters/crossbar, so the Monte-Carlo
over chips advances in lock-step instead of falling back to scalar trials.
Only the ``dqubo`` hardware mode (a per-trial crossbar over the combined
penalty QUBO, an overhead study rather than a throughput path) still
delegates to scalar trials, replica by replica, so every registry parameter
dict stays valid.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.annealing.dqubo_solver import DQUBOAnnealer
from repro.annealing.hycim import HyCiMSolver
from repro.annealing.result import SolveResult
from repro.annealing.sa import SimulatedAnnealer
from repro.batched.engine import BatchedHyCiMSolver, BatchedSimulatedAnnealer
from repro.core.dqubo import SlackEncoding
from repro.dynamics.dynamics import exchange_stream, shared_stream
from repro.kernels.base import canonical_kernel_param
from repro.problems.base import CombinatorialProblem
from repro.runtime.registry import (
    _build_move,
    _build_variability,
    _dqubo_trial,
    _hycim_trial,
    _initial_configuration,
    _register_builtin_batched,
    _resolve_schedule,
    _sa_trial,
    build_dynamics,
)
from repro.telemetry.recorder import current_recorder, worker_attrs

__all__ = ["dqubo_batched_trials", "hycim_batched_trials", "sa_batched_trials"]


def _dynamics_setup(params: Mapping[str, object], seeds: Sequence[int]):
    """Resolve the group's dynamics bundle and its auxiliary streams.

    The exchange and shared streams are spawned from the group's trial seeds
    (tagged ``SeedSequence`` material), so they are deterministic per
    ``(master_seed, group)``, independent of every replica's own stream, and
    replayed exactly by a store-resumed run.
    """
    dynamics = build_dynamics(params.get("dynamics"))
    if dynamics is None:
        return None, None, None
    exchange_rng = (exchange_stream(seeds) if dynamics.exchange.is_active
                    else None)
    shared_rng = (shared_stream(seeds) if dynamics.rng_mode == "shared"
                  else None)
    return dynamics, exchange_rng, shared_rng


def _group_generators(seeds: Sequence[int],
                      shared_rng) -> List[np.random.Generator]:
    """Per-replica generators, or M aliases of the shared stream.

    In chip-faithful shared mode every per-replica draw site -- initial
    configurations, generic move proposals, noisy-filter draws -- consumes
    the one shared stream sequentially, like the physical SA logic would.
    """
    if shared_rng is not None:
        return [shared_rng] * len(seeds)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def _replica_starts(problem: CombinatorialProblem, params: Mapping[str, object],
                    rngs: Sequence[np.random.Generator],
                    initials: Sequence[Optional[np.ndarray]]) -> np.ndarray:
    """Per-replica starting configurations, drawn from each replica's stream.

    Uses the registry's own policy resolution so the draw order (and thus the
    remaining stream) is identical to the scalar trial functions.
    """
    return np.stack([
        _initial_configuration(problem, params, rng, initial)
        for rng, initial in zip(rngs, initials)
    ])


def _stamp(results: List[SolveResult], seeds: Sequence[int],
           elapsed: float) -> List[SolveResult]:
    """Attach per-trial seeds and amortised wall time to a replica batch.

    Lock-step replicas share one wall clock; each result reports the batch
    time divided by the replica count (the per-replica *throughput* cost),
    which is what the runtime benchmarks compare across backends.
    """
    per_replica = elapsed / max(len(results), 1)
    for result, seed in zip(results, seeds):
        result.trial_seed = int(seed)
        result.wall_time = per_replica
        result.metadata["seed"] = int(seed)
    return results


def hycim_batched_trials(
    problem: CombinatorialProblem,
    params: Mapping[str, object],
    seeds: Sequence[int],
    initials: Sequence[Optional[np.ndarray]],
) -> List[SolveResult]:
    """Vectorised counterpart of the registry's ``"hycim"`` trial function.

    All replicas share one :class:`HyCiMSolver` instance's model and
    schedule.  Without per-trial ``variability`` they also share its hardware
    (one programmed crossbar, one filter per constraint); with a
    ``variability`` template each trial becomes a freshly sampled chip on the
    engine's device axis -- chip ``k`` is built from the *same* model the
    scalar trial function derives from ``seeds[k]``, and its crossbar/ADC
    streams restart from the same per-trial seed, so per-seed results equal
    the scalar path's even under non-ideal devices.
    """
    with current_recorder().span("trial_group", solver="hycim",
                                 replicas=len(seeds),
                                 **worker_attrs()) as span:
        dynamics, exchange_rng, shared_rng = _dynamics_setup(params, seeds)
        use_hardware = bool(params.get("use_hardware", True))
        variability = params.get("variability")
        device_mode = use_hardware and variability is not None
        solver = HyCiMSolver(
            problem,
            use_hardware=use_hardware,
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            filter_rows=int(params.get("filter_rows", 16)),
            crossbar_config=params.get("crossbar_config"),
            matchline_noise_sigma=float(
                params.get("matchline_noise_sigma", 0.0)),
            record_history=bool(params.get("record_history", False)),
            # Device-axis hardware replaces the shared components; building
            # the shared crossbar/filters would be pure dead work per chunk.
            defer_hardware=device_mode,
        )
        chips = chip_seeds = None
        if device_mode:
            # One freshly sampled chip per trial, derived exactly as the
            # scalar path derives it; the chip's crossbar/ADC seed mirrors
            # the scalar per-trial CrossbarConfig (the trial seed when no
            # config is given, the config's own seed -- restarted per trial
            # -- otherwise).
            chips = [_build_variability(variability, int(seed))
                     for seed in seeds]
            config = params.get("crossbar_config")
            chip_seeds = ([config.seed] * len(chips) if config is not None
                          else [int(seed) for seed in seeds])
        rngs = _group_generators(seeds, shared_rng)
        starts = _replica_starts(problem, params, rngs, initials)
        results = BatchedHyCiMSolver(solver, chips=chips,
                                     chip_seeds=chip_seeds).solve_batch(
            starts, rngs, dynamics=dynamics, exchange_rng=exchange_rng,
            shared_rng=shared_rng, kernel=params.get("kernel"))
        # What "auto" actually picked, read back from the engine's stamp
        # (absent stamp == reference backend).
        span.annotate(kernel_resolved=(
            results[0].metadata.get("kernel", "reference")
            if results else "reference"))
    return _stamp(results, seeds, span.elapsed)


def sa_batched_trials(
    problem: CombinatorialProblem,
    params: Mapping[str, object],
    seeds: Sequence[int],
    initials: Sequence[Optional[np.ndarray]],
) -> List[SolveResult]:
    """Vectorised counterpart of the registry's ``"sa"`` trial function.

    Feasibility rejection uses the problem's vectorised
    :meth:`~repro.problems.base.CombinatorialProblem.is_feasible_batch` (one
    constraint evaluation for all replicas); problems without a vectorised
    override fall back to row-wise ``is_feasible`` calls with identical
    verdicts.
    """
    with current_recorder().span("trial_group", solver="sa",
                                 replicas=len(seeds),
                                 **worker_attrs()) as span:
        dynamics, exchange_rng, shared_rng = _dynamics_setup(params, seeds)
        annealer = SimulatedAnnealer(
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            record_history=bool(params.get("record_history", False)),
        )
        rngs = _group_generators(seeds, shared_rng)
        starts = _replica_starts(problem, params, rngs, initials)
        respect_constraints = bool(params.get("respect_constraints", True))
        # ``sparse=True`` anneals the CSR encoding (needs SciPy); the kernels
        # are duck-typed over the matrix, so everything downstream is shared.
        qubo = (problem.to_sparse_qubo() if params.get("sparse")
                else problem.to_qubo())
        results = BatchedSimulatedAnnealer(annealer).anneal(
            qubo,
            starts,
            rngs,
            accept_filter=problem.is_feasible if respect_constraints else None,
            accept_filter_batch=(problem.is_feasible_batch
                                 if respect_constraints else None),
            dynamics=dynamics,
            exchange_rng=exchange_rng,
            shared_rng=shared_rng,
            kernel=params.get("kernel"),
            # The fused/JIT backends trade the opaque batch filter for
            # incrementally maintained linear constraint loads; ``None``
            # (no linear form) makes them report unsupported, which "auto"
            # turns into a reference-backend fallback.
            feasibility_constraints=(problem.linear_feasibility_constraints()
                                     if respect_constraints else None),
        )
        for result in results:
            best = result.best_configuration
            result.feasible = problem.is_feasible(best)
            result.best_objective = (problem.objective(best)
                                     if result.feasible else None)
        span.annotate(kernel_resolved=(
            results[0].metadata.get("kernel", "reference")
            if results else "reference"))
    return _stamp(results, seeds, span.elapsed)


def dqubo_batched_trials(
    problem: CombinatorialProblem,
    params: Mapping[str, object],
    seeds: Sequence[int],
    initials: Sequence[Optional[np.ndarray]],
) -> List[SolveResult]:
    """Vectorised counterpart of the registry's ``"dqubo"`` trial function.

    The D-QUBO construction (penalty + slack transformation) is shared by
    every replica; the SA descent on the combined matrix then advances all
    replicas in lock-step with batched energy evaluation on the dQUBO
    matrix, replaying each replica's scalar stream exactly (slack-bit
    seeding included).  Hardware mode -- a per-trial crossbar over the
    combined matrix, used only for the Fig. 9 overhead study -- falls back
    to scalar trials with identical per-seed results.
    """
    if bool(params.get("use_hardware", False)):
        dynamics = build_dynamics(params.get("dynamics"))
        if dynamics is not None and dynamics.coupled:
            raise ValueError(
                "hardware-mode dqubo is the documented scalar fallback and "
                "cannot run coupled dynamics (replica exchange / shared RNG)")
        if canonical_kernel_param(params.get("kernel")) is not None:
            raise ValueError(
                "hardware-mode dqubo is the documented scalar fallback and "
                "cannot select a sweep-kernel backend; drop params['kernel'] "
                "or run software mode")
        return [_dqubo_trial(problem, params, int(seed), initial)
                for seed, initial in zip(seeds, initials)]
    with current_recorder().span("trial_group", solver="dqubo",
                                 replicas=len(seeds),
                                 **worker_attrs()) as span:
        dynamics, exchange_rng, shared_rng = _dynamics_setup(params, seeds)
        encoding = params.get("encoding", SlackEncoding.ONE_HOT)
        if isinstance(encoding, str):
            encoding = SlackEncoding(encoding)
        solver = DQUBOAnnealer(
            problem,
            alpha=float(params.get("alpha", 2.0)),
            beta=float(params.get("beta", 2.0)),
            encoding=encoding,
            use_hardware=False,
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            record_history=bool(params.get("record_history", False)),
        )
        transformation = solver.transformation
        total = transformation.num_variables
        rngs = _group_generators(seeds, shared_rng)
        starts = _replica_starts(problem, params, rngs, initials)
        # Slack-bit seeding per replica, from that replica's stream (the same
        # extend_initial branch DQUBOAnnealer.solve takes for problem-dim
        # initials; full-dimension initials pass through untouched).
        extended = np.stack([
            start.copy() if start.shape[0] == total
            else solver.extend_initial(start, rng=rng)
            for start, rng in zip(starts, rngs)
        ])
        annealer = SimulatedAnnealer(
            schedule=solver.schedule,
            move_generator=solver.move_generator,
            num_iterations=solver.num_iterations,
            moves_per_iteration=solver.moves_per_iteration,
            record_history=solver.record_history,
        )
        inner = BatchedSimulatedAnnealer(annealer).anneal(
            transformation.qubo, extended, rngs, dynamics=dynamics,
            exchange_rng=exchange_rng, shared_rng=shared_rng,
            # The penalty QUBO is annealed unconstrained, so the fused/JIT
            # backends apply without a linear-feasibility form.
            kernel=params.get("kernel"))
        results: List[SolveResult] = [
            solver.assemble_result(
                raw.best_configuration, raw.best_energy, raw.energy_history,
                raw.num_feasible_evaluations, raw.num_accepted_moves,
                # Propagate the inner engine's kernel stamp so dqubo results
                # carry the same backend provenance as hycim/sa ones.
                extra_metadata={"vectorized": True,
                                "num_replicas": len(inner),
                                **({"kernel": raw.metadata["kernel"]}
                                   if "kernel" in raw.metadata else {})})
            for raw in inner
        ]
        # assemble_result rebuilds metadata, so read the resolved backend
        # from the inner engine results that still carry the stamp.
        span.annotate(kernel_resolved=(
            inner[0].metadata.get("kernel", "reference")
            if inner else "reference"))
    return _stamp(results, seeds, span.elapsed)


# Guarded pairing: registration is skipped if the user already replaced the
# scalar solver (or claimed the batched slot) before this module loaded.
_register_builtin_batched("hycim", hycim_batched_trials, _hycim_trial)
_register_builtin_batched("sa", sa_batched_trials, _sa_trial)
_register_builtin_batched("dqubo", dqubo_batched_trials, _dqubo_trial)

"""Portfolio execution: several solvers racing on one problem instance.

A portfolio runs a set of solver configurations -- typically a cheap
deterministic heuristic (greedy), a strong reference (local search) and the
HyCiM annealer -- on the *same* instance and returns the best feasible answer
found, together with per-solver statistics.  This is the serving-path shape
of the runtime: a request brings one problem, the portfolio fans trials out
over all cores, and the best answer wins regardless of which solver produced
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.annealing.result import SolveResult
from repro.problems.base import CombinatorialProblem
from repro.runtime.aggregate import TrialStatistics, aggregate_trials, race_key
from repro.runtime.executor import TrialBatch, concatenate_batches, run_trials
from repro.runtime.registry import DETERMINISTIC_SOLVERS, SpecLike, as_solver_spec
from repro.telemetry.recorder import current_recorder, use_recorder

#: Default portfolio: fast greedy seed, local-search reference, HyCiM anneal.
DEFAULT_PORTFOLIO: Sequence[SpecLike] = ("greedy", "local_search", "hycim")


@dataclass
class PortfolioResult:
    """Outcome of one portfolio race on one instance.

    ``allocation`` maps member labels to the trials they actually executed;
    for a non-adaptive race it simply mirrors the per-member batch sizes,
    while an adaptive race shows where the reallocated budget went.
    """

    problem_name: str
    batches: Dict[str, TrialBatch]
    statistics: Dict[str, TrialStatistics]
    winner: str
    best_result: SolveResult
    maximize: bool = True
    allocation: Optional[Dict[str, int]] = None

    def ranking(self) -> List[str]:
        """Solver labels ordered best-first (feasible, then best objective)."""
        return sorted(
            self.batches,
            key=lambda label: race_key(self.batches[label].best_result,
                                        self.maximize),
        )


def run_portfolio(
    problem: CombinatorialProblem,
    solvers: Sequence[SpecLike] = DEFAULT_PORTFOLIO,
    num_trials: int = 8,
    params: Optional[Mapping[str, Mapping[str, Any]]] = None,
    backend: str = "serial",
    master_seed: int = 0,
    num_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    reference: Optional[float] = None,
    threshold: float = 0.95,
    adaptive: bool = False,
    explore_trials: Optional[int] = None,
    store: Optional[Any] = None,
    resume: bool = True,
    telemetry: Optional[Any] = None,
) -> PortfolioResult:
    """Race several solvers on ``problem`` and return the best feasible answer.

    Parameters
    ----------
    problem:
        The instance to solve.
    solvers:
        Portfolio members (registry names, specs, dicts, ...).
    num_trials:
        Replica seeds per stochastic member; deterministic members (greedy,
        DP, brute force) run once.
    params:
        Optional per-member parameter overrides keyed by display name, e.g.
        ``{"hycim": {"num_iterations": 500}}``.
    backend / num_workers / chunk_size:
        Executor knobs (see :func:`repro.runtime.executor.run_trials`).
    master_seed:
        Campaign-style master seed; each member gets an independently spawned
        sub-seed, so adding a member never perturbs the others.
    reference / threshold:
        Optional best-known value enabling success-rate statistics.
    adaptive / explore_trials:
        With ``adaptive=True`` the race becomes a two-stage budget
        allocation: every stochastic member first runs ``explore_trials``
        exploration trials (default: half its ``num_trials`` share, at least
        one), then the member with the best exploration success rate
        receives the *entire* remaining trial budget of all stochastic
        members.  Requires ``reference`` (success rates are undefined
        without one).  Fully seed-deterministic: exploration seeds are the
        members' usual spawned sub-seeds, the exploitation batch runs on a
        further spawned child of the winner's sequence, and ties break in
        member order.
    store / resume:
        Optional :class:`repro.store.CampaignStore` checkpointing, passed
        through to every member's :func:`run_trials` (each member is its own
        persisted run).
    telemetry:
        Observability sink (see :func:`repro.runtime.run_trials`).  A
        recorder instance wraps the race in a ``portfolio`` span and captures
        every member's run; ``telemetry=True`` (requires ``store``) persists
        one JSONL sidecar per member run; ``None`` reports to the ambient
        recorder (telemetry off by default).
    """
    specs = [as_solver_spec(spec) for spec in solvers]
    if not specs:
        raise ValueError("portfolio needs at least one solver")
    labels = [spec.display_name for spec in specs]
    if len(set(labels)) != len(labels):
        raise ValueError(f"portfolio members need unique labels, got {labels}")
    if adaptive and reference is None:
        raise ValueError("adaptive portfolios need a reference value to "
                         "compare member success rates")

    explore = num_trials
    if adaptive:
        explore = explore_trials if explore_trials is not None \
            else max(1, num_trials // 2)
        if not 1 <= explore <= num_trials:
            raise ValueError("explore_trials must be in [1, num_trials]")

    # An explicit recorder becomes ambient for the race, so the portfolio
    # span wraps every member's run span; telemetry=True stays True per
    # member (each member run persists its own sidecar).
    recorder = (telemetry if telemetry is not None and telemetry is not True
                else current_recorder())
    member_telemetry = True if telemetry is True else None

    maximize = getattr(problem, "is_maximization", True)
    member_seeds = np.random.SeedSequence(master_seed).spawn(len(specs))
    batches: Dict[str, TrialBatch] = {}
    statistics: Dict[str, TrialStatistics] = {}
    stochastic_labels: List[str] = []
    with use_recorder(recorder), recorder.span(
            "portfolio", members=len(specs), adaptive=adaptive,
            backend=backend):
        for spec, seed_seq in zip(specs, member_seeds):
            overrides = (params or {}).get(spec.display_name)
            if overrides:
                spec = spec.with_params(**dict(overrides))
            deterministic = spec.solver in DETERMINISTIC_SOLVERS
            trials = 1 if deterministic else explore
            if not deterministic:
                stochastic_labels.append(spec.display_name)
            batch = run_trials(
                problem,
                solver=spec,
                num_trials=trials,
                backend=backend,
                master_seed=int(seed_seq.generate_state(1, np.uint64)[0]),
                num_workers=num_workers,
                chunk_size=chunk_size,
                store=store,
                resume=resume,
                telemetry=member_telemetry,
            )
            batches[spec.display_name] = batch
            statistics[spec.display_name] = aggregate_trials(
                batch, reference=reference, threshold=threshold,
                maximize=maximize)

        remaining = ((num_trials - explore) * len(stochastic_labels)
                     if adaptive else 0)
        if adaptive and remaining > 0 and stochastic_labels:
            # Reallocate the held-back budget to the best explorer.  max()
            # keeps the first maximum, so ties resolve in member order.
            favourite = max(
                stochastic_labels,
                key=lambda label: statistics[label].success_rate_value)
            exploit_seq = member_seeds[labels.index(favourite)].spawn(1)[0]
            exploit = run_trials(
                problem,
                solver=batches[favourite].spec,
                num_trials=remaining,
                backend=backend,
                master_seed=int(exploit_seq.generate_state(1, np.uint64)[0]),
                num_workers=num_workers,
                chunk_size=chunk_size,
                store=store,
                resume=resume,
                telemetry=member_telemetry,
            )
            batches[favourite] = concatenate_batches(batches[favourite],
                                                     exploit)
            statistics[favourite] = aggregate_trials(batches[favourite],
                                                     reference=reference,
                                                     threshold=threshold,
                                                     maximize=maximize)

    winner = min(
        batches,
        key=lambda label: race_key(batches[label].best_result, maximize),
    )
    return PortfolioResult(
        problem_name=getattr(problem, "name", problem.__class__.__name__),
        batches=batches,
        statistics=statistics,
        winner=winner,
        best_result=batches[winner].best_result,
        maximize=maximize,
        allocation={label: batch.num_trials
                    for label, batch in batches.items()},
    )

"""Parallel trial executor: N independent solver runs per problem instance.

The paper's evaluation protocol scores solvers by success rate over many
repeated SA descents per instance (Fig. 10: 1000 initial states x 100 runs).
Those trials are embarrassingly parallel; this module is the single front
door for running them at scale:

* **Deterministic seeding** -- per-trial seeds are derived with
  :meth:`numpy.random.SeedSequence.spawn` from one master seed, in the parent
  process, so the trial outcomes are *bitwise identical* regardless of the
  backend, worker count or chunk size.  The spawned seed is exposed on every
  :class:`~repro.annealing.result.SolveResult` (``trial_seed``), so any
  individual trial can be replayed with :func:`repro.runtime.registry.run_single_trial`.
* **Backends** -- ``"process"`` fans chunks of trials out over a
  ``multiprocessing`` pool; ``"serial"`` runs them in-process (the fallback
  for debugging, profiling, and environments without fork/spawn support);
  ``"vectorized"`` advances all trials of a chunk in lock-step through the
  solver's batched replica engine (:mod:`repro.batched`) -- per-seed results
  identical to the serial backend in software mode on the integer-valued
  paper benchmarks, at an order-of-magnitude better per-replica throughput.
  Per-trial device ``variability`` runs on the engine's batch-of-chips
  device axis (each trial is one freshly sampled chip slice, no scalar
  fallback; see ARCHITECTURE.md).  ``replicas_per_task`` composes both
  levels of parallelism: each process-backend worker task runs its trials
  as vectorised replica groups of that size.
* **Chunked dispatch** -- trials are grouped into chunks of ``chunk_size``
  before being pickled to workers, amortising the per-task cost of shipping
  the problem instance.  Chunks are also the early-stopping granularity:
  after each completed chunk the executor checks the target condition and
  stops dispatching further work once it is met.  A chunk that is already
  executing always runs to completion -- on the serial and vectorized
  backends up to ``chunk_size - 1`` trials beyond the triggering one still
  execute (and are reported in ``results``); on the process backend other
  chunks may additionally have started in pool workers, and those run to
  completion too, but their results are discarded when the pool is torn
  down, so they never appear in ``results``.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.result import SolveResult
from repro.kernels.base import canonical_kernel_param
from repro.problems.base import CombinatorialProblem
from repro.runtime.registry import (
    BatchedTrialFunction,
    SolverSpec,
    SpecLike,
    TrialFunction,
    as_solver_spec,
    build_dynamics,
    get_batched_trial_function,
    get_trial_function,
    run_single_trial,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    JsonlRecorder,
    RecorderSpec,
    current_recorder,
    task_scope,
    use_recorder,
    worker_attrs,
)

#: Backends accepted by :func:`run_trials`.
BACKENDS = ("serial", "process", "vectorized")

#: One unit of dispatched work: (trial_index, trial_seed, initial or None).
_Trial = Tuple[int, int, Optional[np.ndarray]]


def derive_trial_seeds(master_seed: int, num_trials: int) -> List[int]:
    """Spawn ``num_trials`` independent 64-bit seeds from ``master_seed``.

    Uses :meth:`numpy.random.SeedSequence.spawn`, so the derived streams are
    statistically independent (no ``seed + i`` correlations) and the mapping
    from ``(master_seed, trial_index)`` to the trial seed is stable across
    processes and platforms.
    """
    if num_trials < 0:
        raise ValueError("num_trials must be non-negative")
    children = np.random.SeedSequence(master_seed).spawn(num_trials)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


@dataclass
class TrialBatch:
    """Results of ``num_trials`` independent runs of one solver on one problem.

    Attributes
    ----------
    results:
        One :class:`SolveResult` per executed trial, in trial order.  When
        early stopping triggered, trials after the stopping chunk are absent.
    spec:
        The solver configuration that produced the batch.
    problem_name:
        Instance label (``problem.name`` when available).
    backend:
        Which executor backend ran the batch.
    master_seed:
        Seed the per-trial seeds were spawned from.
    num_trials_requested:
        The requested trial count (>= ``len(results)``).
    stopped_early:
        Whether the target condition cut the batch short.
    wall_time:
        End-to-end batch wall-clock time in seconds (includes dispatch
        overhead, unlike the per-trial ``SolveResult.wall_time``).  For a
        store-resumed run this *accumulates across sessions*: the store
        persists every invocation's run-span time under the run key, and a
        resuming invocation reports prior sessions' recorded seconds plus
        its own -- the total compute ever spent producing the run's
        persisted trials, not just the resuming invocation's (usually tiny)
        share.  Timing fields are excluded from statistics fingerprints, so
        the accumulation never perturbs result identity.
    num_loaded_from_store:
        How many of ``results`` were resumed from a
        :class:`~repro.store.CampaignStore` instead of freshly executed.
    run_key:
        The store address of this run when it was executed against a store
        (``None`` otherwise); see :func:`repro.store.trial_run_key`.
    """

    results: List[SolveResult]
    spec: SolverSpec
    problem_name: str
    backend: str
    master_seed: int
    num_trials_requested: int
    stopped_early: bool = False
    wall_time: float = 0.0
    num_loaded_from_store: int = 0
    run_key: Optional[str] = None

    @property
    def num_trials(self) -> int:
        return len(self.results)

    @property
    def best_energies(self) -> np.ndarray:
        """Per-trial best energies, in trial order."""
        return np.array([r.best_energy for r in self.results], dtype=float)

    @property
    def best_objectives(self) -> np.ndarray:
        """Per-trial native objectives (NaN where the solver reported none)."""
        return np.array(
            [np.nan if r.best_objective is None else r.best_objective
             for r in self.results],
            dtype=float,
        )

    @property
    def best_result(self) -> SolveResult:
        """The best trial: feasible results first, then lowest internal energy."""
        if not self.results:
            raise ValueError("batch contains no results")
        return min(self.results, key=lambda r: (not r.feasible, r.best_energy))


def _resolve_workers(num_workers: Optional[int]) -> int:
    if num_workers is not None:
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        return num_workers
    return max(1, os.cpu_count() or 1)


#: Chunk payload: problem, spec, scalar trial fn, batched trial fn (or None),
#: replica-group size for the batched path, the chunk's trials, the chunk
#: index, the recorder spec a pool worker mirrors (None = record nothing),
#: and whether the chunk executes inside a pool worker.
_ChunkPayload = Tuple[CombinatorialProblem, SolverSpec, TrialFunction,
                      Optional[BatchedTrialFunction], int, List[_Trial],
                      int, Optional[RecorderSpec], bool]

#: Worker-side recorder cache: one shard recorder per sidecar path per
#: process, so a pool worker keeps appending to its own shard across chunks
#: instead of reopening (and re-repairing) the file per task.
_WORKER_RECORDERS: Dict[str, JsonlRecorder] = {}


def _worker_recorder(spec: Optional[RecorderSpec]):
    """The recorder a pool worker reports to while executing a chunk.

    Always installed inside workers -- a fork-started worker inherits the
    parent's ambient recorder, and letting it write to the parent's sidecar
    would violate the single-writer rule -- so ``None`` (no recording
    requested) maps to the :data:`~repro.telemetry.recorder.NULL_RECORDER`
    rather than "keep whatever is ambient".
    """
    if spec is None:
        return NULL_RECORDER
    recorder = _WORKER_RECORDERS.get(spec.path)
    if recorder is None or recorder._handle.closed:
        recorder = spec.build()
        _WORKER_RECORDERS[spec.path] = recorder
    return recorder


def _execute_chunk(payload: _ChunkPayload) -> List[Tuple[int, SolveResult]]:
    """Worker entry point: run every trial of one chunk in-process.

    The trial functions are resolved in the parent and shipped inside the
    payload (module-level functions pickle by reference), so solvers added
    with :func:`repro.runtime.registry.register_solver` work on the process
    backend even under spawn/forkserver start methods, where workers
    re-import the registry without the parent's registrations.

    When a batched trial function is available and ``replicas_per_task > 1``,
    the chunk's trials advance in lock-step replica groups of that size;
    otherwise they run through the scalar trial function one by one.  Both
    paths produce identical per-seed results (the batched-function contract),
    so grouping is purely a throughput knob.

    Each trial (or replica group) gets a deep copy of the solver spec, so
    stateful parameter objects (e.g. a ``VariabilityModel`` with an internal
    RNG) cannot leak state between trials -- the per-trial behaviour is then
    identical across backends, worker counts and chunk sizes.

    Inside a pool worker (``in_worker``), the chunk additionally installs
    the worker's own shard recorder (built once per process from the shipped
    :class:`RecorderSpec`) and wraps execution in a ``worker_chunk`` span
    carrying chunk/trial provenance plus the parent recorder's session id --
    the join point :mod:`repro.telemetry.shards` merges the shard on.
    Telemetry never feeds solver state, so results stay bitwise identical
    with recording on or off.
    """
    (problem, spec, trial_fn, batched_fn, replicas_per_task, trials,
     chunk_index, recorder_spec, in_worker) = payload
    if not in_worker:
        with task_scope(chunk_index):
            return _run_chunk_trials(problem, spec, trial_fn, batched_fn,
                                     replicas_per_task, trials)
    recorder = _worker_recorder(recorder_spec)
    worker = getattr(recorder, "worker", None) or f"w{os.getpid()}"
    with use_recorder(recorder), task_scope(chunk_index, worker=worker):
        attrs: Dict[str, Any] = dict(
            chunk=chunk_index, trials=len(trials),
            first_trial=trials[0][0] if trials else None,
            last_trial=trials[-1][0] if trials else None,
            **worker_attrs())
        if recorder_spec is not None and recorder_spec.parent_session:
            attrs["parent_session"] = recorder_spec.parent_session
        with recorder.span("worker_chunk", **attrs):
            return _run_chunk_trials(problem, spec, trial_fn, batched_fn,
                                     replicas_per_task, trials)


def _run_chunk_trials(problem: CombinatorialProblem, spec: SolverSpec,
                      trial_fn: TrialFunction,
                      batched_fn: Optional[BatchedTrialFunction],
                      replicas_per_task: int,
                      trials: List[_Trial]) -> List[Tuple[int, SolveResult]]:
    out: List[Tuple[int, SolveResult]] = []
    if batched_fn is not None:
        for start in range(0, len(trials), replicas_per_task):
            group = trials[start:start + replicas_per_task]
            group_spec = copy.deepcopy(spec)
            results = batched_fn(
                problem,
                group_spec.params,
                [int(seed) for _, seed, _ in group],
                [initial for _, _, initial in group],
            )
            for (index, _, _), result in zip(group, results):
                result.metadata.setdefault("trial_index", index)
                out.append((index, result))
        return out
    for index, seed, initial in trials:
        trial_spec = copy.deepcopy(spec)
        result = trial_fn(problem, trial_spec.params, int(seed), initial)
        result.metadata.setdefault("trial_index", index)
        out.append((index, result))
    return out


def _target_reached(results: Sequence[SolveResult],
                    target_energy: Optional[float],
                    target_objective: Optional[float],
                    maximize: bool) -> bool:
    for result in results:
        if target_energy is not None and result.best_energy <= target_energy:
            return True
        if target_objective is not None and result.feasible and \
                result.best_objective is not None:
            reached = (result.best_objective >= target_objective if maximize
                       else result.best_objective <= target_objective)
            if reached:
                return True
    return False


def run_trials(
    problem: CombinatorialProblem,
    solver: SpecLike = "hycim",
    num_trials: int = 10,
    params: Optional[Mapping[str, Any]] = None,
    backend: str = "serial",
    master_seed: int = 0,
    num_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    replicas_per_task: Optional[int] = None,
    initial_states: Optional[Sequence[np.ndarray]] = None,
    target_energy: Optional[float] = None,
    target_objective: Optional[float] = None,
    dynamics: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = True,
    telemetry: Optional[Any] = None,
) -> TrialBatch:
    """Run ``num_trials`` independent solver trials on ``problem``.

    Parameters
    ----------
    problem:
        Any :class:`~repro.problems.base.CombinatorialProblem`.
    solver:
        Registry name, :class:`SolverSpec`, ``(name, params)`` pair or config
        dict selecting the solver.
    num_trials:
        Independent trials (replica seeds) to run.
    params:
        Extra solver parameters merged over the spec's own params.
    backend:
        ``"serial"`` (in-process, scalar trials), ``"process"``
        (multiprocessing pool) or ``"vectorized"`` (in-process, all trials of
        a chunk advanced in lock-step through the solver's batched replica
        engine).  Serial and process are bitwise identical per seed.  The
        vectorized backend consumes identical per-replica random streams and
        is bitwise identical in software mode for integer-valued objective
        data (the paper's QKP benchmark family; every intermediate is an
        exactly representable float64 integer); float-valued coefficients
        and ideal-hardware mode agree to floating-point tolerance, where a
        borderline Metropolis draw could in principle diverge (see
        :mod:`repro.batched`).  Solvers without a batched implementation run
        their vectorized chunks through the scalar path, so any registry
        solver is valid on any backend.
    master_seed:
        Seed of the :class:`numpy.random.SeedSequence` the per-trial seeds
        are spawned from.
    num_workers:
        Process-pool size (defaults to the CPU count; ignored for serial).
    chunk_size:
        Trials per dispatched task *and* the early-stop check granularity.
        Defaults to 1 on the serial backend, to roughly ``num_trials /
        (4 * workers)`` on the process backend (so the problem instance is
        pickled once per chunk rather than once per trial) and to
        ``num_trials`` on the vectorized backend (one lock-step batch); pass
        an explicit value to make the early-stop granularity identical
        across backends.
    replicas_per_task:
        Lock-step replica group size used *inside* each chunk.  Defaults to
        the chunk size on the vectorized backend and to 1 (scalar trials)
        elsewhere; pass a value > 1 on the process backend to compose both
        levels of parallelism -- chunks fan out over workers, and each
        worker advances its trials as vectorised replica groups.
    initial_states:
        Optional explicit starting configuration per trial (length must equal
        ``num_trials``); used e.g. to hand the *same* Monte-Carlo initial
        states to competing solvers.
    target_energy / target_objective:
        Early-stopping condition checked after every completed chunk: stop
        once any trial's best energy is <= ``target_energy``, or any feasible
        trial's objective reaches ``target_objective`` (direction given by
        the problem's ``is_maximization``).  The triggering chunk always runs
        to completion, so up to ``chunk_size - 1`` trials beyond the
        triggering one still execute and are included in the batch; on the
        process backend, chunks already started in other workers also run to
        completion but are discarded (see the module docstring).
    dynamics:
        Optional :class:`repro.dynamics.Dynamics` bundle (or config dict --
        both are canonicalised through
        :func:`repro.runtime.registry.build_dynamics`, so either spelling
        addresses the same store run key).  Non-coupled dynamics (a schedule
        override) apply per trial on any path.  *Coupled* dynamics --
        an active exchange policy (e.g.
        :class:`repro.dynamics.ParallelTempering`) or the chip-faithful
        ``rng_mode="shared"`` -- make the replicas of each lock-step group
        interact, so the executor routes every replica group (default: the
        whole batch as one group, override with ``chunk_size`` /
        ``replicas_per_task``) through the solver's batched engine on *all*
        backends; solvers without a batched engine reject coupled dynamics.
        Trial ``i``'s result then depends on its group composition -- still
        deterministic per ``(master_seed, grouping)``, and resumable: the
        store keys coupled runs by their grouping (``num_trials`` /
        ``chunk_size`` / ``replicas_per_task``), so resuming with identical
        arguments finds the persisted run, a different grouping addresses a
        fresh one, and a partially persisted group re-runs whole.
    store:
        Optional :class:`repro.store.CampaignStore`.  Every completed trial
        is appended to it under a deterministic run key (solver + params +
        instance content hash + master seed + backend + initial states), so
        an interrupted batch can be resumed.
    resume:
        With a store, skip trials already persisted under this run key
        (default).  Because each trial's seed is spawned independently from
        the master seed, the union of persisted and freshly executed trials
        is identical to an uninterrupted run -- modulo the wall-clock timing
        fields, exactly like :func:`replay_trial`.  Pass ``resume=False`` to
        re-execute (and overwrite) persisted trials.
    telemetry:
        Where to send spans, counters and probes (:mod:`repro.telemetry`).
        ``None`` (default) reports to the ambient recorder -- the
        :class:`~repro.telemetry.NullRecorder` unless one was installed with
        :func:`repro.telemetry.use_recorder` -- so telemetry is off unless
        asked for.  Pass a recorder instance (e.g.
        :class:`~repro.telemetry.InMemoryRecorder`) to capture this run, or
        ``telemetry=True`` with a ``store`` to persist a JSONL sidecar under
        the run key (``store.telemetry_path(run_key)``; inspect with
        ``python -m repro.telemetry``).  Telemetry never consumes solver
        RNG, so results are bit-identical with any recorder.  On the
        ``"process"`` backend a live recorder handle is never shipped to
        pool workers (a sidecar needs a single writer): when the recorder
        has an on-disk identity (``telemetry=True`` or a passed
        :class:`~repro.telemetry.JsonlRecorder`), each worker instead
        builds its own recorder from a picklable
        :class:`~repro.telemetry.RecorderSpec` and appends worker-side
        spans, counters and sweep probes to a per-worker shard
        (``telemetry/<run_key>.w<pid>.jsonl``) that the analysis layer
        merges back into one timeline (:mod:`repro.telemetry.shards`);
        in-memory recorders have no cross-process identity, so their
        workers record nothing while the parent still records run/chunk
        spans and counters.
    """
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if telemetry is True and store is None:
        raise ValueError(
            "telemetry=True persists a JSONL sidecar under a store run key "
            "and therefore needs store=...; pass a recorder instance to "
            "capture telemetry without a store")
    spec = as_solver_spec(solver)
    if params:
        spec = spec.with_params(**dict(params))
    # Canonicalise the dynamics (explicit argument wins over a params entry)
    # *before* the store run key is derived, so a config dict and the
    # equivalent constructed bundle address the same persisted run.
    resolved_dynamics = build_dynamics(
        dynamics if dynamics is not None else spec.params.get("dynamics"))
    if resolved_dynamics is not None:
        spec = spec.with_params(dynamics=resolved_dynamics)
    coupled = resolved_dynamics is not None and resolved_dynamics.coupled
    # Canonicalise the sweep-kernel / sparse-matrix params the same way:
    # the defaults (kernel="reference", sparse=False) are *dropped*, so every
    # run key minted before the kernel layer existed stays valid, while
    # non-default values stay in the params and address their own runs.
    kernel_param = canonical_kernel_param(spec.params.get("kernel"))
    canonical_params = dict(spec.params)
    if kernel_param is None:
        canonical_params.pop("kernel", None)
    else:
        canonical_params["kernel"] = kernel_param
    if "sparse" in canonical_params:
        if canonical_params["sparse"]:
            canonical_params["sparse"] = True
        else:
            del canonical_params["sparse"]
    if canonical_params != dict(spec.params):
        spec = SolverSpec(spec.solver, canonical_params, label=spec.label)
    wants_engine = kernel_param is not None or bool(spec.params.get("sparse"))
    if chunk_size is None:
        if coupled:
            # One replica-exchange ladder / shared-stream group per run, on
            # every backend; override chunk_size for several smaller groups.
            chunk_size = num_trials
        elif backend == "process":
            chunk_size = max(1, -(-num_trials // (4 * _resolve_workers(num_workers))))
        elif backend == "vectorized":
            chunk_size = num_trials
        else:
            chunk_size = 1
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    if replicas_per_task is None:
        replicas_per_task = (chunk_size if backend == "vectorized" or coupled
                             else 1)
    if replicas_per_task < 1:
        raise ValueError("replicas_per_task must be positive")
    if initial_states is not None:
        initial_states = [np.asarray(s, dtype=float) for s in initial_states]
        if len(initial_states) != num_trials:
            raise ValueError(
                f"initial_states has {len(initial_states)} entries for {num_trials} trials"
            )

    seeds = derive_trial_seeds(master_seed, num_trials)
    trials: List[_Trial] = [
        (index, seeds[index],
         initial_states[index] if initial_states is not None else None)
        for index in range(num_trials)
    ]
    chunks = [trials[start:start + chunk_size]
              for start in range(0, num_trials, chunk_size)]
    trial_fn = get_trial_function(spec.solver)
    # A non-default kernel backend (or the sparse matrix path) lives in the
    # lock-step engines, so requesting one routes every group through the
    # batched trial function even when groups have a single replica -- the
    # per-seed results are identical to the scalar path by contract.
    batched_fn = (get_batched_trial_function(spec.solver)
                  if replicas_per_task > 1 or coupled or wants_engine
                  else None)
    if coupled and batched_fn is None:
        raise ValueError(
            f"solver {spec.solver!r} has no batched trial function, so it "
            "cannot run coupled dynamics (replica exchange / shared RNG)")
    if wants_engine and batched_fn is None:
        raise ValueError(
            f"solver {spec.solver!r} has no batched trial function, so it "
            "cannot honour params['kernel'] / params['sparse'] (the sweep-"
            "kernel backends live in the lock-step engines)")
    maximize = getattr(problem, "is_maximization", True)

    # Store wiring (lazy import: repro.store's schema imports runtime types).
    run_key: Optional[str] = None
    persisted: Dict[int, SolveResult] = {}
    if store is not None:
        from repro.problems.io import content_hash
        from repro.store.schema import initial_states_hash, manifest_for_run

        manifest = manifest_for_run(
            spec, problem, content_hash(problem), master_seed, backend,
            num_trials, initials_hash=initial_states_hash(initial_states),
            # Coupled trial outcomes depend on the replica-group structure,
            # so it is part of the run key; a re-run with a different
            # num_trials / chunking addresses a fresh run instead of
            # silently loading another grouping's results.
            grouping=((num_trials, chunk_size, replicas_per_task)
                      if coupled else None))
        run_key = store.register_run(manifest).run_key
        if resume:
            persisted = {
                index: result
                for index, result in store.load_results(run_key).items()
                if index < num_trials
            }
            for index, result in persisted.items():
                if result.trial_seed is not None and \
                        result.trial_seed != seeds[index]:
                    raise ValueError(
                        f"store run {run_key[:12]}... holds trial {index} with "
                        f"seed {result.trial_seed}, expected {seeds[index]} -- "
                        "the store contents do not match this invocation"
                    )

    # Telemetry wiring: a passed recorder (or the store sidecar recorder for
    # telemetry=True) becomes ambient for the run, so the trial functions,
    # engines and LoopDriver report to it without threading it through
    # solver params (which would perturb the deterministic store run keys).
    created_recorder = None
    if telemetry is True:
        created_recorder = store.telemetry_recorder(run_key)
        recorder = created_recorder
    elif telemetry is not None:
        recorder = telemetry
    else:
        recorder = current_recorder()
    prior_wall_time = 0.0
    if store is not None and resume:
        prior_wall_time = store.accumulated_wall_time(run_key)

    has_target = target_energy is not None or target_objective is not None
    collected: List[Tuple[int, SolveResult]] = []
    num_loaded = 0
    stopped_early = False

    # Per-chunk pending work (trials without a persisted result).  Chunk
    # boundaries -- and therefore early-stop granularity -- are identical
    # with and without persisted trials, which is what makes an interrupted
    # + resumed batch reproduce the uninterrupted result set exactly.
    # Coupled dynamics make each chunk's replica groups one unit of
    # execution, so a chunk with any missing trial re-runs whole (the store's
    # append-only overwrite keeps the re-appended, identical results
    # consistent); fully persisted chunks still load without re-running.
    if coupled:
        pending_per_chunk = [
            list(chunk) if any(t[0] not in persisted for t in chunk) else []
            for chunk in chunks
        ]
    else:
        pending_per_chunk = [[t for t in chunk if t[0] not in persisted]
                             for chunk in chunks]

    def _complete_chunk(chunk: List[_Trial],
                        fresh: List[Tuple[int, SolveResult]]) -> bool:
        """Merge persisted + fresh results of one chunk; True = stop."""
        nonlocal num_loaded, stopped_early
        if store is not None:
            for index, result in fresh:
                store.append_result(run_key, index, result)
        fresh_by_index = dict(fresh)
        chunk_results = []
        loaded_here = 0
        for index, _, _ in chunk:
            if index in fresh_by_index:
                chunk_results.append((index, fresh_by_index[index]))
            else:
                chunk_results.append((index, persisted[index]))
                num_loaded += 1
                loaded_here += 1
        collected.extend(chunk_results)
        if recorder.enabled:
            if fresh:
                recorder.counter("trials_completed", len(fresh))
            if loaded_here:
                recorder.counter("trials_loaded_from_store", loaded_here)
        if has_target and _target_reached([r for _, r in chunk_results],
                                          target_energy, target_objective,
                                          maximize):
            stopped_early = len(collected) < num_trials
            return True
        return False

    problem_name = getattr(problem, "name", problem.__class__.__name__)
    # The run span is the batch's single timing source; its elapsed time is
    # read back even when the run dies mid-chunk (the span exits with the
    # exception), so the store's accumulated wall time includes interrupted
    # sessions.
    run_span = recorder.span("run", solver=spec.solver, problem=problem_name,
                             backend=backend, trials=num_trials)
    try:
        with use_recorder(recorder), run_span:
            if backend in ("serial", "vectorized"):
                for number, (chunk, pending) in enumerate(
                        zip(chunks, pending_per_chunk)):
                    with recorder.span("chunk", index=number,
                                       trials=len(chunk), fresh=len(pending)):
                        fresh = _execute_chunk(
                            (problem, spec, trial_fn, batched_fn,
                             replicas_per_task, pending,
                             number, None, False)) if pending else []
                        stop = _complete_chunk(chunk, fresh)
                    if stop:
                        break
            else:
                workers = _resolve_workers(num_workers)
                context = multiprocessing.get_context()
                # Workers rebuild their own single-writer shard recorder from
                # this picklable spec (None unless the parent records to a
                # JSONL sidecar); live recorder handles never cross the
                # process boundary.
                worker_spec = recorder.worker_spec()
                payloads = [(problem, spec, trial_fn, batched_fn,
                             replicas_per_task, pending,
                             number, worker_spec, True)
                            for number, pending in enumerate(pending_per_chunk)
                            if pending]
                if not payloads:
                    for chunk in chunks:
                        if _complete_chunk(chunk, []):
                            break
                else:
                    with context.Pool(
                            processes=min(workers, len(payloads))) as pool:
                        fresh_iter = pool.imap(_execute_chunk, payloads)
                        for number, (chunk, pending) in enumerate(
                                zip(chunks, pending_per_chunk)):
                            with recorder.span("chunk", index=number,
                                               trials=len(chunk),
                                               fresh=len(pending)):
                                fresh = next(fresh_iter) if pending else []
                                stop = _complete_chunk(chunk, fresh)
                            if stop:
                                break
    finally:
        if (store is not None and run_key is not None
                and run_span.elapsed is not None):
            store.record_wall_time(run_key, run_span.elapsed)
        if created_recorder is not None:
            created_recorder.close()

    collected.sort(key=lambda pair: pair[0])
    results = [result for _, result in collected]
    if store is not None and results and \
            get_batched_trial_function(spec.solver) is not None:
        # Stamp the *resolved* sweep-kernel backend (what "auto" actually
        # picked) into the run's provenance snapshot.  Results carry the
        # engine's stamp whether fresh or loaded; an engine run without a
        # stamp is the reference backend, and results without the engine's
        # "vectorized" marker came from the scalar trial path.
        metadata = results[0].metadata or {}
        if "kernel" in metadata:
            resolved = str(metadata["kernel"])
        elif metadata.get("vectorized"):
            resolved = "reference"
        else:
            resolved = "scalar"
        store.annotate_provenance(run_key, kernel_resolved=resolved)
    return TrialBatch(
        results=results,
        spec=spec,
        problem_name=problem_name,
        backend=backend,
        master_seed=master_seed,
        num_trials_requested=num_trials,
        stopped_early=stopped_early,
        wall_time=prior_wall_time + run_span.elapsed,
        num_loaded_from_store=num_loaded,
        run_key=run_key,
    )


def replay_trial(problem: CombinatorialProblem, batch: TrialBatch,
                 trial_index: int,
                 initial: Optional[np.ndarray] = None) -> SolveResult:
    """Re-run one trial of a batch from its recorded spawned seed.

    The returned result is bitwise identical to ``batch.results[trial_index]``
    (modulo wall-clock timing), which makes any interesting trial -- e.g. the
    single failing run out of a thousand -- individually debuggable.  Batches
    run with explicit ``initial_states`` must re-supply the trial's initial
    state via ``initial``; otherwise the trial re-draws it from its seed.
    """
    if not 0 <= trial_index < len(batch.results):
        raise IndexError(f"trial index {trial_index} out of range")
    original = batch.results[trial_index]
    if original.trial_seed is None:
        raise ValueError("batch results carry no trial seeds")
    return run_single_trial(problem, batch.spec, original.trial_seed, initial)


def concatenate_batches(first: TrialBatch, second: TrialBatch) -> TrialBatch:
    """Join two batches of the same solver/problem into one.

    Used by the adaptive portfolio to fold a member's exploitation batch onto
    its exploration batch.  Results are concatenated in order (a trial's
    position in the joined batch no longer equals its original index --
    replay through ``trial_seed`` instead), wall time is summed, and the
    master seed of the *first* batch is kept as the batch's provenance.
    """
    if first.spec != second.spec:
        raise ValueError("cannot concatenate batches of different solver specs")
    if first.problem_name != second.problem_name:
        raise ValueError("cannot concatenate batches of different problems")
    return TrialBatch(
        results=list(first.results) + list(second.results),
        spec=first.spec,
        problem_name=first.problem_name,
        backend=first.backend,
        master_seed=first.master_seed,
        num_trials_requested=(first.num_trials_requested
                              + second.num_trials_requested),
        stopped_early=first.stopped_early or second.stopped_early,
        wall_time=first.wall_time + second.wall_time,
        num_loaded_from_store=(first.num_loaded_from_store
                               + second.num_loaded_from_store),
        run_key=first.run_key,
    )

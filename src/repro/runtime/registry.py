"""Solver registry: names -> picklable trial functions.

The runtime executes *trials* -- one independent solver run on one problem
instance -- possibly in worker processes.  For that to work every solver must
be constructible from data that survives ``pickle``: a string name plus a
plain parameter dict.  This module maps the canonical solver names

    "hycim", "sa", "dqubo", "greedy", "dp", "brute_force", "local_search"

to module-level trial functions with the uniform signature

    trial_fn(problem, params, seed, initial) -> SolveResult

Annealing solvers are rebuilt from scratch inside every trial (so device
variability and crossbar programming are re-sampled per trial exactly as a
real chip would be reprogrammed), seeded deterministically from the trial
seed.  The vectorised counterparts in :mod:`repro.batched.trials` replay
those per-trial streams in lock-step -- per-trial variability becomes one
freshly sampled chip per device-axis slice (ARCHITECTURE.md) -- so batched
and scalar trials are interchangeable per seed.  Exact / heuristic reference
solvers are wrapped so they return the same
:class:`~repro.annealing.result.SolveResult` shape as the annealers.

Parameter dicts may either carry plain values (``{"schedule": {"kind":
"geometric", "start_temperature": 100.0}}``, ``{"move_generator":
"knapsack"}``) or already-constructed schedule / move-generator objects; both
forms pickle cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.annealing.dqubo_solver import DQUBOAnnealer
from repro.annealing.hycim import HyCiMSolver
from repro.annealing.result import SolveResult
from repro.annealing.sa import SimulatedAnnealer
from repro.core.dqubo import SlackEncoding
from repro.dynamics.dynamics import Dynamics, ParallelTempering
from repro.dynamics.exchange import EvenOddExchange, ExchangePolicy, NoExchange
from repro.dynamics.moves import (
    BinPackingMove,
    KnapsackNeighborhoodMove,
    MoveGenerator,
    MultiFlipMove,
    OneHotGroupMove,
    PermutationSwapMove,
    SingleFlipMove,
)
from repro.dynamics.schedule import (
    ConstantSchedule,
    ExponentialSchedule,
    GeometricSchedule,
    LinearSchedule,
    TemperatureLadder,
    TemperatureSchedule,
)
from repro.exact.brute_force import solve_brute_force
from repro.exact.dp_knapsack import solve_knapsack_dp
from repro.exact.greedy import solve_qkp_greedy
from repro.exact.local_search import improve_qkp_local_search
from repro.problems.base import CombinatorialProblem
from repro.telemetry.recorder import current_recorder, worker_attrs

TrialFunction = Callable[
    [CombinatorialProblem, Mapping[str, Any], int, Optional[np.ndarray]], SolveResult
]

#: A batched trial function runs one lock-step replica group: one trial per
#: spawned seed, returning one SolveResult per seed in order.  Replica ``k``
#: must consume ``np.random.default_rng(seeds[k])`` exactly as the scalar
#: trial function would, so both paths yield identical per-seed results.
BatchedTrialFunction = Callable[
    [CombinatorialProblem, Mapping[str, Any], Sequence[int],
     Sequence[Optional[np.ndarray]]], List[SolveResult]
]

_SCHEDULES = {
    "geometric": GeometricSchedule,
    "linear": LinearSchedule,
    "exponential": ExponentialSchedule,
    "constant": ConstantSchedule,
}

_MOVES = {
    "single_flip": SingleFlipMove,
    "multi_flip": MultiFlipMove,
    "knapsack": KnapsackNeighborhoodMove,
    "one_hot": OneHotGroupMove,
    "permutation_swap": PermutationSwapMove,
    "bin_packing": BinPackingMove,
}

_EXCHANGES = {
    "none": NoExchange,
    "even_odd": EvenOddExchange,
}

_DYNAMICS_KINDS = {
    "dynamics": Dynamics,
    "parallel_tempering": ParallelTempering,
}


# --------------------------------------------------------------------- #
# Solver specs
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SolverSpec:
    """A picklable description of one solver configuration.

    Attributes
    ----------
    solver:
        Registry name (``"hycim"``, ``"sa"``, ...).
    params:
        Keyword parameters handed to the trial function.
    label:
        Display name used in campaign / portfolio reports; defaults to the
        solver name.
    """

    solver: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.solver not in _REGISTRY:
            raise KeyError(
                f"unknown solver {self.solver!r}; available: {available_solvers()}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @property
    def display_name(self) -> str:
        return self.label or self.solver

    def with_params(self, **overrides: Any) -> "SolverSpec":
        """A copy of this spec with ``overrides`` merged into the params."""
        merged = dict(self.params)
        merged.update(overrides)
        return SolverSpec(self.solver, merged, label=self.label)


SpecLike = Union[str, SolverSpec, Mapping[str, Any], Tuple[str, Mapping[str, Any]]]


def as_solver_spec(spec: SpecLike) -> SolverSpec:
    """Coerce a name / dict / (name, params) pair into a :class:`SolverSpec`."""
    if isinstance(spec, SolverSpec):
        return spec
    if isinstance(spec, str):
        return SolverSpec(spec)
    if isinstance(spec, tuple) and len(spec) == 2:
        return SolverSpec(spec[0], dict(spec[1]))
    if isinstance(spec, Mapping):
        payload = dict(spec)
        try:
            name = payload.pop("solver")
        except KeyError as error:
            raise ValueError("solver spec dicts need a 'solver' key") from error
        label = payload.pop("label", None)
        params = payload.pop("params", None)
        if params is not None:
            payload.update(params)
        return SolverSpec(name, payload, label=label)
    raise TypeError(f"cannot interpret {type(spec).__name__} as a solver spec")


# --------------------------------------------------------------------- #
# Param coercion helpers
# --------------------------------------------------------------------- #
def _build_schedule(value: Any) -> TemperatureSchedule:
    if isinstance(value, TemperatureSchedule):
        return value
    if isinstance(value, Mapping):
        payload = dict(value)
        kind = payload.pop("kind", "geometric")
        try:
            return _SCHEDULES[kind](**payload)
        except KeyError as error:
            raise ValueError(f"unknown schedule kind {kind!r}") from error
    raise TypeError("schedule must be a TemperatureSchedule or a config dict")


def _build_move(value: Any) -> MoveGenerator:
    if isinstance(value, MoveGenerator):
        return value
    if isinstance(value, str):
        value = {"kind": value}
    if isinstance(value, Mapping):
        payload = dict(value)
        kind = payload.pop("kind", None)
        if kind is None:
            raise ValueError("move generator config dicts need a 'kind' key")
        try:
            return _MOVES[kind](**payload)
        except KeyError as error:
            raise ValueError(f"unknown move generator kind {kind!r}") from error
    raise TypeError("move_generator must be a MoveGenerator, a name, or a config dict")


def _build_exchange(value: Any) -> ExchangePolicy:
    if isinstance(value, ExchangePolicy):
        return value
    if isinstance(value, str):
        value = {"kind": value}
    if isinstance(value, Mapping):
        payload = dict(value)
        kind = payload.pop("kind", "even_odd")
        try:
            return _EXCHANGES[kind](**payload)
        except KeyError as error:
            raise ValueError(f"unknown exchange kind {kind!r}") from error
    raise TypeError("exchange must be an ExchangePolicy, a name, or a config dict")


def build_dynamics(value: Any) -> Optional[Dynamics]:
    """Coerce a dynamics bundle / config dict / ``None`` into a
    :class:`~repro.dynamics.Dynamics`.

    ``run_trials`` canonicalises its ``dynamics`` parameter through this
    function *before* the store run key is computed, so a config dict and
    the equivalent constructed bundle address the same persisted run.  Dict
    form: ``{"kind": "parallel_tempering", "hottest": 8.0,
    "exchange_interval": 10}`` or ``{"kind": "dynamics", "ladder":
    [1.0, 2.0, 4.0], "exchange": {"kind": "even_odd"}, "rng_mode":
    "shared", "schedule": {"kind": "geometric", ...}}``.
    """
    if value is None:
        return None
    if isinstance(value, Dynamics):
        return value
    if isinstance(value, Mapping):
        payload = dict(value)
        kind = payload.pop("kind", "dynamics")
        if payload.get("schedule") is not None:
            payload["schedule"] = _build_schedule(payload["schedule"])
        ladder = payload.get("ladder")
        if ladder is not None and not isinstance(ladder, TemperatureLadder):
            payload["ladder"] = TemperatureLadder(tuple(ladder))
        if payload.get("exchange") is not None:
            payload["exchange"] = _build_exchange(payload["exchange"])
        try:
            factory = _DYNAMICS_KINDS[kind]
        except KeyError as error:
            raise ValueError(f"unknown dynamics kind {kind!r}") from error
        return factory(**payload)
    raise TypeError("dynamics must be a Dynamics bundle, a config dict or None")


def _coupled_dynamics_guard(dynamics: Optional[Dynamics], solver: str) -> None:
    """Scalar trial functions honour only the schedule component.

    Everything else -- temperature ladders, non-default acceptance rules,
    replica exchange, the shared RNG topology -- needs the lock-step replica
    group, so a coupled bundle reaching a scalar trial function is an error
    rather than a silent drop.
    """
    if dynamics is not None and dynamics.coupled:
        raise ValueError(
            "coupled dynamics (temperature ladder / custom acceptance rule / "
            "replica exchange / shared RNG) span a lock-step replica group; "
            f"run solver {solver!r} through "
            "repro.runtime.run_trials(dynamics=...), which routes the group "
            "to the batched engine instead of scalar trials"
        )


def _resolve_schedule(problem: CombinatorialProblem, params: Mapping[str, Any],
                      dynamics: Optional[Dynamics]) -> TemperatureSchedule:
    """Schedule precedence: dynamics override > explicit param > auto."""
    if dynamics is not None and dynamics.schedule is not None:
        return dynamics.schedule
    schedule = params.get("schedule")
    if schedule is not None:
        return _build_schedule(schedule)
    return _auto_schedule(problem)


def _build_variability(value: Any, seed: int):
    """Per-trial variability model derived from a template and the trial seed.

    The caller's model (or config dict) only fixes the sigmas; every trial
    re-samples its own device deviations from a seed spawned off the trial
    seed -- each trial simulates a freshly programmed chip, identically on
    every backend.
    """
    from repro.fefet.variability import VariabilityModel

    if value is None:
        return None
    if isinstance(value, VariabilityModel):
        payload = {"threshold_sigma": value.threshold_sigma,
                   "on_current_sigma": value.on_current_sigma}
    elif isinstance(value, Mapping):
        payload = {key: val for key, val in value.items() if key != "seed"}
    else:
        raise TypeError("variability must be a VariabilityModel or a config dict")
    device_seed = int(np.random.SeedSequence([seed, 0xFEFE]).generate_state(1)[0])
    return VariabilityModel(seed=device_seed, **payload)


def _auto_schedule(problem: CombinatorialProblem) -> TemperatureSchedule:
    """Instance-scaled geometric schedule (the protocol used throughout
    ``analysis``): start at 20x the largest objective coefficient so uphill
    moves remain possible early in the anneal.

    The scale is read from the problem's profit/coefficient data directly
    when available -- building the full O(n^2) QUBO matrix per trial just to
    read its largest entry would dominate short trials at paper scale.
    """
    profits = getattr(problem, "profits", None)
    if profits is not None and np.size(profits):
        scale = float(np.max(np.abs(profits)))
    else:
        try:
            scale = float(problem.to_qubo().max_abs_coefficient)
        except Exception:
            scale = 1.0
    scale = scale or 1.0
    return GeometricSchedule(start_temperature=20.0 * scale,
                             end_temperature=max(0.02 * scale, 1e-3))


def _initial_configuration(problem: CombinatorialProblem, params: Mapping[str, Any],
                           rng: np.random.Generator,
                           initial: Optional[np.ndarray]) -> np.ndarray:
    """Resolve the trial's starting configuration.

    ``params["initial"]`` selects the sampling policy when no explicit initial
    state was handed to the executor: ``"feasible"`` (default) draws a random
    feasible configuration, ``"random"`` a uniform binary vector, ``"zeros"``
    the empty selection (the erased-chip state of Fig. 7(f)).
    """
    if initial is not None:
        return np.asarray(initial, dtype=float)
    policy = params.get("initial", "feasible")
    if policy == "feasible":
        return problem.random_feasible_configuration(rng)
    if policy == "random":
        return rng.integers(0, 2, size=problem.num_variables).astype(float)
    if policy == "zeros":
        return np.zeros(problem.num_variables)
    raise ValueError(f"unknown initial-state policy {policy!r}")


def _finalize(result: SolveResult, seed: int, elapsed: float) -> SolveResult:
    """Stamp seed and wall time; ``elapsed`` is the trial span's seconds."""
    result.trial_seed = int(seed)
    result.wall_time = float(elapsed)
    return result


# --------------------------------------------------------------------- #
# Annealing trial functions
# --------------------------------------------------------------------- #
def _hycim_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
                 seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="hycim", seed=int(seed),
                                 kernel_resolved="scalar",
                                 **worker_attrs()) as span:
        dynamics = build_dynamics(params.get("dynamics"))
        _coupled_dynamics_guard(dynamics, "hycim")
        solver = HyCiMSolver(
            problem,
            # Defaults mirror HyCiMSolver's own: hardware simulation on.
            use_hardware=bool(params.get("use_hardware", True)),
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            filter_rows=int(params.get("filter_rows", 16)),
            crossbar_config=params.get("crossbar_config"),
            variability=_build_variability(params.get("variability"), seed),
            matchline_noise_sigma=float(
                params.get("matchline_noise_sigma", 0.0)),
            record_history=bool(params.get("record_history", False)),
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        start = _initial_configuration(problem, params, rng, initial)
        result = solver.solve(initial=start, rng=rng)
    return _finalize(result, seed, span.elapsed)


def _sa_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
              seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    """Software SA on the objective QUBO with feasibility-rejection.

    ``problem.to_qubo()`` deliberately omits inequality constraints for
    knapsack-type problems, so an unconstrained anneal would drift over
    capacity; by default infeasible candidates are rejected through the
    annealer's ``accept_filter`` hook (the same hook HyCiM replaces with the
    CiM filter).  Pass ``respect_constraints=False`` to anneal the raw QUBO.
    """
    with current_recorder().span("trial", solver="sa", seed=int(seed),
                                 kernel_resolved="scalar",
                                 **worker_attrs()) as span:
        dynamics = build_dynamics(params.get("dynamics"))
        _coupled_dynamics_guard(dynamics, "sa")
        annealer = SimulatedAnnealer(
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            record_history=bool(params.get("record_history", False)),
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        start = _initial_configuration(problem, params, rng, initial)
        accept_filter = (problem.is_feasible
                         if params.get("respect_constraints", True) else None)
        result = annealer.anneal(problem.to_qubo(), initial=start, rng=rng,
                                 accept_filter=accept_filter)
        best = result.best_configuration
        result.feasible = problem.is_feasible(best)
        result.best_objective = (problem.objective(best)
                                 if result.feasible else None)
    return _finalize(result, seed, span.elapsed)


def _dqubo_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
                 seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="dqubo", seed=int(seed),
                                 kernel_resolved="scalar",
                                 **worker_attrs()) as span:
        dynamics = build_dynamics(params.get("dynamics"))
        _coupled_dynamics_guard(dynamics, "dqubo")
        encoding = params.get("encoding", SlackEncoding.ONE_HOT)
        if isinstance(encoding, str):
            encoding = SlackEncoding(encoding)
        solver = DQUBOAnnealer(
            problem,
            alpha=float(params.get("alpha", 2.0)),
            beta=float(params.get("beta", 2.0)),
            encoding=encoding,
            use_hardware=bool(params.get("use_hardware", False)),
            num_iterations=int(params.get("num_iterations", 1000)),
            moves_per_iteration=int(params.get("moves_per_iteration", 1)),
            schedule=_resolve_schedule(problem, params, dynamics),
            move_generator=_build_move(
                params.get("move_generator", "single_flip")),
            crossbar_config=params.get("crossbar_config"),
            record_history=bool(params.get("record_history", False)),
            seed=seed,
        )
        rng = np.random.default_rng(seed)
        start = _initial_configuration(problem, params, rng, initial)
        result = solver.solve(initial=start, rng=rng)
    return _finalize(result, seed, span.elapsed)


# --------------------------------------------------------------------- #
# Exact / reference trial functions
# --------------------------------------------------------------------- #
def _reference_energy(problem: CombinatorialProblem, x: np.ndarray) -> float:
    """QUBO energy of ``x`` under the HyCiM inequality-QUBO form, so exact
    solvers report energies on the same scale as the annealers."""
    return float(problem.to_inequality_qubo().energy(x))


def _exact_result(problem: CombinatorialProblem, x: np.ndarray, value: float,
                  name: str, num_evaluated: int = 0) -> SolveResult:
    x = np.asarray(x, dtype=float)
    return SolveResult(
        best_configuration=x,
        best_energy=_reference_energy(problem, x),
        best_objective=float(value),
        feasible=problem.is_feasible(x),
        num_iterations=num_evaluated,
        num_feasible_evaluations=num_evaluated,
        solver_name=name,
        metadata={"deterministic": True},
    )


def _greedy_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
                  seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="greedy", seed=int(seed),
                                 **worker_attrs()) as span:
        outcome = solve_qkp_greedy(problem)
        result = _exact_result(problem, outcome.configuration, outcome.value,
                               "Greedy")
    return _finalize(result, seed, span.elapsed)


def _dp_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
              seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="dp", seed=int(seed),
                                 **worker_attrs()) as span:
        profits = getattr(problem, "profits", None)
        if profits is None or np.ndim(profits) != 1:
            raise TypeError(
                "solver 'dp' needs a linear knapsack problem (1-D profits); "
                f"got {type(problem).__name__} -- use 'brute_force' or "
                "'hycim' for quadratic objectives"
            )
        outcome = solve_knapsack_dp(problem)
        result = _exact_result(problem, outcome.best_configuration,
                               outcome.best_value, "DP")
    return _finalize(result, seed, span.elapsed)


def _brute_force_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
                       seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="brute_force", seed=int(seed),
                                 **worker_attrs()) as span:
        outcome = solve_brute_force(
            problem, max_variables=int(params.get("max_variables", 22)))
        result = _exact_result(problem, outcome.best_configuration,
                               outcome.best_value, "BruteForce",
                               num_evaluated=outcome.num_evaluated)
    return _finalize(result, seed, span.elapsed)


def _local_search_trial(problem: CombinatorialProblem, params: Mapping[str, Any],
                        seed: int, initial: Optional[np.ndarray]) -> SolveResult:
    with current_recorder().span("trial", solver="local_search", seed=int(seed),
                                 **worker_attrs()) as span:
        rng = np.random.default_rng(seed)
        if initial is None:
            if params.get("greedy_start", False):
                start = solve_qkp_greedy(problem).configuration
            else:
                start = problem.random_feasible_configuration(rng)
        else:
            start = np.asarray(initial, dtype=float)
        outcome = improve_qkp_local_search(
            problem, start, max_passes=int(params.get("max_passes", 50)))
        result = _exact_result(problem, outcome.configuration, outcome.value,
                               "LocalSearch", num_evaluated=outcome.iterations)
    return _finalize(result, seed, span.elapsed)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_REGISTRY: Dict[str, TrialFunction] = {
    "hycim": _hycim_trial,
    "sa": _sa_trial,
    "dqubo": _dqubo_trial,
    "greedy": _greedy_trial,
    "dp": _dp_trial,
    "brute_force": _brute_force_trial,
    "local_search": _local_search_trial,
}

#: Solvers that produce the same result on every trial; campaigns and
#: portfolios run these once instead of ``num_trials`` times.
DETERMINISTIC_SOLVERS = frozenset({"greedy", "dp", "brute_force"})

#: Vectorised (lock-step replica) trial functions, keyed like ``_REGISTRY``.
#: Populated lazily from :mod:`repro.batched.trials` so importing the
#: registry never pulls the batched engine in (and vice versa).
_BATCHED_REGISTRY: Dict[str, BatchedTrialFunction] = {}
_batched_builtins_loaded = False


def _load_batched_builtins() -> None:
    global _batched_builtins_loaded
    if not _batched_builtins_loaded:
        _batched_builtins_loaded = True
        # Importing the module registers the built-in batched solvers.
        import repro.batched.trials  # noqa: F401


def _register_builtin_batched(name: str, batched_fn: BatchedTrialFunction,
                              scalar_fn: TrialFunction) -> None:
    """Pair a built-in batched engine with its built-in scalar trial function.

    Because the built-ins load lazily (on the first vectorized run), the user
    may already have replaced the scalar solver or registered their own
    batched function under ``name``.  A batched engine is only a valid
    stand-in for the *specific* scalar function it mirrors, so registration
    is skipped unless ``name`` still maps to ``scalar_fn`` and no user
    batched function claimed the slot -- the executor then simply falls back
    to the (possibly user-supplied) scalar path.
    """
    if _REGISTRY.get(name) is scalar_fn and name not in _BATCHED_REGISTRY:
        _BATCHED_REGISTRY[name] = batched_fn


def available_solvers() -> Tuple[str, ...]:
    """The registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


def register_solver(name: str, trial_fn: TrialFunction, *,
                    overwrite: bool = False) -> None:
    """Register a custom trial function under ``name``.

    ``trial_fn`` must be picklable (a module-level function) when the process
    backend is used, and must honour the ``(problem, params, seed, initial)``
    signature.
    """
    if not name or not isinstance(name, str):
        raise ValueError("solver name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise KeyError(f"solver {name!r} is already registered (pass overwrite=True)")
    if not callable(trial_fn):
        raise TypeError("trial_fn must be callable")
    if _REGISTRY.get(name) is not trial_fn:
        # A previously paired batched engine mirrors the *old* scalar
        # function; dropping it makes every backend fall back to the new
        # scalar path instead of silently running stale vectorised code.
        _BATCHED_REGISTRY.pop(name, None)
    _REGISTRY[name] = trial_fn


def register_batched_solver(name: str, batched_fn: BatchedTrialFunction, *,
                            overwrite: bool = False) -> None:
    """Register a vectorised (lock-step replica group) trial function.

    ``batched_fn`` must honour the ``(problem, params, seeds, initials) ->
    [SolveResult, ...]`` signature, return one result per seed in order, and
    consume ``default_rng(seeds[k])`` for replica ``k`` exactly as the
    scalar trial function registered under the same name would -- the
    executor relies on this to keep ``backend="vectorized"`` results
    identical per seed to the serial backend.  Like scalar trial functions it
    must be a picklable module-level function to work with the process
    backend's ``replicas_per_task`` grouping.
    """
    if not name or not isinstance(name, str):
        raise ValueError("solver name must be a non-empty string")
    if name in _BATCHED_REGISTRY and not overwrite:
        raise KeyError(
            f"batched solver {name!r} is already registered (pass overwrite=True)"
        )
    if not callable(batched_fn):
        raise TypeError("batched_fn must be callable")
    _BATCHED_REGISTRY[name] = batched_fn


def get_batched_trial_function(name: str) -> Optional[BatchedTrialFunction]:
    """The batched trial function for ``name``, or ``None`` if the solver has
    no vectorised implementation (the executor then falls back to running the
    group's trials through the scalar trial function, one by one, which
    yields identical results)."""
    _load_batched_builtins()
    return _BATCHED_REGISTRY.get(name)


def unregister_solver(name: str) -> None:
    """Remove a previously registered custom solver (built-ins included)."""
    _REGISTRY.pop(name, None)
    _BATCHED_REGISTRY.pop(name, None)


def get_trial_function(name: str) -> TrialFunction:
    """Look up the trial function for ``name``; raises ``KeyError`` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown solver {name!r}; available: {available_solvers()}"
        ) from error


def run_single_trial(problem: CombinatorialProblem, spec: SpecLike, seed: int,
                     initial: Optional[np.ndarray] = None) -> SolveResult:
    """Execute one trial in-process (the unit of work the executor dispatches)."""
    resolved = as_solver_spec(spec)
    trial_fn = get_trial_function(resolved.solver)
    return trial_fn(problem, resolved.params, int(seed), initial)

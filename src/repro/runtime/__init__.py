"""Parallel solver runtime: registry, executor, campaigns, portfolios.

The single front door for running any solver of the reproduction at scale.
The paper's whole evaluation protocol is "many independent SA trials per
instance, score the success rate"; this package owns that loop:

* :mod:`repro.runtime.registry` -- solver names -> picklable trial functions
  (``"hycim"``, ``"sa"``, ``"dqubo"``, ``"greedy"``, ``"dp"``,
  ``"brute_force"``, ``"local_search"``), constructible from plain config
  dicts.
* :mod:`repro.runtime.executor` -- :func:`run_trials`: N replica seeds per
  instance, fanned out over a ``multiprocessing`` pool (``backend=
  "process"``), run in-process (``backend="serial"``) or advanced in
  lock-step through the vectorised replica engine of :mod:`repro.batched`
  (``backend="vectorized"``), with ``SeedSequence.spawn`` seed derivation
  making all backends identical per seed (bitwise in software mode on
  integer-valued objective data; float data within fp tolerance).
  ``replicas_per_task`` composes process-level and replica-level
  parallelism: each worker task runs vectorised replica groups.
* :mod:`repro.runtime.campaign` -- (instance x solver x params) sweeps with
  per-cell aggregation and early stopping on the success bar.
* :mod:`repro.runtime.portfolio` -- several solvers racing on one instance,
  best feasible answer wins.
* :mod:`repro.runtime.aggregate` -- best-of / success-rate /
  time-to-solution statistics compatible with :mod:`repro.analysis.metrics`.
"""

# Import order matters: registry and executor must be bound before the
# aggregation modules, whose import of repro.analysis.metrics triggers
# repro.analysis.__init__, whose submodules import run_trials back from this
# (then partially initialised) package.
from repro.runtime.registry import (
    DETERMINISTIC_SOLVERS,
    SolverSpec,
    as_solver_spec,
    available_solvers,
    build_dynamics,
    get_batched_trial_function,
    get_trial_function,
    register_batched_solver,
    register_solver,
    run_single_trial,
    unregister_solver,
)
from repro.runtime.executor import (
    BACKENDS,
    TrialBatch,
    concatenate_batches,
    derive_trial_seeds,
    replay_trial,
    run_trials,
)
from repro.runtime.aggregate import (
    DETERMINISTIC_STATISTICS_FIELDS,
    STATISTICS_HEADER,
    TrialStatistics,
    aggregate_trials,
    mean_success_over_batches,
    meets_success_bar,
    race_key,
    statistics_fingerprint,
    statistics_table,
    success_bar,
)
from repro.runtime.campaign import (
    CampaignRecord,
    CampaignResult,
    expand_param_grid,
    run_campaign,
)
from repro.runtime.portfolio import DEFAULT_PORTFOLIO, PortfolioResult, run_portfolio

__all__ = [
    "BACKENDS",
    "DEFAULT_PORTFOLIO",
    "DETERMINISTIC_SOLVERS",
    "DETERMINISTIC_STATISTICS_FIELDS",
    "STATISTICS_HEADER",
    "CampaignRecord",
    "CampaignResult",
    "PortfolioResult",
    "SolverSpec",
    "TrialBatch",
    "TrialStatistics",
    "aggregate_trials",
    "as_solver_spec",
    "available_solvers",
    "build_dynamics",
    "concatenate_batches",
    "derive_trial_seeds",
    "expand_param_grid",
    "get_batched_trial_function",
    "get_trial_function",
    "mean_success_over_batches",
    "meets_success_bar",
    "race_key",
    "register_batched_solver",
    "register_solver",
    "replay_trial",
    "run_campaign",
    "run_portfolio",
    "run_single_trial",
    "run_trials",
    "statistics_fingerprint",
    "statistics_table",
    "success_bar",
    "unregister_solver",
]

"""Aggregation of trial batches into the paper's summary statistics.

Turns a :class:`~repro.runtime.executor.TrialBatch` into the best-of /
success-rate / time-to-solution numbers the evaluation section reports,
reusing the metric definitions of :mod:`repro.analysis.metrics` (success =
reaching ``threshold * reference``, per Sec. 4.3 of the paper).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.annealing.result import SolveResult
from repro.runtime.executor import TrialBatch

# NOTE: repro.analysis.metrics is imported lazily inside aggregate_trials --
# importing it here would trigger repro.analysis.__init__, whose experiment
# modules import back from repro.runtime while this module is still loading.


def race_key(result: SolveResult, maximize: bool):
    """Cross-solver comparison key: feasibility first, then the *native*
    objective.  Internal energies are not comparable across solvers -- the
    D-QUBO annealer's energy includes slack-penalty terms the others lack --
    so the energy only orders results that report no objective.
    """
    if result.best_objective is not None:
        value = -result.best_objective if maximize else result.best_objective
        return (not result.feasible, 0, value)
    return (not result.feasible, 1, result.best_energy)


@dataclass(frozen=True)
class TrialStatistics:
    """Summary of one trial batch (one solver on one instance).

    Attributes
    ----------
    solver / problem_name / backend:
        Provenance of the batch.
    num_trials:
        Executed trials (may be below the request when early-stopped).
    num_feasible:
        Trials whose best configuration satisfies the constraints.
    best_energy / mean_energy:
        Best-of and average internal (QUBO) energy over trials.
    best_objective / mean_objective:
        Best-of and average native objective over *feasible* trials
        (``None`` when no trial ended feasible).
    success_rate_value:
        Fraction of trials reaching the success bar.  ``None`` without a
        reference, and also ``None`` for early-stopped batches (which end at
        their first success by construction, so any rate over the executed
        trials would be upward-biased).
    mean_normalized_value:
        Average objective divided by the reference (infeasible trials count
        as 0, matching the Fig. 10 protocol); ``None`` under the same
        conditions as the success rate.
    total_wall_time / mean_trial_time:
        Summed and per-trial average wall-clock seconds.
    time_to_solution:
        Cumulative trial time until the first successful trial (``None`` when
        no trial succeeded or no reference was given).  Under the serial
        protocol this is the expected time a practitioner waits for a
        success.
    """

    solver: str
    problem_name: str
    backend: str
    num_trials: int
    num_feasible: int
    best_energy: float
    mean_energy: float
    best_objective: Optional[float]
    mean_objective: Optional[float]
    success_rate_value: Optional[float]
    mean_normalized_value: Optional[float]
    total_wall_time: float
    mean_trial_time: float
    time_to_solution: Optional[float]


def _objective_or_worst(result, maximize: bool) -> float:
    """A trial's scored value: its objective, or the worst possible value
    when it ended infeasible (0 for maximization per the Fig. 10 protocol,
    +inf for minimization)."""
    if not result.feasible or result.best_objective is None:
        return 0.0 if maximize else float("inf")
    return float(result.best_objective)


def success_bar(reference: float, threshold: float, maximize: bool) -> float:
    """The objective value a trial must reach to count as a success.

    For maximization this is ``threshold * reference``; for minimization a
    trial succeeds when it gets within the same relative margin *above* the
    best-known value, i.e. ``reference / threshold`` for positive references
    (the symmetric rule for negative ones, and a small absolute tolerance
    when the best-known value is exactly zero).
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if maximize:
        return threshold * reference
    if reference == 0:
        return 1e-9
    return reference / threshold if reference > 0 else threshold * reference


def _meets_bar(value: float, bar: float, maximize: bool) -> bool:
    return value >= bar if maximize else value <= bar


def meets_success_bar(value: float, reference: float, threshold: float,
                      maximize: bool) -> bool:
    """Whether ``value`` counts as a success against ``reference``.

    The single definition of the paper's success criterion, shared by the
    aggregation, the campaigns' early stopping and the Table 1 runner.
    """
    return _meets_bar(value, success_bar(reference, threshold, maximize), maximize)


def aggregate_trials(batch: TrialBatch, reference: Optional[float] = None,
                     threshold: float = 0.95,
                     maximize: bool = True) -> TrialStatistics:
    """Reduce a batch to the paper's summary statistics.

    Parameters
    ----------
    batch:
        Output of :func:`repro.runtime.executor.run_trials`.
    reference:
        Best-known objective value of the instance; enables the
        success-rate, normalized-value and time-to-solution fields.
    threshold:
        Success bar as a relative margin on ``reference`` (paper: 0.95).
    maximize:
        Direction of the native objective (pass the problem's
        ``is_maximization``); flips the success comparison and the best-of
        selection for minimization problems.
    """
    from repro.analysis.metrics import normalized_values

    if not batch.results:
        raise ValueError("cannot aggregate an empty batch")
    energies = batch.best_energies
    feasible = [r for r in batch.results if r.feasible]
    objectives = [float(r.best_objective) for r in feasible
                  if r.best_objective is not None]
    trial_times = np.array([r.wall_time or 0.0 for r in batch.results])

    rate: Optional[float] = None
    mean_normalized: Optional[float] = None
    time_to_solution: Optional[float] = None
    if reference is not None:
        values = [_objective_or_worst(r, maximize) for r in batch.results]
        bar = success_bar(reference, threshold, maximize)
        # An early-stopped batch ends at its first success by construction,
        # so a rate over the executed trials would be upward-biased; only
        # complete batches report success-rate / normalized-value estimates
        # (run with early_stop=False / no target for unbiased rates).
        if not batch.stopped_early:
            # Equivalent to metrics.success_rate for positive maximization
            # references, but also defined for zero/negative ones (where a
            # cell should report a number, not abort the campaign).
            rate = float(np.mean([_meets_bar(v, bar, maximize) for v in values]))
            if reference > 0 and np.all(np.isfinite(values)):
                mean_normalized = float(np.mean(normalized_values(values, reference)))
        elapsed = 0.0
        for result, value in zip(batch.results, values):
            elapsed += result.wall_time or 0.0
            if _meets_bar(value, bar, maximize):
                time_to_solution = elapsed
                break

    return TrialStatistics(
        solver=batch.spec.display_name,
        problem_name=batch.problem_name,
        backend=batch.backend,
        num_trials=batch.num_trials,
        num_feasible=len(feasible),
        best_energy=float(energies.min()),
        mean_energy=float(energies.mean()),
        best_objective=(max(objectives) if maximize else min(objectives))
        if objectives else None,
        mean_objective=float(np.mean(objectives)) if objectives else None,
        success_rate_value=rate,
        mean_normalized_value=mean_normalized,
        total_wall_time=float(trial_times.sum()),
        mean_trial_time=float(trial_times.mean()),
        time_to_solution=time_to_solution,
    )


#: The wall-clock timing fields -- the only TrialStatistics content that
#: differs between two executions of the same trials.
_TIMING_STATISTICS_FIELDS = frozenset(
    {"total_wall_time", "mean_trial_time", "time_to_solution"})

#: TrialStatistics fields that are pure functions of the trial outcomes.
#: Derived from the dataclass itself so a future field is included in the
#: resume-parity fingerprint by default; only explicitly listed timing
#: fields are excluded.
DETERMINISTIC_STATISTICS_FIELDS = tuple(
    f.name for f in dataclasses.fields(TrialStatistics)
    if f.name not in _TIMING_STATISTICS_FIELDS)


def statistics_fingerprint(stats: TrialStatistics) -> Tuple:
    """The deterministic content of a :class:`TrialStatistics`.

    Two runs of the same trials -- uninterrupted, or interrupted and resumed
    from a :class:`repro.store.CampaignStore` -- produce *bitwise identical*
    fingerprints: every field derived from trial outcomes is included, and
    only the wall-clock timing fields (``total_wall_time``,
    ``mean_trial_time``, ``time_to_solution``) are excluded, since no two
    executions share wall-clock timings.  This is the equality the store's
    resume guarantee is stated (and tested) in.
    """
    return tuple(getattr(stats, name)
                 for name in DETERMINISTIC_STATISTICS_FIELDS)


def mean_success_over_batches(stats: Sequence[TrialStatistics]) -> float:
    """Average success rate across instances (the Fig. 10 headline number)."""
    rates = [s.success_rate_value for s in stats if s.success_rate_value is not None]
    if not rates:
        raise ValueError("no batch carries a success rate (references missing?)")
    return float(np.mean(rates))


def statistics_table(stats: Sequence[TrialStatistics]) -> List[List[str]]:
    """Rows for :func:`repro.analysis.reporting.format_table`."""

    def fmt(value, pattern="{:.3f}"):
        return "n/a" if value is None else pattern.format(value)

    return [
        [s.problem_name, s.solver, str(s.num_trials),
         f"{s.num_feasible}/{s.num_trials}",
         fmt(s.best_objective, "{:.4g}"),
         fmt(s.success_rate_value, "{:.1%}"),
         fmt(s.mean_normalized_value),
         f"{s.total_wall_time:.2f}s",
         fmt(s.time_to_solution, "{:.2f}s")]
        for s in stats
    ]


#: Header matching :func:`statistics_table` rows.
STATISTICS_HEADER = [
    "instance", "solver", "trials", "feasible", "best value",
    "success", "mean norm.", "total time", "time-to-sol.",
]

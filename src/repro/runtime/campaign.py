"""Batched campaigns: (instance x solver x params) sweeps with early stopping.

A campaign is the runtime's unit of large-scale evaluation: it runs every
registered solver configuration against every problem instance, ``num_trials``
replica seeds per cell, and aggregates each cell into the paper's summary
statistics.  Master seeds are spawned hierarchically (per instance, then per
solver) from the campaign seed, so

* appending instances or solvers to the grid leaves every existing cell's
  seed -- and therefore its results -- unchanged, and
* the whole campaign is reproducible from a single integer.

When a reference value is available for an instance, each cell early-stops as
soon as a trial reaches ``threshold * reference`` (the paper's success bar) --
at production scale this is what keeps a thousand-trial sweep from burning
budget on instances a solver cracks in its first trial.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.problems.base import CombinatorialProblem
from repro.runtime.aggregate import (
    TrialStatistics,
    aggregate_trials,
    race_key,
    statistics_fingerprint,
    success_bar,
)
from repro.runtime.executor import TrialBatch, run_trials
from repro.runtime.registry import (
    DETERMINISTIC_SOLVERS,
    SolverSpec,
    SpecLike,
    as_solver_spec,
)
from repro.telemetry.recorder import current_recorder, use_recorder

ReferenceProvider = Union[
    Mapping[str, float], Callable[[CombinatorialProblem], float], None
]


def expand_param_grid(solver: str, grid: Mapping[str, Sequence[Any]],
                      base_params: Optional[Mapping[str, Any]] = None,
                      label: Optional[str] = None) -> List[SolverSpec]:
    """Cartesian product of a parameter grid as labelled solver specs.

    ``expand_param_grid("hycim", {"num_iterations": (100, 1000)})`` yields two
    specs labelled ``hycim[num_iterations=100]`` and
    ``hycim[num_iterations=1000]``.
    """
    if not grid:
        return [SolverSpec(solver, dict(base_params or {}), label=label)]
    keys = list(grid)
    specs: List[SolverSpec] = []
    for combination in itertools.product(*(grid[key] for key in keys)):
        params = dict(base_params or {})
        params.update(zip(keys, combination))
        tag = ",".join(f"{key}={value}" for key, value in zip(keys, combination))
        specs.append(SolverSpec(solver, params,
                                label=f"{label or solver}[{tag}]"))
    return specs


@dataclass(frozen=True)
class CampaignRecord:
    """One campaign cell: a solver's trial batch on one instance."""

    problem_name: str
    spec: SolverSpec
    batch: TrialBatch
    statistics: TrialStatistics
    reference: Optional[float]
    maximize: bool = True


@dataclass
class CampaignResult:
    """All cells of a campaign plus convenience views."""

    records: List[CampaignRecord]
    master_seed: int
    backend: str

    @property
    def statistics(self) -> List[TrialStatistics]:
        return [record.statistics for record in self.records]

    def for_solver(self, label: str) -> List[CampaignRecord]:
        """Cells of the solver with the given display name."""
        return [r for r in self.records if r.spec.display_name == label]

    def for_instance(self, name: str) -> List[CampaignRecord]:
        """Cells of one problem instance."""
        return [r for r in self.records if r.problem_name == name]

    def mean_success_by_solver(self) -> Dict[str, float]:
        """Per-solver average success rate over *complete* cells.

        Early-stopped cells carry no unbiased rate and are excluded, which
        under ``early_stop=True`` skews this average towards cells where the
        solver struggled (the easy wins stopped early).  For an
        early-stopping campaign report :meth:`solved_fraction_by_solver`
        instead, or re-run with ``early_stop=False`` for true rates.
        """
        rates: Dict[str, List[float]] = {}
        for record in self.records:
            rate = record.statistics.success_rate_value
            if rate is not None:
                rates.setdefault(record.spec.display_name, []).append(rate)
        return {label: float(np.mean(values)) for label, values in rates.items()}

    def solved_fraction_by_solver(self) -> Dict[str, float]:
        """Per-solver fraction of instances where any trial hit the bar.

        Well-defined for early-stopping campaigns: a cell counts as solved
        exactly when some executed trial reached the success bar (which is
        what triggers the early stop), i.e. its ``time_to_solution`` is set.
        """
        solved: Dict[str, List[bool]] = {}
        for record in self.records:
            if record.reference is None:
                continue
            solved.setdefault(record.spec.display_name, []).append(
                record.statistics.time_to_solution is not None)
        return {label: float(np.mean(flags)) for label, flags in solved.items()}

    def best_record(self, problem_name: str) -> CampaignRecord:
        """The cell holding the best feasible result for an instance.

        Compared with :func:`repro.runtime.aggregate.race_key` (feasibility,
        then native objective), since internal energies are not comparable
        across solvers.
        """
        cells = self.for_instance(problem_name)
        if not cells:
            raise KeyError(f"no campaign cell for instance {problem_name!r}")
        return min(cells,
                   key=lambda r: race_key(r.batch.best_result, r.maximize))

    def fingerprint(self) -> List[tuple]:
        """Deterministic content of the whole campaign, one tuple per cell.

        Built from :func:`repro.runtime.aggregate.statistics_fingerprint`
        plus each cell's reference and direction; an interrupted campaign
        resumed from a :class:`repro.store.CampaignStore` produces a
        fingerprint bitwise identical to the uninterrupted run's.
        """
        return [
            (record.problem_name, record.spec.display_name, record.reference,
             record.maximize, statistics_fingerprint(record.statistics))
            for record in self.records
        ]


def _resolve_reference(problem: CombinatorialProblem,
                       references: ReferenceProvider) -> Optional[float]:
    if references is None:
        return None
    if callable(references):
        return float(references(problem))
    name = getattr(problem, "name", None)
    if name is not None and name in references:
        return float(references[name])
    return None


def run_campaign(
    problems: Sequence[CombinatorialProblem],
    solvers: Sequence[SpecLike],
    num_trials: int = 10,
    backend: str = "serial",
    master_seed: int = 0,
    num_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    references: ReferenceProvider = None,
    threshold: float = 0.95,
    early_stop: bool = True,
    chips: Optional[int] = None,
    dynamics: Optional[Any] = None,
    store: Optional[Any] = None,
    resume: bool = True,
    telemetry: Optional[Any] = None,
) -> CampaignResult:
    """Sweep every solver spec over every instance and aggregate each cell.

    Parameters
    ----------
    problems:
        Problem instances (their ``name`` labels the rows).
    solvers:
        Solver specs -- names, ``(name, params)`` pairs, dicts or
        :class:`SolverSpec` objects, e.g. from :func:`expand_param_grid`.
    num_trials:
        Replica seeds per cell.  Deterministic solvers (greedy, DP, brute
        force) always run a single trial.
    backend / num_workers / chunk_size:
        Executor knobs, passed through to :func:`run_trials` per cell.
    references:
        Best-known objective per instance: a ``{name: value}`` mapping or a
        ``problem -> value`` callable.  Enables success rates and early
        stopping.
    threshold:
        Success bar as a fraction of the reference (paper: 0.95).
    early_stop:
        Stop a cell's remaining trials once one trial reaches the bar.
    chips:
        Batch-of-chips knob for the paper's variability ablations: cells
        whose spec carries a non-``None`` ``variability`` param run this
        many trials -- one freshly sampled simulated chip per trial -- as a
        single lock-step sweep on the vectorized backend (one chunk, one
        slice of the hardware stack's device axis per chip).  Cells without
        variability keep ``num_trials`` and ``backend`` unchanged, so one
        campaign can mix ideal-device cells with Monte-Carlo-over-chips
        cells.
    dynamics:
        Optional :class:`repro.dynamics.Dynamics` bundle applied to every
        cell (see :func:`repro.runtime.run_trials`); with e.g.
        :class:`repro.dynamics.ParallelTempering` each cell's ``num_trials``
        replicas anneal as one temperature ladder with replica exchange.  A
        cell whose spec already carries a ``dynamics`` param keeps its own.
    store / resume:
        Optional :class:`repro.store.CampaignStore` checkpointing.  Every
        cell's trials are persisted as they complete and the finished cell is
        logged to the store's campaign log; with ``resume=True`` (default) a
        re-run of an interrupted campaign skips persisted trials, and its
        :meth:`CampaignResult.fingerprint` is bitwise identical to the
        uninterrupted run's.  Hierarchical seeding makes each cell's master
        seed -- and so its store run key -- independent of execution order.
    telemetry:
        Observability sink (see :func:`repro.runtime.run_trials`).  A
        recorder instance wraps the whole sweep in a ``campaign`` span and
        captures every cell's run; ``telemetry=True`` (requires ``store``)
        makes each cell persist its own JSONL sidecar under its run key;
        ``None`` reports to the ambient recorder (telemetry off by default).
    """
    if num_trials < 1:
        raise ValueError("num_trials must be positive")
    if chips is not None and chips < 1:
        raise ValueError("chips must be positive")
    specs = [as_solver_spec(spec) for spec in solvers]
    if not specs:
        raise ValueError("campaign needs at least one solver spec")
    if not problems:
        raise ValueError("campaign needs at least one problem instance")

    # An explicit recorder becomes ambient for the whole sweep, so the
    # campaign span wraps every cell's run span; telemetry=True stays True
    # per cell (each cell persists its own sidecar under its run key).
    recorder = (telemetry if telemetry is not None and telemetry is not True
                else current_recorder())
    cell_telemetry = True if telemetry is True else None

    # Hierarchical spawn: one child sequence per problem, then one per spec.
    # SeedSequence.spawn children are a stable prefix -- appending instances
    # or solvers to the grid leaves every existing cell's seed unchanged.
    problem_seeds = np.random.SeedSequence(master_seed).spawn(len(problems))
    records: List[CampaignRecord] = []
    with use_recorder(recorder), recorder.span(
            "campaign", problems=len(problems), solvers=len(specs),
            backend=backend):
        for problem, problem_seq in zip(problems, problem_seeds):
            reference = _resolve_reference(problem, references)
            maximize = getattr(problem, "is_maximization", True)
            target = None
            if early_stop and reference is not None:
                target = success_bar(reference, threshold, maximize)
            spec_seeds = problem_seq.spawn(len(specs))
            for spec, spec_seq in zip(specs, spec_seeds):
                cell_master = int(spec_seq.generate_state(1, np.uint64)[0])
                trials = (1 if spec.solver in DETERMINISTIC_SOLVERS
                          else num_trials)
                cell_backend, cell_chunk = backend, chunk_size
                if (chips is not None
                        and spec.solver not in DETERMINISTIC_SOLVERS
                        and spec.params.get("variability") is not None):
                    # Monte-Carlo over simulated chips: one trial per chip,
                    # all chips advanced as one device-axis batch.
                    trials, cell_backend, cell_chunk = (chips, "vectorized",
                                                        chips)
                batch = run_trials(
                    problem,
                    solver=spec,
                    num_trials=trials,
                    backend=cell_backend,
                    master_seed=cell_master,
                    num_workers=num_workers,
                    chunk_size=cell_chunk,
                    target_objective=target,
                    dynamics=(None if spec.params.get("dynamics") is not None
                              else dynamics),
                    store=store,
                    resume=resume,
                    telemetry=cell_telemetry,
                )
                record = CampaignRecord(
                    problem_name=batch.problem_name,
                    spec=spec,
                    batch=batch,
                    statistics=aggregate_trials(batch, reference=reference,
                                                threshold=threshold,
                                                maximize=maximize),
                    reference=reference,
                    maximize=maximize,
                )
                if store is not None:
                    store.append_campaign_record(record, run_key=batch.run_key)
                records.append(record)
                if recorder.enabled:
                    recorder.counter("cells_completed")
    return CampaignResult(records=records, master_seed=master_seed,
                          backend=backend)

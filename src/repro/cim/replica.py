"""Replica array of the inequality filter (paper Fig. 5(b)).

The replica array is structurally identical to the working array but stores a
precomputed weight vector ``w'`` and is driven with a fixed input ``x'`` such
that ``sum_i w'_i x'_i = C``.  Its matchline therefore settles at a voltage
proportional to ``-C`` (paper Eq. (10)), providing the comparison threshold
for the voltage comparator.

Like the working array it carries the device axis: a sequence of variability
models programs one replica column set per simulated chip, and
:meth:`ReplicaArray.evaluate_devices` produces the per-chip threshold
voltages in one shot.  The scalar :meth:`ReplicaArray.evaluate` is the
``D = M = 1`` view.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cim.filter_array import (
    FilterArrayConfig,
    MatchlineReadout,
    VariabilityLike,
    WorkingArray,
)


def distribute_capacity(capacity: int, num_columns: int, max_column_weight: int) -> List[int]:
    """Spread the capacity ``C`` over replica columns.

    Greedy fill: columns store ``max_column_weight`` until the remainder fits
    in one more column.  Raises when the capacity cannot be represented by the
    array at all.
    """
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    if capacity > num_columns * max_column_weight:
        raise ValueError(
            f"capacity {capacity} exceeds replica array range "
            f"{num_columns * max_column_weight}"
        )
    weights = []
    remaining = int(capacity)
    for _ in range(num_columns):
        portion = min(remaining, max_column_weight)
        weights.append(portion)
        remaining -= portion
    return weights


class ReplicaArray:
    """A replica filter array encoding the capacity ``C``.

    Parameters
    ----------
    capacity:
        The inequality bound ``C`` to encode.
    num_columns:
        Number of columns (matches the working array so parasitics track).
    config:
        Shared array configuration -- *must* be the same object/values as the
        working array for the voltage comparison to be meaningful.
    variability:
        Optional device variability, sampled per replica cell; a sequence
        programs one chip per entry (the device axis), continuing each chip
        model's stream where the working array left it, exactly as scalar
        programming would.
    """

    def __init__(
        self,
        capacity: float,
        num_columns: int,
        config: Optional[FilterArrayConfig] = None,
        variability: VariabilityLike = None,
    ) -> None:
        self.config = config or FilterArrayConfig()
        if abs(capacity - round(capacity)) > 1e-9:
            raise ValueError("the replica array encodes integer capacities only")
        self.capacity = int(round(capacity))
        weights = distribute_capacity(self.capacity, num_columns, self.config.max_column_weight)
        self._array = WorkingArray(weights, config=self.config, variability=variability)
        # Fixed input configuration x' = all ones, so w'.x' = C exactly.
        self._fixed_input = np.ones(num_columns)

    @property
    def num_columns(self) -> int:
        """Number of replica columns."""
        return self._array.num_columns

    @property
    def num_devices(self) -> int:
        """Number of simulated chips ``D`` along the device axis."""
        return self._array.num_devices

    @property
    def stored_weights(self) -> np.ndarray:
        """The precomputed replica weight vector ``w'``."""
        return self._array.stored_weights

    @property
    def encoded_capacity(self) -> float:
        """The capacity value effectively realised by the replica cells."""
        return float(self._array.effective_weights @ self._fixed_input)

    @property
    def device_encoded_capacities(self) -> np.ndarray:
        """Per-chip realised capacities, shape ``(D,)``."""
        return self._array.device_effective_weights @ self._fixed_input

    def evaluate(self, rng: Optional[np.random.Generator] = None,
                 device: int = 0) -> MatchlineReadout:
        """Replica matchline readout (voltage proportional to ``-C``)."""
        return self._array.evaluate(self._fixed_input, rng=rng, device=device)

    def evaluate_batch(self, count: int,
                       rng: Optional[np.random.Generator] = None,
                       device: int = 0) -> np.ndarray:
        """``count`` replica matchline readouts as a voltage vector.

        One readout per replica of a batched filter evaluation; without
        readout noise every entry equals the scalar :meth:`evaluate` voltage.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        return self._array.evaluate_batch(
            np.tile(self._fixed_input, (count, 1)), rng=rng, device=device)

    def evaluate_devices(self, count: int,
                         rng: Optional[np.random.Generator] = None,
                         devices: Optional[np.ndarray] = None) -> np.ndarray:
        """``(K, count)`` replica readouts along the device axis.

        Row ``k`` holds chip ``devices[k]``'s threshold voltages (all chips
        in order when omitted); noise draws run through the same kernel as
        the working array's device evaluation.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        num_slices = (self.num_devices if devices is None
                      else np.asarray(devices).shape[0])
        batch = np.broadcast_to(
            self._fixed_input, (num_slices, count, self._fixed_input.shape[0]))
        return self._array.evaluate_devices(batch, rng=rng, devices=devices)

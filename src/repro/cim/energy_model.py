"""Energy and latency model of the HyCiM CiM macros.

The paper argues that filtering infeasible configurations *before* the QUBO
computation saves energy as well as area (Sec. 4.2 "indicating improved energy
efficiency and performance").  This module provides a per-operation
energy/latency model so that full SA runs can be costed: a filter evaluation
is cheap (one matchline discharge plus a comparator decision), a crossbar VMV
evaluation is expensive (all bit planes, column ADC conversions, add-shift
logic), and the D-QUBO baseline pays the crossbar price on *every* iteration
over a much larger array.

All values are behavioural defaults in picojoules / nanoseconds representative
of published 28 nm FeFET CiM macros; they are parameters, not measurements,
and only relative comparisons are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annealing.result import SolveResult
from repro.core.quantization import QuantizationReport


@dataclass(frozen=True)
class EnergyModelParameters:
    """Per-operation energy (pJ) and latency (ns) constants.

    Attributes
    ----------
    matchline_discharge_energy_per_cell:
        Charge drawn per conducting filter cell during the four-phase
        evaluation.
    comparator_energy:
        One 2-stage comparator decision.
    crossbar_read_energy_per_cell:
        One 1FeFET1R cell read during a VMV evaluation.
    adc_conversion_energy:
        One column ADC conversion.
    digital_accumulate_energy:
        Add-shift-sum work per column per bit plane.
    sa_logic_energy:
        SA logic work per iteration (candidate generation + acceptance).
    filter_latency / crossbar_latency / sa_logic_latency:
        Per-operation latencies (the filter and crossbar operate sequentially
        within one HyCiM iteration).
    """

    matchline_discharge_energy_per_cell: float = 0.02
    comparator_energy: float = 0.05
    crossbar_read_energy_per_cell: float = 0.01
    adc_conversion_energy: float = 1.5
    digital_accumulate_energy: float = 0.05
    sa_logic_energy: float = 2.0
    filter_latency: float = 4.0
    crossbar_latency: float = 10.0
    sa_logic_latency: float = 2.0

    def __post_init__(self) -> None:
        values = (
            self.matchline_discharge_energy_per_cell, self.comparator_energy,
            self.crossbar_read_energy_per_cell, self.adc_conversion_energy,
            self.digital_accumulate_energy, self.sa_logic_energy,
            self.filter_latency, self.crossbar_latency, self.sa_logic_latency,
        )
        if any(v < 0 for v in values):
            raise ValueError("energy/latency parameters must be non-negative")


@dataclass(frozen=True)
class RunCost:
    """Total energy (pJ) and latency (ns) of one SA run."""

    energy: float
    latency: float
    num_filter_evaluations: int
    num_crossbar_evaluations: int

    def __add__(self, other: "RunCost") -> "RunCost":
        if not isinstance(other, RunCost):
            return NotImplemented
        return RunCost(
            energy=self.energy + other.energy,
            latency=self.latency + other.latency,
            num_filter_evaluations=self.num_filter_evaluations + other.num_filter_evaluations,
            num_crossbar_evaluations=self.num_crossbar_evaluations + other.num_crossbar_evaluations,
        )


def filter_evaluation_energy(num_items: int, filter_rows: int,
                             params: EnergyModelParameters = EnergyModelParameters()) -> float:
    """Energy of one inequality-filter evaluation (working + replica + comparator)."""
    if num_items < 1 or filter_rows < 1:
        raise ValueError("num_items and filter_rows must be positive")
    cells = 2 * num_items * filter_rows
    return cells * params.matchline_discharge_energy_per_cell + params.comparator_energy


def crossbar_evaluation_energy(report: QuantizationReport, adc_share: int = 8,
                               params: EnergyModelParameters = EnergyModelParameters()) -> float:
    """Energy of one full VMV evaluation on a bit-sliced crossbar."""
    if adc_share < 1:
        raise ValueError("adc_share must be positive")
    n = report.num_variables
    bits = report.bits_per_element
    cell_reads = n * n * bits
    physical_columns = n * bits
    conversions = physical_columns
    accumulate = physical_columns
    return (cell_reads * params.crossbar_read_energy_per_cell
            + conversions * params.adc_conversion_energy
            + accumulate * params.digital_accumulate_energy)


def hycim_run_cost(result: SolveResult, report: QuantizationReport,
                   filter_rows: int = 16,
                   params: EnergyModelParameters = EnergyModelParameters()) -> RunCost:
    """Cost of a HyCiM SA run: every proposal pays for the filter, only the
    feasible ones pay for the crossbar."""
    filter_evals = result.num_feasible_evaluations + result.num_infeasible_skipped
    crossbar_evals = result.num_feasible_evaluations
    energy = (
        filter_evals * filter_evaluation_energy(report.num_variables, filter_rows, params)
        + crossbar_evals * crossbar_evaluation_energy(report, params=params)
        + result.num_iterations * params.sa_logic_energy
    )
    latency = (
        filter_evals * params.filter_latency
        + crossbar_evals * params.crossbar_latency
        + result.num_iterations * params.sa_logic_latency
    )
    return RunCost(energy=energy, latency=latency,
                   num_filter_evaluations=filter_evals,
                   num_crossbar_evaluations=crossbar_evals)


def dqubo_run_cost(result: SolveResult, report: QuantizationReport,
                   params: EnergyModelParameters = EnergyModelParameters()) -> RunCost:
    """Cost of a D-QUBO SA run: every iteration pays for a (much larger) crossbar
    evaluation and there is no filter."""
    crossbar_evals = result.num_iterations
    energy = (crossbar_evals * crossbar_evaluation_energy(report, params=params)
              + result.num_iterations * params.sa_logic_energy)
    latency = crossbar_evals * params.crossbar_latency + result.num_iterations * params.sa_logic_latency
    return RunCost(energy=energy, latency=latency,
                   num_filter_evaluations=0,
                   num_crossbar_evaluations=crossbar_evals)


def energy_saving(hycim: RunCost, dqubo: RunCost) -> float:
    """Fractional energy saving of HyCiM over the D-QUBO run (``1 - E_h/E_d``)."""
    if dqubo.energy <= 0:
        raise ValueError("D-QUBO energy must be positive")
    return 1.0 - hycim.energy / dqubo.energy

"""Matchline-based working array of the inequality filter (paper Fig. 4-5(a)).

An ``m x n`` array of 1FeFET1R cells.  Column ``i`` stores the item weight
``w_i`` decomposed into ``m`` cell weights ``w_ij in {0..k}`` with
``w_i = sum_j w_ij``; all matchlines are tied together and share a precharge
capacitance ``C_ML``.  During an evaluation the staircase read pulses turn ON
every cell whose stored weight admits the current phase; each conducting cell
removes an (approximately constant) packet of charge, so the final matchline
voltage obeys paper Eq. (9):

    V_ML  =  V_DD - dV * sum_i w_i x_i        (clipped at ground)

``dV`` is the discharge per unit of stored weight and is a configuration
parameter chosen by the enclosing :class:`~repro.cim.inequality_filter.
InequalityFilter` so the replica voltage sits mid-rail.

Device axis
-----------
The array follows the hardware stack's ``(D, M, n)`` shape contract
(ARCHITECTURE.md): ``D`` simulated chips, ``M`` lock-step replicas per chip,
``n`` columns.  Passing a *sequence* of variability models programs one chip
per model -- each chip's cells are sampled from its own model's stream, in
the exact per-cell order scalar programming would use -- and
:meth:`WorkingArray.evaluate_devices` evaluates a ``(D, M, n)`` batch in one
shot.  A single model (or ``None``) is the ``D = 1`` degenerate case, and
the scalar :meth:`WorkingArray.evaluate` / batched
:meth:`WorkingArray.evaluate_batch` methods are thin ``D = 1`` views over
the same evaluation kernel, consuming identical noise streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cim.device_axis import resolve_device_selection
from repro.fefet.cell import CellParameters, OneFeFETOneRCell, conduction_counts
from repro.fefet.variability import VariabilityModel

#: One chip (a single model / ``None``) or one chip per sequence entry.
VariabilityLike = Union[VariabilityModel, Sequence[Optional[VariabilityModel]], None]


def as_chip_models(variability: VariabilityLike) -> List[Optional[VariabilityModel]]:
    """Normalise a variability argument into one model slot per chip.

    ``None`` and a bare :class:`VariabilityModel` are the single-chip
    degenerate case; a sequence programs one chip per entry (``None`` entries
    denote ideal chips).
    """
    if variability is None or isinstance(variability, VariabilityModel):
        return [variability]
    models = list(variability)
    if not models:
        raise ValueError("a variability sequence must describe at least one chip")
    for model in models:
        if model is not None and not isinstance(model, VariabilityModel):
            raise TypeError(
                "variability entries must be VariabilityModel instances or None, "
                f"got {type(model).__name__}"
            )
    return models


def _as_integer_weights(weights: Sequence[int], what: str) -> np.ndarray:
    """Coerce programmed weights to integers, loudly rejecting fractions.

    FeFET cells store discrete levels, so a fractional weight cannot be
    programmed; silently rounding it would make the array evaluate a
    *different* constraint than the caller asked for (the filter's
    integer-scaling front end is the supported route for fractional
    constraint data).
    """
    values = np.asarray(list(weights), dtype=float)
    if values.size and np.any(np.abs(values - np.round(values)) > 1e-9):
        offender = values[np.abs(values - np.round(values)) > 1e-9][0]
        raise ValueError(
            f"{what} must be integers (FeFET cells store discrete levels); "
            f"got {offender!r} -- scale the constraint to integers first"
        )
    return np.round(values).astype(int)


def decompose_weight(weight: int, num_rows: int, max_cell_weight: int) -> List[int]:
    """Decompose an integer item weight into per-cell weights.

    ``weight = sum_j w_j`` with each ``w_j in {0..max_cell_weight}`` and at
    most ``num_rows`` cells (paper Sec. 3.3: "each item weight w_i is
    decomposed into multiple w_ij values").  Raises when the weight does not
    fit in the column.
    """
    if weight < 0:
        raise ValueError("weights must be non-negative")
    if weight > num_rows * max_cell_weight:
        raise ValueError(
            f"weight {weight} exceeds column capacity {num_rows * max_cell_weight}"
        )
    cells = []
    remaining = int(weight)
    for _ in range(num_rows):
        portion = min(remaining, max_cell_weight)
        cells.append(portion)
        remaining -= portion
    return cells


@dataclass(frozen=True)
class FilterArrayConfig:
    """Configuration of a filter working/replica array.

    Attributes
    ----------
    num_rows:
        Cells per column ``m`` (paper evaluation: 16, giving a per-item weight
        range of 0..64 with 4-level cells).
    cell:
        1FeFET1R cell parameters (defines ``max_cell_weight`` and V_DD).
    discharge_per_unit:
        Matchline voltage drop per unit of stored-weight-times-input (volts).
    noise_sigma:
        Gaussian noise (volts) added to each matchline readout, modelling
        charge-injection/kT-C noise.
    """

    num_rows: int = 16
    cell: CellParameters = field(default_factory=CellParameters)
    discharge_per_unit: float = 1e-3
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError("num_rows must be positive")
        if self.discharge_per_unit <= 0:
            raise ValueError("discharge_per_unit must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    @property
    def max_cell_weight(self) -> int:
        """Largest weight a single cell can store."""
        return self.cell.max_weight

    @property
    def max_column_weight(self) -> int:
        """Largest item weight a column can store (``m * k``)."""
        return self.num_rows * self.cell.max_weight

    @property
    def supply_voltage(self) -> float:
        """Matchline precharge voltage ``V_DD``."""
        return self.cell.supply_voltage


@dataclass(frozen=True)
class MatchlineReadout:
    """Result of one filter evaluation (four staircase phases).

    Attributes
    ----------
    voltage:
        Final matchline voltage including noise and ground clipping.
    ideal_voltage:
        Noise-free, unclipped value ``V_DD - dV * w.x``.
    discharge:
        Total voltage removed from the precharged matchline.
    weighted_sum:
        The effective ``w . x`` seen by the array (includes any cell-level
        conduction errors caused by device variability).
    """

    voltage: float
    ideal_voltage: float
    discharge: float
    weighted_sum: float


class WorkingArray:
    """An ``m x n`` filter array storing an item-weight vector.

    Parameters
    ----------
    weights:
        Integer item weights ``w_i`` (one per column).
    config:
        Array configuration.
    variability:
        ``None`` / a single model (one chip), or a sequence of models
        programming one chip per entry along the device axis.  Each chip's
        cells sample from that chip's stream at program time, in the scalar
        per-cell order (column-major: column 0's rows first).
    """

    def __init__(
        self,
        weights: Sequence[int],
        config: Optional[FilterArrayConfig] = None,
        variability: VariabilityLike = None,
    ) -> None:
        self.config = config or FilterArrayConfig()
        self._stored_weights = _as_integer_weights(weights, "item weights")
        if np.any(self._stored_weights < 0):
            raise ValueError("item weights must be non-negative")
        if np.any(self._stored_weights > self.config.max_column_weight):
            raise ValueError(
                "an item weight exceeds the column capacity "
                f"{self.config.max_column_weight}; increase num_rows"
            )
        self._chips = as_chip_models(variability)
        self._program()

    def _program(self) -> None:
        """Decompose weights into cells and sample per-chip device variation.

        One vectorised :meth:`VariabilityModel.sample_device_table` draw per
        chip replays the exact stream consumption of cell-by-cell scalar
        programming, and one :func:`conduction_counts` broadcast turns the
        sampled threshold shifts into per-chip effective weights -- the
        single programming kernel behind both the scalar and device-axis
        paths.  Cell objects (for per-cell inspection) are materialised
        lazily from the same sampled values.
        """
        num_rows = self.config.num_rows
        self._cell_weight_table = np.array(
            [decompose_weight(int(weight), num_rows, self.config.max_cell_weight)
             for weight in self._stored_weights],
            dtype=int,
        ).reshape(self.num_columns, num_rows)
        flat_weights = self._cell_weight_table.reshape(-1)
        num_chips = len(self._chips)
        shifts = np.zeros((num_chips, flat_weights.size))
        factors = np.ones((num_chips, flat_weights.size))
        for chip, model in enumerate(self._chips):
            if model is not None:
                shifts[chip], factors[chip] = model.sample_device_table(
                    flat_weights.size)
        counts = conduction_counts(flat_weights, self.config.cell, shifts)
        self._device_effective = counts.reshape(
            num_chips, self.num_columns, num_rows).sum(axis=2).astype(float)
        self._cell_shifts = shifts
        self._cell_factors = factors
        self._cells: Optional[List[List[OneFeFETOneRCell]]] = None

    def _ensure_cells(self) -> List[List[OneFeFETOneRCell]]:
        """Materialise cell objects for per-cell inspection (single chip only)."""
        if self.num_devices != 1:
            raise ValueError(
                "per-cell access is only available on single-chip arrays; "
                "use device_effective_weights for the device axis"
            )
        if self._cells is None:
            cells: List[List[OneFeFETOneRCell]] = []
            num_rows = self.config.num_rows
            for column in range(self.num_columns):
                column_cells = []
                for row in range(num_rows):
                    flat = column * num_rows + row
                    column_cells.append(OneFeFETOneRCell(
                        parameters=self.config.cell,
                        weight=int(self._cell_weight_table[column, row]),
                        threshold_shift=float(self._cell_shifts[0, flat]),
                        on_current_factor=float(self._cell_factors[0, flat]),
                    ))
                cells.append(column_cells)
            self._cells = cells
        return self._cells

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        """Number of items ``n`` (columns)."""
        return self._stored_weights.shape[0]

    @property
    def num_rows(self) -> int:
        """Cells per column ``m``."""
        return self.config.num_rows

    @property
    def num_devices(self) -> int:
        """Number of simulated chips ``D`` along the device axis."""
        return len(self._chips)

    @property
    def stored_weights(self) -> np.ndarray:
        """The programmed item weights."""
        return self._stored_weights.copy()

    @property
    def effective_weights(self) -> np.ndarray:
        """Per-column conduction counts actually realised by the cells.

        Equal to :attr:`stored_weights` for ideal devices; may deviate by a
        few units under strong threshold variability.  Shape ``(n,)`` for a
        single-chip array; multi-chip arrays must read the explicit
        :attr:`device_effective_weights`.
        """
        if self.num_devices != 1:
            raise ValueError(
                "a multi-chip array has one weight vector per chip; "
                "use device_effective_weights"
            )
        return self._device_effective[0].copy()

    @property
    def device_effective_weights(self) -> np.ndarray:
        """Effective weights per chip, shape ``(D, n)``."""
        return self._device_effective.copy()

    def cell(self, row: int, column: int) -> OneFeFETOneRCell:
        """Access an individual cell (row-major within a column)."""
        return self._ensure_cells()[column][row]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def reprogram(self, weights: Sequence[int]) -> None:
        """Erase and reprogram the array with a new weight vector."""
        new_weights = _as_integer_weights(weights, "item weights")
        if new_weights.shape[0] != self.num_columns:
            raise ValueError("reprogramming must keep the number of columns")
        if np.any(new_weights < 0) or np.any(new_weights > self.config.max_column_weight):
            raise ValueError("a weight is out of the representable range")
        self._stored_weights = new_weights
        self._program()

    def _resolve_devices(self, count: int,
                         devices: Optional[np.ndarray]) -> np.ndarray:
        return resolve_device_selection(count, devices, self.num_devices,
                                        kind="filter-array batch")

    def _evaluate_kernel(
        self, batch: np.ndarray, rng: Optional[np.random.Generator],
        devices: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The one evaluation kernel: ``(K, M, n)`` batch -> ``(K, M)`` readouts.

        Row ``k`` of the batch is evaluated on chip ``devices[k]``.  Returns
        ``(voltage, ideal_voltage, discharge, weighted_sum)``; readout noise
        (when configured) is drawn once for the whole batch from ``rng``, so
        the ``D = M = 1`` view consumes exactly the single draw the scalar
        path historically made.
        """
        if not np.all((batch == 0) | (batch == 1)):
            raise ValueError("input configurations must be binary")
        effective = self._device_effective[devices]
        weighted_sums = np.einsum("kmn,kn->km", batch, effective)
        discharge = self.config.discharge_per_unit * weighted_sums
        ideal_voltages = self.config.supply_voltage - discharge
        if self.config.noise_sigma > 0:
            generator = rng or np.random.default_rng()
            noise = generator.normal(0.0, self.config.noise_sigma,
                                     size=weighted_sums.shape)
        else:
            noise = 0.0
        voltages = np.maximum(0.0, ideal_voltages + noise)
        return voltages, ideal_voltages, discharge, weighted_sums

    def evaluate(self, x: Sequence[int],
                 rng: Optional[np.random.Generator] = None,
                 device: int = 0) -> MatchlineReadout:
        """Run the four-phase evaluation for input configuration ``x``.

        Returns the end-of-evaluation matchline voltage (Eq. (9)) of chip
        ``device`` -- the ``(1, 1, n)`` view over the evaluation kernel.
        """
        inputs = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if inputs.ndim != 1 or inputs.shape[0] != self.num_columns:
            raise ValueError(
                f"input configuration length {inputs.shape} != {self.num_columns} columns"
            )
        voltage, ideal, discharge, weighted = self._evaluate_kernel(
            inputs[None, None, :], rng, self._resolve_devices(1, np.array([device])))
        return MatchlineReadout(
            voltage=float(voltage[0, 0]),
            ideal_voltage=float(ideal[0, 0]),
            discharge=float(discharge[0, 0]),
            weighted_sum=float(weighted[0, 0]),
        )

    def evaluate_batch(self, configurations: np.ndarray,
                       rng: Optional[np.random.Generator] = None,
                       device: int = 0) -> np.ndarray:
        """Matchline voltages for an ``(M, n)`` batch on one chip.

        The ``(1, M, n)`` view over the evaluation kernel: one weighted-sum
        product covers every row, readout noise (when configured) is drawn
        independently per row, and the returned array holds the final
        (clipped) matchline voltage per replica.  Noise-free voltages equal
        the scalar path's value for each row.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.num_columns:
            raise ValueError(
                f"batch shape {batch.shape} incompatible with {self.num_columns} columns"
            )
        return self._evaluate_kernel(
            batch[None, :, :], rng, self._resolve_devices(1, np.array([device])))[0][0]

    def evaluate_devices(self, configurations: np.ndarray,
                         rng: Optional[np.random.Generator] = None,
                         devices: Optional[np.ndarray] = None) -> np.ndarray:
        """Matchline voltages for a ``(K, M, n)`` device-axis batch.

        Slice ``k`` evaluates on chip ``devices[k]`` (all chips in order when
        omitted, requiring ``K = D``).  Returns a ``(K, M)`` voltage matrix.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim != 3 or batch.shape[2] != self.num_columns:
            raise ValueError(
                f"device batch shape {batch.shape} is not (chips, replicas, "
                f"{self.num_columns})"
            )
        return self._evaluate_kernel(
            batch, rng, self._resolve_devices(batch.shape[0], devices))[0]

    def phase_waveform(self, x: Sequence[int]) -> np.ndarray:
        """Matchline voltage after each of the four staircase phases.

        Reproduces the transient view of Fig. 4(c)/5(f): phase ``j`` discharges
        the matchline by one unit for every column whose cell-weight admits
        that phase and whose input bit is 1.
        """
        inputs = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if inputs.shape[0] != self.num_columns:
            raise ValueError("input configuration length mismatch")
        cells = self._ensure_cells()
        voltage = self.config.supply_voltage
        waveform = []
        for phase in range(1, self.config.max_cell_weight + 1):
            conducting = 0
            for column in range(self.num_columns):
                if inputs[column] != 1:
                    continue
                for cell in cells[column]:
                    if cell.conducts(phase, input_bit=1):
                        conducting += 1
            voltage = max(0.0, voltage - self.config.discharge_per_unit * conducting)
            waveform.append(voltage)
        return np.array(waveform)

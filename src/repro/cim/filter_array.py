"""Matchline-based working array of the inequality filter (paper Fig. 4-5(a)).

An ``m x n`` array of 1FeFET1R cells.  Column ``i`` stores the item weight
``w_i`` decomposed into ``m`` cell weights ``w_ij in {0..k}`` with
``w_i = sum_j w_ij``; all matchlines are tied together and share a precharge
capacitance ``C_ML``.  During an evaluation the staircase read pulses turn ON
every cell whose stored weight admits the current phase; each conducting cell
removes an (approximately constant) packet of charge, so the final matchline
voltage obeys paper Eq. (9):

    V_ML  =  V_DD - dV * sum_i w_i x_i        (clipped at ground)

``dV`` is the discharge per unit of stored weight and is a configuration
parameter chosen by the enclosing :class:`~repro.cim.inequality_filter.
InequalityFilter` so the replica voltage sits mid-rail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.fefet.cell import CellParameters, OneFeFETOneRCell
from repro.fefet.variability import VariabilityModel


def decompose_weight(weight: int, num_rows: int, max_cell_weight: int) -> List[int]:
    """Decompose an integer item weight into per-cell weights.

    ``weight = sum_j w_j`` with each ``w_j in {0..max_cell_weight}`` and at
    most ``num_rows`` cells (paper Sec. 3.3: "each item weight w_i is
    decomposed into multiple w_ij values").  Raises when the weight does not
    fit in the column.
    """
    if weight < 0:
        raise ValueError("weights must be non-negative")
    if weight > num_rows * max_cell_weight:
        raise ValueError(
            f"weight {weight} exceeds column capacity {num_rows * max_cell_weight}"
        )
    cells = []
    remaining = int(weight)
    for _ in range(num_rows):
        portion = min(remaining, max_cell_weight)
        cells.append(portion)
        remaining -= portion
    return cells


@dataclass(frozen=True)
class FilterArrayConfig:
    """Configuration of a filter working/replica array.

    Attributes
    ----------
    num_rows:
        Cells per column ``m`` (paper evaluation: 16, giving a per-item weight
        range of 0..64 with 4-level cells).
    cell:
        1FeFET1R cell parameters (defines ``max_cell_weight`` and V_DD).
    discharge_per_unit:
        Matchline voltage drop per unit of stored-weight-times-input (volts).
    noise_sigma:
        Gaussian noise (volts) added to each matchline readout, modelling
        charge-injection/kT-C noise.
    """

    num_rows: int = 16
    cell: CellParameters = field(default_factory=CellParameters)
    discharge_per_unit: float = 1e-3
    noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.num_rows < 1:
            raise ValueError("num_rows must be positive")
        if self.discharge_per_unit <= 0:
            raise ValueError("discharge_per_unit must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    @property
    def max_cell_weight(self) -> int:
        """Largest weight a single cell can store."""
        return self.cell.max_weight

    @property
    def max_column_weight(self) -> int:
        """Largest item weight a column can store (``m * k``)."""
        return self.num_rows * self.cell.max_weight

    @property
    def supply_voltage(self) -> float:
        """Matchline precharge voltage ``V_DD``."""
        return self.cell.supply_voltage


@dataclass(frozen=True)
class MatchlineReadout:
    """Result of one filter evaluation (four staircase phases).

    Attributes
    ----------
    voltage:
        Final matchline voltage including noise and ground clipping.
    ideal_voltage:
        Noise-free, unclipped value ``V_DD - dV * w.x``.
    discharge:
        Total voltage removed from the precharged matchline.
    weighted_sum:
        The effective ``w . x`` seen by the array (includes any cell-level
        conduction errors caused by device variability).
    """

    voltage: float
    ideal_voltage: float
    discharge: float
    weighted_sum: float


class WorkingArray:
    """An ``m x n`` filter array storing an item-weight vector.

    Parameters
    ----------
    weights:
        Integer item weights ``w_i`` (one per column).
    config:
        Array configuration.
    variability:
        Optional device variability; sampled per cell at program time.
    """

    def __init__(
        self,
        weights: Sequence[int],
        config: Optional[FilterArrayConfig] = None,
        variability: Optional[VariabilityModel] = None,
    ) -> None:
        self.config = config or FilterArrayConfig()
        self._stored_weights = np.array([int(round(w)) for w in weights], dtype=int)
        if np.any(self._stored_weights < 0):
            raise ValueError("item weights must be non-negative")
        if np.any(self._stored_weights > self.config.max_column_weight):
            raise ValueError(
                "an item weight exceeds the column capacity "
                f"{self.config.max_column_weight}; increase num_rows"
            )
        self._variability = variability
        self._cells: List[List[OneFeFETOneRCell]] = []
        self._effective_weights = np.zeros(self.num_columns)
        self._program()

    def _program(self) -> None:
        """Decompose weights into cells and record effective conduction counts."""
        self._cells = []
        effective = np.zeros(self.num_columns)
        for column, weight in enumerate(self._stored_weights):
            cell_weights = decompose_weight(int(weight), self.config.num_rows,
                                            self.config.max_cell_weight)
            column_cells = []
            column_effective = 0
            for cell_weight in cell_weights:
                cell = OneFeFETOneRCell(parameters=self.config.cell, weight=cell_weight,
                                        variability=self._variability)
                column_cells.append(cell)
                # The number of staircase phases during which the cell
                # conducts is the weight it effectively contributes (Eq. (7)).
                column_effective += cell.conduction_count(input_bit=1)
            self._cells.append(column_cells)
            effective[column] = column_effective
        self._effective_weights = effective

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_columns(self) -> int:
        """Number of items ``n`` (columns)."""
        return self._stored_weights.shape[0]

    @property
    def num_rows(self) -> int:
        """Cells per column ``m``."""
        return self.config.num_rows

    @property
    def stored_weights(self) -> np.ndarray:
        """The programmed item weights."""
        return self._stored_weights.copy()

    @property
    def effective_weights(self) -> np.ndarray:
        """Per-column conduction counts actually realised by the cells.

        Equal to :attr:`stored_weights` for ideal devices; may deviate by a
        few units under strong threshold variability.
        """
        return self._effective_weights.copy()

    def cell(self, row: int, column: int) -> OneFeFETOneRCell:
        """Access an individual cell (row-major within a column)."""
        return self._cells[column][row]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def reprogram(self, weights: Sequence[int]) -> None:
        """Erase and reprogram the array with a new weight vector."""
        new_weights = np.array([int(round(w)) for w in weights], dtype=int)
        if new_weights.shape[0] != self.num_columns:
            raise ValueError("reprogramming must keep the number of columns")
        if np.any(new_weights < 0) or np.any(new_weights > self.config.max_column_weight):
            raise ValueError("a weight is out of the representable range")
        self._stored_weights = new_weights
        self._program()

    def evaluate(self, x: Sequence[int],
                 rng: Optional[np.random.Generator] = None) -> MatchlineReadout:
        """Run the four-phase evaluation for input configuration ``x``.

        Returns the end-of-evaluation matchline voltage (Eq. (9)).
        """
        inputs = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if inputs.shape[0] != self.num_columns:
            raise ValueError(
                f"input configuration length {inputs.shape[0]} != {self.num_columns} columns"
            )
        if not np.all((inputs == 0) | (inputs == 1)):
            raise ValueError("input configuration must be binary")
        weighted_sum = float(self._effective_weights @ inputs)
        discharge = self.config.discharge_per_unit * weighted_sum
        ideal_voltage = self.config.supply_voltage - discharge
        noise = 0.0
        if self.config.noise_sigma > 0:
            generator = rng or np.random.default_rng()
            noise = float(generator.normal(0.0, self.config.noise_sigma))
        voltage = max(0.0, ideal_voltage + noise)
        return MatchlineReadout(
            voltage=voltage,
            ideal_voltage=ideal_voltage,
            discharge=discharge,
            weighted_sum=weighted_sum,
        )

    def evaluate_batch(self, configurations: np.ndarray,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Matchline voltages for an ``(M, n)`` batch of input configurations.

        The vectorised counterpart of :meth:`evaluate`: one weighted-sum
        product covers every row, readout noise (when configured) is drawn
        independently per row, and the returned array holds the final
        (clipped) matchline voltage per replica.  Noise-free voltages equal
        the scalar path's value for each row.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.num_columns:
            raise ValueError(
                f"batch shape {batch.shape} incompatible with {self.num_columns} columns"
            )
        if not np.all((batch == 0) | (batch == 1)):
            raise ValueError("input configurations must be binary")
        weighted_sums = batch @ self._effective_weights
        ideal_voltages = self.config.supply_voltage - \
            self.config.discharge_per_unit * weighted_sums
        if self.config.noise_sigma > 0:
            generator = rng or np.random.default_rng()
            noise = generator.normal(0.0, self.config.noise_sigma,
                                     size=weighted_sums.shape)
        else:
            noise = 0.0
        return np.maximum(0.0, ideal_voltages + noise)

    def phase_waveform(self, x: Sequence[int]) -> np.ndarray:
        """Matchline voltage after each of the four staircase phases.

        Reproduces the transient view of Fig. 4(c)/5(f): phase ``j`` discharges
        the matchline by one unit for every column whose cell-weight admits
        that phase and whose input bit is 1.
        """
        inputs = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if inputs.shape[0] != self.num_columns:
            raise ValueError("input configuration length mismatch")
        voltage = self.config.supply_voltage
        waveform = []
        for phase in range(1, self.config.max_cell_weight + 1):
            conducting = 0
            for column in range(self.num_columns):
                if inputs[column] != 1:
                    continue
                for cell in self._cells[column]:
                    if cell.conducts(phase, input_bit=1):
                        conducting += 1
            voltage = max(0.0, voltage - self.config.discharge_per_unit * conducting)
            waveform.append(voltage)
        return np.array(waveform)

"""Two-stage voltage comparator (paper Fig. 5(c-e)).

The inequality filter compares the working-array matchline voltage against the
replica-array matchline voltage.  The paper uses a differential pre-amplifier
followed by a dynamic latched comparator; behaviourally the decision is

    decide(v_plus, v_minus)  =  (v_plus + offset + noise) >= v_minus

where ``offset`` is a static input-referred offset sampled once per comparator
instance (mismatch) and ``noise`` is per-decision Gaussian noise.  Both are
zero by default so functional tests are deterministic; the non-ideality
ablation benchmark sweeps them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class TwoStageComparator:
    """Behavioural latched voltage comparator.

    Parameters
    ----------
    static_offset_sigma:
        Standard deviation (volts) of the static input-referred offset,
        sampled once at construction.
    noise_sigma:
        Standard deviation (volts) of per-decision Gaussian noise.
    seed:
        RNG seed for both the offset sample and the per-decision noise.
    """

    static_offset_sigma: float = 0.0
    noise_sigma: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.static_offset_sigma < 0 or self.noise_sigma < 0:
            raise ValueError("comparator sigmas must be non-negative")
        self._rng = np.random.default_rng(self.seed)
        self._offset = (
            float(self._rng.normal(0.0, self.static_offset_sigma))
            if self.static_offset_sigma
            else 0.0
        )
        self._num_decisions = 0

    @property
    def offset(self) -> float:
        """The sampled static input-referred offset (volts)."""
        return self._offset

    @property
    def num_decisions(self) -> int:
        """How many comparisons this instance has performed."""
        return self._num_decisions

    def decide(self, v_plus: float, v_minus: float) -> bool:
        """``True`` when the positive input is at or above the negative input.

        In the inequality filter, ``v_plus`` is the working-array matchline
        and ``v_minus`` the replica matchline: ``True`` therefore means
        ``w . x <= C`` (feasible).
        """
        noise = float(self._rng.normal(0.0, self.noise_sigma)) if self.noise_sigma else 0.0
        self._num_decisions += 1
        return (v_plus + self._offset + noise) >= v_minus

    def decide_batch(self, v_plus: np.ndarray, v_minus: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decide` over aligned arrays of voltages."""
        plus = np.asarray(v_plus, dtype=float)
        minus = np.asarray(v_minus, dtype=float)
        if plus.shape != minus.shape:
            raise ValueError("comparator inputs must have matching shapes")
        noise = (
            self._rng.normal(0.0, self.noise_sigma, size=plus.shape)
            if self.noise_sigma
            else np.zeros_like(plus)
        )
        self._num_decisions += int(plus.size)
        return (plus + self._offset + noise) >= minus

"""Analytical hardware cost model (paper Fig. 9(c)).

The paper extracts wiring parasitics from DESTINY and reports the hardware
*size saving* of HyCiM (inequality filter + crossbar) over a D-QUBO annealer
built on the same crossbar substrate.  The relative saving is dominated by
two exactly-computable quantities -- the QUBO matrix dimension and the bit
planes per element -- so an analytical model in units of bit cells (with
configurable peripheral overheads) reproduces the reported 88%-99.96% range.

All areas are reported in units of ``F^2`` (squared feature size) so the
numbers are technology-agnostic; an optional feature size converts to um^2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.quantization import QuantizationReport


@dataclass(frozen=True)
class CostModelParameters:
    """Area parameters of the CiM macros (in ``F^2`` unless noted).

    Defaults follow typical published numbers for 28 nm FeFET CiM macros:
    a 1FeFET1R cell is a few tens of F^2, a column ADC and its sample-and-hold
    dominate the periphery, and the matchline comparator is small.
    """

    cell_area: float = 40.0
    adc_area: float = 1.5e4
    sense_amp_area: float = 2.0e3
    comparator_area: float = 4.0e3
    wordline_driver_area: float = 120.0
    bitline_driver_area: float = 120.0
    adc_share: int = 8
    feature_size_nm: float = 28.0

    def __post_init__(self) -> None:
        if self.cell_area <= 0:
            raise ValueError("cell_area must be positive")
        if self.adc_share < 1:
            raise ValueError("adc_share must be at least 1")


@dataclass(frozen=True)
class HardwareCost:
    """Area breakdown of a CiM macro.

    Attributes
    ----------
    array_area:
        Area of the memory cells.
    periphery_area:
        Drivers, ADCs, sense amplifiers, comparators.
    num_cells:
        Number of 1-bit cells in the arrays.
    """

    array_area: float
    periphery_area: float
    num_cells: int

    @property
    def total_area(self) -> float:
        """Total macro area (``F^2``)."""
        return self.array_area + self.periphery_area

    def total_area_um2(self, feature_size_nm: float = 28.0) -> float:
        """Total area converted to um^2 for a given feature size."""
        f_um = feature_size_nm * 1e-3
        return self.total_area * f_um * f_um

    def __add__(self, other: "HardwareCost") -> "HardwareCost":
        if not isinstance(other, HardwareCost):
            return NotImplemented
        return HardwareCost(
            array_area=self.array_area + other.array_area,
            periphery_area=self.periphery_area + other.periphery_area,
            num_cells=self.num_cells + other.num_cells,
        )


def crossbar_cost(num_variables: int, bits_per_element: int,
                  params: CostModelParameters = CostModelParameters()) -> HardwareCost:
    """Area of a bit-sliced QUBO crossbar for an ``n x n`` matrix.

    The crossbar holds ``n * n * bits`` one-bit cells (paper Sec. 4.2), one
    wordline driver per row, one bitline driver per physical column and one
    ADC shared by ``adc_share`` physical columns through a MUX (Fig. 6(a)).
    """
    if num_variables < 1 or bits_per_element < 1:
        raise ValueError("num_variables and bits_per_element must be positive")
    physical_columns = num_variables * bits_per_element
    num_cells = num_variables * physical_columns
    array_area = num_cells * params.cell_area
    num_adcs = -(-physical_columns // params.adc_share)  # ceil division
    periphery = (
        num_variables * params.wordline_driver_area
        + physical_columns * params.bitline_driver_area
        + num_adcs * params.adc_area
        + num_adcs * params.sense_amp_area
    )
    return HardwareCost(array_area=array_area, periphery_area=periphery, num_cells=num_cells)


def inequality_filter_cost(num_rows: int, num_columns: int,
                           params: CostModelParameters = CostModelParameters()) -> HardwareCost:
    """Area of one inequality filter: working + replica arrays + comparator."""
    if num_rows < 1 or num_columns < 1:
        raise ValueError("num_rows and num_columns must be positive")
    cells_per_array = num_rows * num_columns
    num_cells = 2 * cells_per_array
    array_area = num_cells * params.cell_area
    periphery = (
        2 * num_columns * params.wordline_driver_area
        + 2 * num_rows * params.bitline_driver_area
        + params.comparator_area
    )
    return HardwareCost(array_area=array_area, periphery_area=periphery, num_cells=num_cells)


def hycim_hardware_cost(report: QuantizationReport, filter_rows: int = 16,
                        params: CostModelParameters = CostModelParameters()) -> HardwareCost:
    """Total HyCiM hardware: QUBO crossbar + one inequality filter."""
    crossbar = crossbar_cost(report.num_variables, report.bits_per_element, params)
    filter_block = inequality_filter_cost(filter_rows, report.num_variables, params)
    return crossbar + filter_block


def dqubo_hardware_cost(report: QuantizationReport,
                        params: CostModelParameters = CostModelParameters()) -> HardwareCost:
    """Total D-QUBO hardware: a (much larger) crossbar only."""
    return crossbar_cost(report.num_variables, report.bits_per_element, params)


def hardware_size_saving(hycim: HardwareCost, dqubo: HardwareCost) -> float:
    """Fractional area saving of HyCiM over the D-QUBO implementation.

    The quantity reported per instance in Fig. 9(c):
    ``1 - area(HyCiM) / area(D-QUBO)``.
    """
    if dqubo.total_area <= 0:
        raise ValueError("D-QUBO area must be positive")
    return 1.0 - hycim.total_area / dqubo.total_area

"""FeFET-based CiM crossbar for QUBO computation (paper Sec. 3.4, Fig. 6(a)).

The crossbar stores the QUBO matrix ``Q`` bit-sliced: each matrix element is
quantized to ``M`` magnitude bits, and every bit plane of every column of
``Q`` occupies one physical crossbar column of 1-bit 1FeFET1R cells.  During a
QUBO computation the input vector ``x`` drives both the wordlines (gates,
``x^T``) and the drain lines (``x``); every cell therefore contributes
``x_j * q_bit * x_i`` to its column current (the single-transistor
multiplication of Fig. 2(c)).  Column currents are digitised by per-column
ADCs and combined by the add-shift-sum peripheral logic into the VMV result
``x^T Q x``.

Signed matrices are handled with the standard differential mapping: positive
and negative parts of ``Q`` are stored in separate bit-sliced planes and
subtracted digitally.

The model includes the analog non-idealities that matter at array level:
per-cell ON-current variation (static, sampled at program time), readout
noise and ADC quantization.  With all non-idealities disabled the crossbar is
bit-exact with the quantized matrix, which the unit tests rely on.

Device axis
-----------
Constructed with ``device_seeds`` the crossbar simulates one programmed chip
per seed: chip ``d`` samples its static ON-current factors, draws its read
noise and runs its column ADCs from streams seeded by ``device_seeds[d]``
alone, so each chip's analog behaviour is reproducible independently of
which other chips share a batch (the same per-chip determinism a freshly
rebuilt scalar crossbar with that seed would exhibit).
:meth:`FeFETCrossbar.compute_energies_devices` evaluates a ``(D, M, n)``
batch -- one MVM per bit plane covering every chip and replica -- and the
scalar :meth:`FeFETCrossbar.compute_energy` / single-chip
:meth:`FeFETCrossbar.compute_energies` are degenerate views over it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cim.adc import ADCModel
from repro.cim.device_axis import resolve_device_selection
from repro.core.qubo import QUBOModel
from repro.fefet.variability import VariabilityModel
# NOTE: repro.kernels.bits is imported lazily inside the packed
# conduction-count path: importing the repro.kernels package pulls in the
# reference backend (and with it repro.batched, which imports this module),
# so a module-scope import would make the package import order significant.

#: Replica-chunk byte budget of the packed conduction-count temporaries.
_PACKED_CHUNK_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class CrossbarConfig:
    """Configuration of the bit-sliced QUBO crossbar.

    Attributes
    ----------
    weight_bits:
        Magnitude bits ``M`` per matrix element.
    cell_on_current:
        Nominal ON current of one cell (amperes); sets the analog scale of the
        column currents reported by :meth:`FeFETCrossbar.column_current`.
    current_noise_sigma:
        Relative (fractional) Gaussian read noise applied to every column
        current at every evaluation.
    adc_bits:
        Column ADC resolution.  ``None`` disables ADC quantization (ideal
        digitisation), which is also the setting used when a plane's dynamic
        range already fits the ADC.
    on_current_variation_sigma:
        Log-normal sigma of the static per-cell ON-current variation sampled
        at program time.
    seed:
        RNG seed for all stochastic components (the single-chip device seed).
    """

    weight_bits: int = 7
    cell_on_current: float = 2e-6
    current_noise_sigma: float = 0.0
    adc_bits: Optional[int] = None
    on_current_variation_sigma: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 1 <= self.weight_bits <= 32:
            raise ValueError("weight_bits must be between 1 and 32")
        if self.cell_on_current <= 0:
            raise ValueError("cell_on_current must be positive")
        if self.current_noise_sigma < 0 or self.on_current_variation_sigma < 0:
            raise ValueError("noise sigmas must be non-negative")
        if self.adc_bits is not None and not 1 <= self.adc_bits <= 16:
            raise ValueError("adc_bits must be between 1 and 16")


class FeFETCrossbar:
    """A bit-sliced FeFET crossbar programmed with a QUBO matrix.

    Use :meth:`from_qubo` to build one; :meth:`compute_energy` evaluates
    ``x^T Q x`` (plus the model offset) through the analog pipeline.  Pass
    ``device_seeds`` to program one chip per seed along the device axis.
    """

    def __init__(self, qubo: QUBOModel, config: Optional[CrossbarConfig] = None,
                 device_seeds: Optional[Sequence[Optional[int]]] = None) -> None:
        self.config = config or CrossbarConfig()
        self.qubo = qubo
        if device_seeds is None:
            self._device_seeds = [self.config.seed]
        else:
            self._device_seeds = list(device_seeds)
            if not self._device_seeds:
                raise ValueError("device_seeds must name at least one chip")
        self._noise_rngs = [np.random.default_rng(seed)
                            for seed in self._device_seeds]
        self._rng = self._noise_rngs[0]
        self._program(qubo.matrix)

    @classmethod
    def from_qubo(cls, qubo: QUBOModel,
                  config: Optional[CrossbarConfig] = None,
                  device_seeds: Optional[Sequence[Optional[int]]] = None,
                  ) -> "FeFETCrossbar":
        """Program a crossbar with the given QUBO model."""
        return cls(qubo, config=config, device_seeds=device_seeds)

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def _program(self, matrix: np.ndarray) -> None:
        """Quantize the matrix, slice it into bit planes and sample variability."""
        n = matrix.shape[0]
        self._n = n
        bits = self.config.weight_bits
        max_abs = float(np.max(np.abs(matrix))) if matrix.size else 0.0
        is_integer_matrix = bool(np.all(np.abs(matrix - np.round(matrix)) < 1e-9))
        if max_abs == 0.0:
            self._scale = 1.0
        elif is_integer_matrix and max_abs <= 2 ** bits - 1:
            # Integer matrices that already fit the bit budget are stored
            # losslessly (scale 1), which makes the crossbar bit-exact for the
            # HyCiM QKP mapping (Q_max <= 100 with 7-bit cells).
            self._scale = 1.0
        else:
            self._scale = (2 ** bits - 1) / max_abs
        positive = np.maximum(matrix, 0.0)
        negative = np.maximum(-matrix, 0.0)
        self._pos_quantized = np.round(positive * self._scale).astype(np.int64)
        self._neg_quantized = np.round(negative * self._scale).astype(np.int64)

        # Bit planes: planes[b][j, i] in {0, 1} is bit b of |Q_ji| for sign s.
        self._pos_planes = self._slice_bits(self._pos_quantized)
        self._neg_planes = self._slice_bits(self._neg_quantized)
        # Packed column masks of the planes, built lazily on the first ideal
        # (noise-free, ADC-free, variation-free) evaluation.
        self._plane_words: dict = {}

        # Static per-cell ON-current factors: one (bits, n, n) block per chip,
        # each chip sampling from its own seed in program order (positive
        # planes first, then negative), exactly as a freshly built scalar
        # crossbar with that seed would.  `None` marks the variation-free
        # fast path where every chip shares the exact bit planes.
        sigma = self.config.on_current_variation_sigma
        if sigma > 0:
            pos_chips = []
            neg_chips = []
            for seed in self._device_seeds:
                var = VariabilityModel(threshold_sigma=0.0, on_current_sigma=sigma,
                                       seed=seed)
                pos_chips.append(np.stack(
                    [var.sample_on_current_factors(n * n).reshape(n, n)
                     for _ in range(bits)]))
                neg_chips.append(np.stack(
                    [var.sample_on_current_factors(n * n).reshape(n, n)
                     for _ in range(bits)]))
            self._pos_factors: Optional[np.ndarray] = np.stack(pos_chips)
            self._neg_factors: Optional[np.ndarray] = np.stack(neg_chips)
        else:
            self._pos_factors = None
            self._neg_factors = None

        # Column ADC covering the worst-case column current (all n cells ON),
        # one noise stream per chip.
        if self.config.adc_bits is not None:
            self._adc = ADCModel(
                bits=self.config.adc_bits, full_scale=float(n),
                seed=self.config.seed,
                device_seeds=(tuple(self._device_seeds)
                              if self.num_devices > 1 else None))
        else:
            self._adc = None

    def _slice_bits(self, quantized: np.ndarray) -> np.ndarray:
        """Return an array of shape ``(bits, n, n)`` of 0/1 bit planes."""
        bits = self.config.weight_bits
        planes = np.zeros((bits, quantized.shape[0], quantized.shape[1]))
        for b in range(bits):
            planes[b] = (quantized >> b) & 1
        return planes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        """QUBO dimension ``n``."""
        return self._n

    @property
    def num_devices(self) -> int:
        """Number of simulated chips ``D`` along the device axis."""
        return len(self._device_seeds)

    @property
    def num_cells(self) -> int:
        """Total 1-bit cells used per chip (both signs, all bit planes)."""
        return 2 * self.config.weight_bits * self._n * self._n

    @property
    def quantization_scale(self) -> float:
        """Multiplier mapping matrix values to integer codes."""
        return self._scale

    def quantized_matrix(self) -> np.ndarray:
        """The signed, quantized matrix actually stored (in original units)."""
        return (self._pos_quantized - self._neg_quantized) / self._scale

    def quantization_error(self) -> float:
        """Max absolute difference between the stored and the exact matrix."""
        return float(np.max(np.abs(self.quantized_matrix() - self.qubo.matrix)))

    # ------------------------------------------------------------------ #
    # Analog evaluation
    # ------------------------------------------------------------------ #
    def compute_energy(self, x: Sequence[int]) -> float:
        """Evaluate ``x^T Q x + offset`` through the analog crossbar pipeline.

        The ``D = M = 1`` view over :meth:`compute_energies_devices`: the
        one-row batch draws the same noise values in the same order and
        performs the identical element-wise ADC quantization, so there is
        exactly one add-shift-sum implementation to keep faithful to the
        hardware.
        """
        vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if vec.ndim != 1 or vec.shape[0] != self._n:
            raise ValueError(f"input length {vec.shape} != crossbar dimension {self._n}")
        return float(self.compute_energies(vec[None, :])[0])

    def _packed_column_planes(self, sign: str) -> np.ndarray:
        """``(bits, n, W)`` packed column masks of one sign's bit planes.

        Word array ``[b][i]`` packs column ``i`` of plane ``b`` over the row
        index ``j``, so ANDing it with a packed input state and popcounting
        yields the column's conduction count (number of cells with both the
        wordline and the stored bit active).  Built once per sign, cached.
        """
        cached = self._plane_words.get(sign)
        if cached is None:
            from repro.kernels.bits import pack_bits

            planes = self._pos_planes if sign == "pos" else self._neg_planes
            cached = np.stack([pack_bits(planes[b].T)
                               for b in range(planes.shape[0])])
            self._plane_words[sign] = cached
        return cached

    def conduction_counts(self, plane_words: np.ndarray,
                          state_words: np.ndarray) -> np.ndarray:
        """Per-column conduction counts of packed states against one plane.

        ``plane_words`` is one ``(n, W)`` slice of
        :meth:`_packed_column_planes`; ``state_words`` packs the input rows
        ``(R, W)``.  Returns exact ``(R, n)`` int64 counts -- the integer
        the ideal analog column current digitises to.
        """
        masked = plane_words[None, :, :] & state_words[:, None, :]
        return np.bitwise_count(masked).sum(axis=2, dtype=np.int64)

    def _accumulate_packed(self, sign: str, flat: np.ndarray) -> np.ndarray:
        """Ideal-path add-shift-sum via packed AND + popcount per word.

        Bit-exact with the dense matrix-product path: each plane's column
        counts are integers ``<= n``, so the masked row sums and the
        ``2**b`` shifts reproduce the float accumulation value for value.
        """
        from repro.kernels.bits import pack_bits, packed_width

        plane_words = self._packed_column_planes(sign)
        num_rows, n = flat.shape
        state_words = pack_bits(flat)
        total = np.zeros(num_rows)
        # Chunk replicas so the (chunk, n, W) AND temporary stays cache-near.
        per_row = max(1, n * packed_width(n) * 8)
        chunk = max(1, _PACKED_CHUNK_BYTES // per_row)
        for b in range(self.config.weight_bits):
            plane = plane_words[b]
            for start in range(0, num_rows, chunk):
                stop = min(start + chunk, num_rows)
                counts = self.conduction_counts(plane,
                                                state_words[start:stop])
                total[start:stop] += ((counts * flat[start:stop])
                                      .sum(axis=1) * (2 ** b))
        return total

    def _accumulate_devices(self, planes: np.ndarray,
                            factors: Optional[np.ndarray],
                            batch: np.ndarray,
                            devices: np.ndarray) -> np.ndarray:
        """Add-shift-sum accumulation of one sign's bit planes, device-batched.

        ``batch`` is a ``(K, M, n)`` replica tensor whose slice ``k`` runs on
        chip ``devices[k]``.  Variation-free chips share one matrix product
        per bit plane over the flattened replica axis (the crossbar
        evaluating an array of candidates in one shot); chips with sampled
        ON-current factors get one stacked MVM per bit plane.  Read noise and
        ADC quantization are applied element-wise from each chip's own
        stream, i.e. independently per replica row, exactly as the scalar
        path applies them per evaluation.
        """
        num_chips, num_replicas, n = batch.shape
        if (factors is None and self.config.current_noise_sigma == 0
                and self._adc is None
                and (2 ** self.config.weight_bits) * n * n < 2 ** 53):
            # Fully ideal pipeline: every chip shares the exact bit planes
            # and no per-plane noise/ADC step intervenes, so the whole
            # add-shift-sum collapses to packed conduction counts.
            sign = "pos" if planes is self._pos_planes else "neg"
            flat = batch.reshape(num_chips * num_replicas, n)
            return self._accumulate_packed(sign, flat).reshape(
                num_chips, num_replicas)
        total = np.zeros((num_chips, num_replicas))
        for b in range(self.config.weight_bits):
            if factors is None:
                flat = batch.reshape(num_chips * num_replicas, n)
                column_currents = (flat @ planes[b]).reshape(batch.shape) * batch
            else:
                effective = planes[b][None, :, :] * factors[devices, b]
                column_currents = np.matmul(batch, effective) * batch
            if self.config.current_noise_sigma > 0:
                for k, device in enumerate(devices):
                    noise = self._noise_rngs[device].normal(
                        0.0, self.config.current_noise_sigma,
                        size=(num_replicas, n))
                    column_currents[k] = column_currents[k] * (1.0 + noise)
                column_currents = np.maximum(column_currents, 0.0)
            if self._adc is not None:
                column_currents = self._adc.quantize_devices(
                    column_currents,
                    devices=(devices if self._adc.num_devices > 1 else
                             np.zeros(num_chips, dtype=int)))
            total += column_currents.sum(axis=2) * (2 ** b)
        return total

    def compute_energies(self, configurations: np.ndarray) -> np.ndarray:
        """Evaluate an ``(M, n)`` batch of configurations on chip 0.

        The single-chip view over :meth:`compute_energies_devices`: one
        matrix product per bit plane covers every replica row, with read
        noise and ADC quantization applied per replica.  Noise-free results
        equal the scalar path's (bit-for-bit for losslessly stored integer
        matrices); with read noise enabled the draw order differs from ``M``
        scalar calls, so noisy batches are reproducible at batch granularity
        only.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self._n:
            raise ValueError(
                f"batch shape {batch.shape} incompatible with crossbar dimension {self._n}"
            )
        return self.compute_energies_devices(batch[None, :, :],
                                             devices=np.zeros(1, dtype=int))[0]

    def compute_energies_devices(self, configurations: np.ndarray,
                                 devices: Optional[np.ndarray] = None,
                                 ) -> np.ndarray:
        """Evaluate a ``(K, M, n)`` device-axis batch in one crossbar pass.

        Slice ``k`` of the batch runs on chip ``devices[k]`` (all chips in
        order when omitted, requiring ``K = D``).  Returns a ``(K, M)``
        energy matrix; each chip's noise and ADC codes come from its own
        seeded streams, so a chip's results do not depend on its batch
        neighbours.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim != 3 or batch.shape[2] != self._n:
            raise ValueError(
                f"device batch shape {batch.shape} is not (chips, replicas, "
                f"{self._n})"
            )
        if not np.all((batch == 0) | (batch == 1)):
            raise ValueError("crossbar inputs must be binary")
        selected = resolve_device_selection(batch.shape[0], devices,
                                            self.num_devices,
                                            kind="crossbar chip batch")
        positive = self._accumulate_devices(self._pos_planes, self._pos_factors,
                                            batch, selected)
        negative = self._accumulate_devices(self._neg_planes, self._neg_factors,
                                            batch, selected)
        return (positive - negative) / self._scale + self.qubo.offset

    def column_current(self, num_activated_cells: int) -> float:
        """Analog current of a column with ``num_activated_cells`` cells ON.

        Reproduces the linearity measurement of Fig. 7(d): the summed column
        current grows linearly with the number of activated cells, with the
        configured per-cell variation and read noise superimposed.
        """
        if not 0 <= num_activated_cells <= self._n:
            raise ValueError(
                f"num_activated_cells must be within 0..{self._n}"
            )
        factors = (
            VariabilityModel(threshold_sigma=0.0,
                             on_current_sigma=self.config.on_current_variation_sigma,
                             seed=None if self.config.seed is None else self.config.seed + 1)
            .sample_on_current_factors(num_activated_cells)
            if self.config.on_current_variation_sigma > 0
            else np.ones(num_activated_cells)
        )
        current = float(np.sum(self.config.cell_on_current * factors))
        if self.config.current_noise_sigma > 0:
            current *= 1.0 + float(self._rng.normal(0.0, self.config.current_noise_sigma))
        return max(0.0, current)

    def linearity_sweep(self, counts: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Column current versus activated-cell count over a sweep of counts."""
        counts_arr = np.asarray(list(counts), dtype=int)
        currents = np.array([self.column_current(int(c)) for c in counts_arr])
        return counts_arr, currents

"""Shared helpers for the hardware stack's device axis.

Every device-axis component (:class:`~repro.cim.adc.ADCModel`,
:class:`~repro.cim.crossbar.FeFETCrossbar`, the filter arrays) maps the
leading axis of a batch onto its simulated chips through the same selection
rule; this module holds that rule so the validation semantics cannot drift
between components.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def resolve_device_selection(count: int, devices: Optional[np.ndarray],
                             num_devices: int,
                             kind: str = "batch") -> np.ndarray:
    """Map a ``count``-slice batch onto device indices.

    ``devices=None`` selects all devices in order (requiring
    ``count == num_devices``); otherwise ``devices`` must hold one in-range
    chip index per batch slice.  ``kind`` names the batch in error messages.
    """
    if devices is None:
        selected = np.arange(num_devices)
    else:
        selected = np.asarray(devices, dtype=int)
    if selected.shape != (count,):
        raise ValueError(
            f"device selection of shape {selected.shape} does not match the "
            f"{count}-slice {kind}"
        )
    if selected.size and not (0 <= selected.min()
                              and selected.max() < num_devices):
        raise IndexError("a device index is out of range")
    return selected

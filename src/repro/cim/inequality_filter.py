"""The complete FeFET-based CiM inequality filter (paper Sec. 3.3, Fig. 5(b)).

One :class:`~repro.cim.filter_array.WorkingArray` storing the constraint
weights ``w``, one :class:`~repro.cim.replica.ReplicaArray` encoding the bound
``C`` and a :class:`~repro.cim.comparator.TwoStageComparator`.  For an input
configuration ``x`` the filter produces a single-bit feasible/infeasible
decision

    feasible  <=>  V_ML(working) >= V_ML(replica)  <=>  w . x <= C

in one analog evaluation, which is what lets the HyCiM annealer skip the QUBO
computation for infeasible configurations.

The filter carries the hardware stack's device axis (ARCHITECTURE.md):
constructed with a *sequence* of variability models it simulates one filter
instance per chip, and :meth:`InequalityFilter.is_feasible_devices` decides a
``(D, M, n)`` batch -- chip ``d`` judging its own replicas with its own
sampled cells -- in one analog shot.  Scalar :meth:`InequalityFilter.evaluate`
and single-chip :meth:`InequalityFilter.is_feasible_batch` are degenerate
views over the same arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cim.comparator import TwoStageComparator
from repro.cim.filter_array import (
    FilterArrayConfig,
    MatchlineReadout,
    VariabilityLike,
    WorkingArray,
)
from repro.cim.replica import ReplicaArray
from repro.core.constraints import InequalityConstraint
from repro.fefet.cell import CellParameters

#: Largest power-of-ten multiplier tried when scaling fractional constraint
#: data onto integer cells (supports e.g. 1e-6-granular weights).
_MAX_WEIGHT_SCALE = 10 ** 6


def integer_constraint_scale(weights: np.ndarray) -> int:
    """Smallest power-of-ten multiplier making every weight integral.

    FeFET cells store discrete levels, so a constraint with fractional
    weights must be rescaled before programming: ``w . x <= C`` and
    ``(s w) . x <= s C`` have identical feasible sets for any ``s > 0``.
    Raises a loud :class:`ValueError` when no power of ten up to
    ``_MAX_WEIGHT_SCALE`` works (e.g. irrational weights) -- silently
    rounding would make the filter enforce a different constraint.
    """
    weights = np.asarray(weights, dtype=float)
    scale = 1
    while scale <= _MAX_WEIGHT_SCALE:
        scaled = weights * scale
        if not weights.size or np.all(
                np.abs(scaled - np.round(scaled)) <= 1e-9 * scale):
            return scale
        scale *= 10
    raise ValueError(
        "constraint weights cannot be represented on integer FeFET cells: "
        f"no power-of-ten scale up to {_MAX_WEIGHT_SCALE:g} makes them "
        "integral; quantise the constraint data first"
    )


@dataclass(frozen=True)
class FilterDecision:
    """Outcome of one inequality-filter evaluation.

    Attributes
    ----------
    feasible:
        The comparator's decision (``True`` means ``w . x <= C``).
    working_readout, replica_readout:
        The two matchline readouts that were compared.
    normalized_voltage:
        Working matchline voltage divided by the replica voltage -- the
        quantity plotted in Fig. 8 (feasible points land at >= 1.0).
    """

    feasible: bool
    working_readout: MatchlineReadout
    replica_readout: MatchlineReadout

    @property
    def normalized_voltage(self) -> float:
        if self.replica_readout.voltage == 0.0:
            return np.inf
        return self.working_readout.voltage / self.replica_readout.voltage


class InequalityFilter:
    """CiM filter evaluating one inequality constraint ``w . x <= C``.

    Parameters
    ----------
    constraint:
        The inequality to accelerate.  Weights must be non-negative;
        fractional (decimal) weights are scaled onto integer cells by the
        smallest power of ten that makes them integral, with the bound
        floored after scaling (sound: no infeasible state is accepted).
        Weights with no such scale (e.g. irrational values) raise.
    num_rows:
        Cells per column of both arrays (paper evaluation: 16).  When the
        largest constraint weight does not fit in ``num_rows`` cells the
        array is automatically deepened to the smallest row count that can
        store it (more rows per column is the paper's own scaling knob).
    cell_parameters:
        1FeFET1R cell parameters (4-level cells by default).
    variability:
        Optional FeFET variability applied to working and replica cells.  A
        single model (or ``None``) builds the usual one-chip filter; a
        sequence of models builds one filter instance per chip along the
        device axis, each chip sampling its cells from its own stream in the
        scalar order (working array first, then replica array).
    comparator:
        Optional pre-built comparator (a noise-free one is created otherwise).
    matchline_noise_sigma:
        Readout noise per matchline evaluation (volts).
    discharge_fraction:
        Fraction of ``V_DD`` the replica matchline discharges; the discharge
        per unit weight is derived from it so the comparison point sits
        mid-rail regardless of the capacity magnitude.
    """

    def __init__(
        self,
        constraint: InequalityConstraint,
        num_rows: int = 16,
        cell_parameters: Optional[CellParameters] = None,
        variability: VariabilityLike = None,
        comparator: Optional[TwoStageComparator] = None,
        matchline_noise_sigma: float = 0.0,
        discharge_fraction: float = 0.6,
    ) -> None:
        weights = constraint.weight_vector
        if np.any(weights < 0):
            raise ValueError("the inequality filter requires non-negative weights")
        if constraint.bound < 0:
            raise ValueError("the inequality bound must be non-negative")
        if not 0.0 < discharge_fraction < 1.0:
            raise ValueError("discharge_fraction must be in (0, 1)")

        self.constraint = constraint
        # Fractional constraint data is programmed by scaling the whole
        # inequality onto integer cells: (s w) . x <= s C for the smallest
        # power-of-ten s that makes the weights integral (a loud error when
        # none does).  The scaled bound is *floored*: s w . x is integral,
        # so flooring keeps every truly feasible state accepted while never
        # admitting w . x > C -- rounding could round the bound *up* and
        # accept infeasible configurations.
        self.weight_scale = integer_constraint_scale(weights)
        scaled_weights = np.round(weights * self.weight_scale)
        scaled_bound = float(np.floor(
            constraint.bound * self.weight_scale + 1e-9))
        cell = cell_parameters or CellParameters()
        capacity = max(1.0, scaled_bound)
        discharge_per_unit = discharge_fraction * cell.supply_voltage / capacity
        # Deepen the arrays when an item weight (or the per-column share of
        # the capacity) exceeds what `num_rows` cells can represent.
        max_weight = float(scaled_weights.max()) if scaled_weights.size else 0.0
        required_rows = int(np.ceil(max(max_weight, 1.0) / cell.max_weight))
        if scaled_weights.size:
            capacity_rows = int(np.ceil(capacity / (scaled_weights.size * cell.max_weight)))
            required_rows = max(required_rows, capacity_rows)
        num_rows = max(num_rows, required_rows)
        self.config = FilterArrayConfig(
            num_rows=num_rows,
            cell=cell,
            discharge_per_unit=discharge_per_unit,
            noise_sigma=matchline_noise_sigma,
        )
        int_weights = [int(w) for w in scaled_weights]
        self.working_array = WorkingArray(int_weights, config=self.config,
                                          variability=variability)
        self.replica_array = ReplicaArray(
            capacity=scaled_bound,
            num_columns=len(int_weights),
            config=self.config,
            variability=variability,
        )
        self.comparator = comparator or TwoStageComparator()
        self._num_evaluations = 0
        self._num_feasible = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_items(self) -> int:
        """Number of constraint variables (working-array columns)."""
        return self.working_array.num_columns

    @property
    def num_devices(self) -> int:
        """Number of simulated chips ``D`` along the device axis."""
        return self.working_array.num_devices

    @property
    def num_evaluations(self) -> int:
        """How many configurations the filter has evaluated."""
        return self._num_evaluations

    @property
    def num_feasible_decisions(self) -> int:
        """How many evaluations were declared feasible."""
        return self._num_feasible

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, x: Sequence[int],
                 rng: Optional[np.random.Generator] = None,
                 device: int = 0) -> FilterDecision:
        """Evaluate one input configuration on chip ``device``."""
        working = self.working_array.evaluate(x, rng=rng, device=device)
        replica = self.replica_array.evaluate(rng=rng, device=device)
        feasible = self.comparator.decide(working.voltage, replica.voltage)
        self._num_evaluations += 1
        if feasible:
            self._num_feasible += 1
        return FilterDecision(feasible=feasible, working_readout=working,
                              replica_readout=replica)

    def is_feasible(self, x: Sequence[int],
                    rng: Optional[np.random.Generator] = None,
                    device: int = 0) -> bool:
        """Single-bit decision (the signal routed to the SA logic in Fig. 3)."""
        return self.evaluate(x, rng=rng, device=device).feasible

    def evaluate_batch(self, configurations: np.ndarray,
                       rng: Optional[np.random.Generator] = None,
                       device: int = 0) -> list[FilterDecision]:
        """Evaluate a batch of configurations, one decision per row."""
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        return [self.evaluate(row, rng=rng, device=device) for row in batch]

    def is_feasible_batch(self, configurations: np.ndarray,
                          rng: Optional[np.random.Generator] = None,
                          device: int = 0) -> np.ndarray:
        """Single-bit decisions for an ``(M, n)`` replica batch, vectorised.

        One working-array product and one replica readout vector cover every
        row (the filter array evaluating a batch of candidates in one analog
        shot); the comparator decides all rows in one call.  Noise-free
        decisions equal row-wise :meth:`is_feasible` exactly.  Note that the
        multi-replica annealing engine evaluates *every* constraint's filter
        for every row (no per-row short-circuit across constraints), so the
        evaluation counters can exceed the scalar path's.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        working_voltages = self.working_array.evaluate_batch(batch, rng=rng,
                                                             device=device)
        replica_voltages = self.replica_array.evaluate_batch(batch.shape[0],
                                                             rng=rng,
                                                             device=device)
        verdicts = self.comparator.decide_batch(working_voltages, replica_voltages)
        self._num_evaluations += int(batch.shape[0])
        self._num_feasible += int(np.count_nonzero(verdicts))
        return verdicts

    def is_feasible_devices(self, configurations: np.ndarray,
                            rng: Optional[np.random.Generator] = None,
                            devices: Optional[np.ndarray] = None) -> np.ndarray:
        """Decisions for a ``(K, M, n)`` device-axis batch, one shot per array.

        Slice ``k`` is judged by chip ``devices[k]`` (all chips in order when
        omitted).  A 2-D ``(K, n)`` input is the one-replica-per-chip
        convenience form and returns a ``(K,)`` verdict vector; 3-D input
        returns ``(K, M)``.  Noise-free verdicts equal per-chip
        :meth:`is_feasible` calls exactly.
        """
        batch = np.asarray(configurations, dtype=float)
        squeeze = batch.ndim == 2
        if squeeze:
            batch = batch[:, None, :]
        working_voltages = self.working_array.evaluate_devices(batch, rng=rng,
                                                               devices=devices)
        replica_voltages = self.replica_array.evaluate_devices(batch.shape[1],
                                                               rng=rng,
                                                               devices=devices)
        verdicts = self.comparator.decide_batch(working_voltages, replica_voltages)
        self._num_evaluations += int(verdicts.size)
        self._num_feasible += int(np.count_nonzero(verdicts))
        return verdicts[:, 0] if squeeze else verdicts

    def classification_accuracy(self, configurations: np.ndarray,
                                rng: Optional[np.random.Generator] = None) -> float:
        """Fraction of configurations classified identically to exact arithmetic.

        This is the functional-validation metric behind Fig. 8: for ideal
        devices the accuracy is 1.0 on all 800 Monte-Carlo cases.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        correct = 0
        for row in batch:
            decision = self.evaluate(row, rng=rng)
            truth = self.constraint.is_satisfied(row)
            if decision.feasible == truth:
                correct += 1
        return correct / batch.shape[0]

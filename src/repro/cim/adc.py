"""Analog-to-digital converter model for crossbar column readout.

The crossbar (paper Fig. 6(a)) senses every column current with an ADC before
the digital add-shift-sum stage.  The behavioural model quantizes a
non-negative analog value to ``2^bits`` uniform levels over ``[0, full_scale]``
with optional input-referred noise, clipping out-of-range inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class ADCModel:
    """Uniform ADC with ``bits`` of resolution over ``[0, full_scale]``.

    Parameters
    ----------
    bits:
        Resolution in bits (1..16 supported).
    full_scale:
        Analog input that maps to the top code.
    noise_sigma:
        Standard deviation of Gaussian input-referred noise, in the same
        units as the input (0 disables noise).
    seed:
        RNG seed for the noise source.
    """

    bits: int = 8
    full_scale: float = 1.0
    noise_sigma: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("ADC resolution must be between 1 and 16 bits")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @property
    def num_levels(self) -> int:
        """Number of output codes (``2^bits``)."""
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        """Analog value of one least-significant bit."""
        return self.full_scale / (self.num_levels - 1)

    def convert(self, value: float) -> int:
        """Quantize a single analog value to its output code."""
        noisy = value + (self._rng.normal(0.0, self.noise_sigma) if self.noise_sigma else 0.0)
        clipped = min(max(noisy, 0.0), self.full_scale)
        return int(round(clipped / self.lsb))

    def convert_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`convert` over an array of analog values."""
        arr = np.asarray(values, dtype=float)
        if self.noise_sigma:
            arr = arr + self._rng.normal(0.0, self.noise_sigma, size=arr.shape)
        clipped = np.clip(arr, 0.0, self.full_scale)
        return np.round(clipped / self.lsb).astype(int)

    def reconstruct(self, code: int) -> float:
        """Analog value corresponding to an output code (mid-tread)."""
        return float(code) * self.lsb

    def reconstruct_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`reconstruct`."""
        return np.asarray(codes, dtype=float) * self.lsb

    def quantize(self, value: float) -> float:
        """Round-trip convert + reconstruct (quantized analog value)."""
        return self.reconstruct(self.convert(value))

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize`."""
        return self.reconstruct_array(self.convert_array(values))

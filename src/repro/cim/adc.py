"""Analog-to-digital converter model for crossbar column readout.

The crossbar (paper Fig. 6(a)) senses every column current with an ADC before
the digital add-shift-sum stage.  The behavioural model quantizes a
non-negative analog value to ``2^bits`` uniform levels over ``[0, full_scale]``
with optional input-referred noise, clipping out-of-range inputs.

The model carries the device axis of the hardware stack: constructed with
``device_seeds`` it owns one independent noise stream per simulated chip, and
:meth:`convert_devices` / :meth:`quantize_devices` treat the leading axis of
their input as that chip axis.  Each chip's noise is then a pure function of
its own seed -- slicing a chip out of a batch, or batching it with different
neighbours, cannot change its codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cim.device_axis import resolve_device_selection


@dataclass
class ADCModel:
    """Uniform ADC with ``bits`` of resolution over ``[0, full_scale]``.

    Parameters
    ----------
    bits:
        Resolution in bits (1..16 supported).
    full_scale:
        Analog input that maps to the top code.
    noise_sigma:
        Standard deviation of Gaussian input-referred noise, in the same
        units as the input (0 disables noise).
    seed:
        RNG seed for the noise source (the single-device stream, and the
        stream behind the scalar/array methods).
    device_seeds:
        Optional per-chip noise seeds.  When given, the model represents one
        ADC instance per simulated chip: device ``d`` draws its noise from
        ``default_rng(device_seeds[d])``, so its codes are reproducible per
        chip regardless of batch composition.  The scalar methods keep using
        device 0.
    """

    bits: int = 8
    full_scale: float = 1.0
    noise_sigma: float = 0.0
    seed: Optional[int] = None
    device_seeds: Optional[Sequence[Optional[int]]] = None

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("ADC resolution must be between 1 and 16 bits")
        if self.full_scale <= 0:
            raise ValueError("full_scale must be positive")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        if self.device_seeds is None:
            self._rngs = [np.random.default_rng(self.seed)]
        else:
            seeds = list(self.device_seeds)
            if not seeds:
                raise ValueError("device_seeds must name at least one device")
            self._rngs = [np.random.default_rng(s) for s in seeds]
        self._rng = self._rngs[0]

    @property
    def num_devices(self) -> int:
        """Number of device slices (independent noise streams)."""
        return len(self._rngs)

    @property
    def num_levels(self) -> int:
        """Number of output codes (``2^bits``)."""
        return 1 << self.bits

    @property
    def lsb(self) -> float:
        """Analog value of one least-significant bit."""
        return self.full_scale / (self.num_levels - 1)

    def convert(self, value: float) -> int:
        """Quantize a single analog value to its output code."""
        noisy = value + (self._rng.normal(0.0, self.noise_sigma) if self.noise_sigma else 0.0)
        clipped = min(max(noisy, 0.0), self.full_scale)
        return int(round(clipped / self.lsb))

    def convert_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`convert` over an array of analog values."""
        arr = np.asarray(values, dtype=float)
        if self.noise_sigma:
            arr = arr + self._rng.normal(0.0, self.noise_sigma, size=arr.shape)
        clipped = np.clip(arr, 0.0, self.full_scale)
        return np.round(clipped / self.lsb).astype(int)

    def convert_devices(self, values: np.ndarray,
                        devices: Optional[np.ndarray] = None) -> np.ndarray:
        """Per-chip :meth:`convert_array`: axis 0 of ``values`` selects chips.

        Slice ``k`` draws its noise from device ``devices[k]``'s own stream
        (all devices in order when ``devices`` is omitted), so each chip's
        codes are deterministic in its own seed alone.
        """
        arr = np.asarray(values, dtype=float)
        if arr.ndim < 1:
            raise ValueError("device-axis conversion needs a leading device axis")
        selected = resolve_device_selection(arr.shape[0], devices,
                                            self.num_devices, kind="ADC batch")
        if self.noise_sigma:
            arr = arr.copy()
            for k, device in enumerate(selected):
                arr[k] += self._rngs[device].normal(0.0, self.noise_sigma,
                                                    size=arr.shape[1:])
        clipped = np.clip(arr, 0.0, self.full_scale)
        return np.round(clipped / self.lsb).astype(int)

    def reconstruct(self, code: int) -> float:
        """Analog value corresponding to an output code (mid-tread)."""
        return float(code) * self.lsb

    def reconstruct_array(self, codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`reconstruct`."""
        return np.asarray(codes, dtype=float) * self.lsb

    def quantize(self, value: float) -> float:
        """Round-trip convert + reconstruct (quantized analog value)."""
        return self.reconstruct(self.convert(value))

    def quantize_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`quantize`."""
        return self.reconstruct_array(self.convert_array(values))

    def quantize_devices(self, values: np.ndarray,
                         devices: Optional[np.ndarray] = None) -> np.ndarray:
        """Round-trip :meth:`convert_devices` + :meth:`reconstruct_array`."""
        return self.reconstruct_array(self.convert_devices(values, devices=devices))

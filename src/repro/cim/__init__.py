"""Computing-in-memory (CiM) hardware simulators.

Behavioural, array-level models of the two FeFET CiM blocks of HyCiM:

* the **inequality filter** (paper Sec. 3.3, Figs. 4-5): a matchline-based
  working array whose end-of-evaluation voltage is proportional to
  ``-(w . x)``, a replica array encoding ``-C`` and a 2-stage voltage
  comparator producing the feasible / infeasible decision;
* the **QUBO crossbar** (paper Sec. 3.4, Figs. 6-7): a bit-sliced 1FeFET1R
  crossbar that evaluates ``x^T Q x`` with analog column currents, ADC
  quantization and device variability;
* the **cost model** used by the hardware-overhead study (Fig. 9(c)).
"""

from repro.cim.adc import ADCModel
from repro.cim.comparator import TwoStageComparator
from repro.cim.filter_array import FilterArrayConfig, MatchlineReadout, WorkingArray
from repro.cim.replica import ReplicaArray
from repro.cim.inequality_filter import FilterDecision, InequalityFilter
from repro.cim.crossbar import CrossbarConfig, FeFETCrossbar
from repro.cim.energy_model import (
    EnergyModelParameters,
    RunCost,
    crossbar_evaluation_energy,
    dqubo_run_cost,
    energy_saving,
    filter_evaluation_energy,
    hycim_run_cost,
)
from repro.cim.cost_model import (
    CostModelParameters,
    HardwareCost,
    crossbar_cost,
    dqubo_hardware_cost,
    hardware_size_saving,
    hycim_hardware_cost,
    inequality_filter_cost,
)

__all__ = [
    "ADCModel",
    "TwoStageComparator",
    "FilterArrayConfig",
    "MatchlineReadout",
    "WorkingArray",
    "ReplicaArray",
    "FilterDecision",
    "InequalityFilter",
    "CrossbarConfig",
    "FeFETCrossbar",
    "CostModelParameters",
    "HardwareCost",
    "EnergyModelParameters",
    "RunCost",
    "filter_evaluation_energy",
    "crossbar_evaluation_energy",
    "hycim_run_cost",
    "dqubo_run_cost",
    "energy_saving",
    "crossbar_cost",
    "inequality_filter_cost",
    "hycim_hardware_cost",
    "dqubo_hardware_cost",
    "hardware_size_saving",
]

"""Device-to-device variability model for FeFETs.

Fig. 2(b) of the paper shows ID-VG curves measured on 60 devices: the
threshold voltage of each programmed level spreads by a few tens of
millivolts and the ON current spreads roughly log-normally.  The 1FeFET1R
cell (Fig. 4(a,b)) clamps the ON current with a series resistor precisely to
suppress the latter.  This module samples both variation sources so the CiM
simulators can be exercised with and without non-idealities.

RNG layering
------------
One :class:`VariabilityModel` owns one :class:`numpy.random.SeedSequence` and
one ``Generator`` stream; every sampling method consumes that stream.  Two
contracts make the model usable from both the scalar and the batched
(device-axis) hardware paths:

* **Batch draws replay the scalar order.**  ``sample_threshold_shift(size=N)``
  returns exactly the values ``N`` successive scalar calls would return, and
  :meth:`sample_device_table` returns the interleaved (shift, factor) pairs
  ``N`` successive :class:`~repro.fefet.device.FeFETDevice` constructions
  would sample.  A device-axis array can therefore sample a whole chip in one
  vectorised draw and still be bit-identical to cell-by-cell programming.
* **One spawned stream per chip.**  :meth:`spawn_chips` derives independent
  child models through ``SeedSequence.spawn``, so a Monte-Carlo study over
  ``D`` simulated chips gives every chip its own reproducible stream that
  does not depend on how many chips share the batch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, None]


@dataclass
class VariabilityModel:
    """Samples per-device threshold and ON-current deviations.

    Parameters
    ----------
    threshold_sigma:
        Standard deviation (in volts) of the Gaussian threshold-voltage shift
        applied identically to every programmed level of a device.
    on_current_sigma:
        Log-normal sigma of the multiplicative ON-current variation
        (``i_on_actual = i_on_nominal * lognormal(0, sigma)``).
    seed:
        RNG seed (an ``int``, an already-spawned ``SeedSequence``, or ``None``
        for fresh entropy); separate models with the same seed sample
        identical devices.
    """

    threshold_sigma: float = 0.03
    on_current_sigma: float = 0.15
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.threshold_sigma < 0 or self.on_current_sigma < 0:
            raise ValueError("variability sigmas must be non-negative")
        if isinstance(self.seed, np.random.SeedSequence):
            self._seed_sequence = self.seed
        else:
            self._seed_sequence = np.random.SeedSequence(self.seed)
        self._rng = np.random.default_rng(self._seed_sequence)

    @classmethod
    def ideal(cls) -> "VariabilityModel":
        """A variation-free model (useful for functional unit tests)."""
        return cls(threshold_sigma=0.0, on_current_sigma=0.0, seed=0)

    # ------------------------------------------------------------------ #
    # Sampling (scalar and batched views over the same stream)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_size(size: int) -> int:
        count = int(size)
        if count < 0:
            raise ValueError("count must be non-negative")
        return count

    def sample_threshold_shift(
        self, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Gaussian threshold-voltage shift(s) in volts.

        Without ``size`` returns one scalar shift; with ``size=N`` returns an
        array of ``N`` shifts drawn in one batch, bit-identical to ``N``
        successive scalar calls (zero-sigma models consume no stream either
        way).
        """
        if size is None:
            if self.threshold_sigma == 0.0:
                return 0.0
            return float(self._rng.normal(0.0, self.threshold_sigma))
        count = self._check_size(size)
        if self.threshold_sigma == 0.0:
            return np.zeros(count)
        return self._rng.normal(0.0, self.threshold_sigma, size=count)

    def sample_on_current_factor(
        self, size: Optional[int] = None
    ) -> Union[float, np.ndarray]:
        """Multiplicative ON-current factor(s) (log-normal, mean ~1).

        Scalar without ``size``; with ``size=N`` a one-batch draw replaying
        the sequential scalar order exactly.
        """
        if size is None:
            if self.on_current_sigma == 0.0:
                return 1.0
            return float(self._rng.lognormal(0.0, self.on_current_sigma))
        count = self._check_size(size)
        if self.on_current_sigma == 0.0:
            return np.ones(count)
        return self._rng.lognormal(0.0, self.on_current_sigma, size=count)

    def sample_threshold_shifts(self, count: int) -> np.ndarray:
        """Vectorised threshold shifts for ``count`` devices."""
        return np.asarray(self.sample_threshold_shift(size=count))

    def sample_on_current_factors(self, count: int) -> np.ndarray:
        """Vectorised ON-current factors for ``count`` devices."""
        return np.asarray(self.sample_on_current_factor(size=count))

    def sample_device_table(self, num_devices: int) -> Tuple[np.ndarray, np.ndarray]:
        """(shifts, factors) for ``num_devices`` devices in construction order.

        Each :class:`~repro.fefet.device.FeFETDevice` samples its threshold
        shift and then its ON-current factor; programming an array therefore
        interleaves the two draws cell by cell.  This method reproduces that
        interleaved stream consumption in one vectorised draw: both
        ``Generator.normal`` and ``Generator.lognormal`` reduce to scaled
        standard normals, so one ``standard_normal(2 * N)`` batch carries the
        exact values of ``N`` sequential (shift, factor) pairs.  Zero-sigma
        components are skipped without consuming the stream, exactly as the
        scalar samplers do.
        """
        count = self._check_size(num_devices)
        t_sigma, o_sigma = self.threshold_sigma, self.on_current_sigma
        if t_sigma == 0.0 and o_sigma == 0.0:
            return np.zeros(count), np.ones(count)
        if t_sigma > 0.0 and o_sigma > 0.0:
            draws = self._rng.standard_normal(2 * count)
            # libm exp per element, matching Generator.lognormal bit for bit
            # (numpy's SIMD np.exp can differ from libm by one ulp).
            factors = np.fromiter(
                (math.exp(v) for v in o_sigma * draws[1::2]),
                dtype=float, count=count)
            return t_sigma * draws[0::2], factors
        if t_sigma > 0.0:
            return self.sample_threshold_shifts(count), np.ones(count)
        return np.zeros(count), self.sample_on_current_factors(count)

    # ------------------------------------------------------------------ #
    # Chip spawning (the per-chip stream layer)
    # ------------------------------------------------------------------ #
    def spawn_chips(self, num_chips: int) -> List["VariabilityModel"]:
        """Derive one independent child model per simulated chip.

        Children are spawned from this model's ``SeedSequence``, so every
        chip samples from its own statistically independent stream; for a
        fixed parent seed the ``d``-th chip is identical regardless of how
        many chips share the batch.  Successive calls keep spawning fresh
        (deterministic) children rather than repeating earlier ones.
        """
        count = self._check_size(num_chips)
        return [
            VariabilityModel(self.threshold_sigma, self.on_current_sigma, seed=child)
            for child in self._seed_sequence.spawn(count)
        ]

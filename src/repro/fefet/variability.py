"""Device-to-device variability model for FeFETs.

Fig. 2(b) of the paper shows ID-VG curves measured on 60 devices: the
threshold voltage of each programmed level spreads by a few tens of
millivolts and the ON current spreads roughly log-normally.  The 1FeFET1R
cell (Fig. 4(a,b)) clamps the ON current with a series resistor precisely to
suppress the latter.  This module samples both variation sources so the CiM
simulators can be exercised with and without non-idealities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class VariabilityModel:
    """Samples per-device threshold and ON-current deviations.

    Parameters
    ----------
    threshold_sigma:
        Standard deviation (in volts) of the Gaussian threshold-voltage shift
        applied identically to every programmed level of a device.
    on_current_sigma:
        Log-normal sigma of the multiplicative ON-current variation
        (``i_on_actual = i_on_nominal * lognormal(0, sigma)``).
    seed:
        RNG seed; separate models with the same seed sample identical devices.
    """

    threshold_sigma: float = 0.03
    on_current_sigma: float = 0.15
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.threshold_sigma < 0 or self.on_current_sigma < 0:
            raise ValueError("variability sigmas must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    @classmethod
    def ideal(cls) -> "VariabilityModel":
        """A variation-free model (useful for functional unit tests)."""
        return cls(threshold_sigma=0.0, on_current_sigma=0.0, seed=0)

    def sample_threshold_shift(self) -> float:
        """Gaussian threshold-voltage shift for one device (volts)."""
        if self.threshold_sigma == 0.0:
            return 0.0
        return float(self._rng.normal(0.0, self.threshold_sigma))

    def sample_on_current_factor(self) -> float:
        """Multiplicative ON-current factor for one device (log-normal, mean ~1)."""
        if self.on_current_sigma == 0.0:
            return 1.0
        return float(self._rng.lognormal(0.0, self.on_current_sigma))

    def sample_threshold_shifts(self, count: int) -> np.ndarray:
        """Vectorised threshold shifts for ``count`` devices."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.threshold_sigma == 0.0:
            return np.zeros(count)
        return self._rng.normal(0.0, self.threshold_sigma, size=count)

    def sample_on_current_factors(self, count: int) -> np.ndarray:
        """Vectorised ON-current factors for ``count`` devices."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self.on_current_sigma == 0.0:
            return np.ones(count)
        return self._rng.lognormal(0.0, self.on_current_sigma, size=count)

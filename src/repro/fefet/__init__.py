"""Behavioural FeFET device substrate.

The paper's circuits are simulated in SPECTRE with the Preisach FeFET compact
model; this package provides the behavioural Python equivalent the CiM
simulators in :mod:`repro.cim` are built on:

* :class:`~repro.fefet.device.FeFETDevice` -- a multi-level FeFET whose
  programmed polarisation state sets its threshold voltage (paper Fig. 2(a,b)).
* :class:`~repro.fefet.cell.OneFeFETOneRCell` -- the 1FeFET1R bit cell whose
  series resistor clamps the ON current and suppresses device-to-device
  variability (paper Fig. 4(a,b)).
* :class:`~repro.fefet.variability.VariabilityModel` -- threshold-voltage and
  ON-current variation sampled per device.
"""

from repro.fefet.device import FeFETDevice, FeFETParameters
from repro.fefet.cell import OneFeFETOneRCell, CellParameters
from repro.fefet.variability import VariabilityModel

__all__ = [
    "FeFETDevice",
    "FeFETParameters",
    "OneFeFETOneRCell",
    "CellParameters",
    "VariabilityModel",
]

"""The 1FeFET1R bit cell (paper Fig. 4(a)).

A single FeFET in series with a resistor ``R``.  The resistor serves two
purposes that the paper relies on:

1. **Current clamping** -- when the FeFET is ON its channel resistance is much
   smaller than ``R``, so the cell current is set by ``~V_DD / R`` rather than
   by the (variable) transistor ON current, which suppresses device-to-device
   variability (Fig. 4(b));
2. **Multi-level weight storage** -- for the inequality filter, a cell stores
   an integer weight ``w in {0 .. k}`` by programming the FeFET threshold so
   that the cell conducts for exactly the ``w`` lowest staircase read
   voltages ``V_read,j`` with ``j <= w`` (Fig. 4(b,c)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.fefet.device import FeFETDevice, FeFETParameters
from repro.fefet.variability import VariabilityModel


def conduction_counts(cell_weights: np.ndarray, parameters: "CellParameters",
                      threshold_shifts: np.ndarray) -> np.ndarray:
    """Vectorised :meth:`OneFeFETOneRCell.conduction_count` over many cells.

    ``cell_weights`` holds the stored weight of each cell along the last
    axis; ``threshold_shifts`` broadcasts against it (typically shape
    ``(D, C)`` -- one row of per-cell shifts per simulated chip).  Returns
    the number of staircase read phases each cell conducts for, the quantity
    the working array sums per column into its effective weights (Eq. (7)).
    This is the single conduction kernel both the scalar cell objects and
    the device-axis arrays resolve to: a cell storing weight ``w`` sits at
    device level ``max_weight - w`` and conducts during phase ``j`` exactly
    when ``V_read,j >= V_T(level) + shift``.
    """
    weights = np.asarray(cell_weights, dtype=int)
    levels = parameters.max_weight - weights
    thresholds = np.asarray(parameters.device.threshold_voltages, dtype=float)
    read_voltages = np.asarray(parameters.read_voltages, dtype=float)
    actual_thresholds = thresholds[levels] + np.asarray(threshold_shifts, dtype=float)
    return (read_voltages >= actual_thresholds[..., None]).sum(axis=-1)


@dataclass(frozen=True)
class CellParameters:
    """Electrical parameters of the 1FeFET1R cell and its read scheme.

    Attributes
    ----------
    device:
        Parameters of the embedded FeFET.
    series_resistance:
        The clamping resistor ``R`` (ohms).
    supply_voltage:
        ``V_DD`` used to precharge matchlines and bias drains (paper: 2 V).
    max_weight:
        Largest integer weight a cell can store (paper filter cells: 4;
        the evaluation arrays use weight decomposition to reach 64 per item).
    read_voltages:
        Staircase read voltages ``V_read,1 .. V_read,max_weight`` ordered from
        the *largest* stored weight they probe down to the smallest, i.e.
        ``read_voltages[j-1]`` turns ON every cell storing ``w >= j``.
    """

    device: FeFETParameters = field(default_factory=FeFETParameters)
    series_resistance: float = 50e3
    supply_voltage: float = 2.0
    max_weight: int = 4
    read_voltages: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.series_resistance <= 0:
            raise ValueError("series resistance must be positive")
        if self.supply_voltage <= 0:
            raise ValueError("supply voltage must be positive")
        if self.max_weight < 1:
            raise ValueError("max_weight must be at least 1")
        if self.max_weight > self.device.num_levels - 1:
            raise ValueError(
                "max_weight requires at least max_weight+1 device levels "
                f"({self.max_weight + 1} needed, {self.device.num_levels} available)"
            )
        if not self.read_voltages:
            # Default staircase: V_read,j sits between the thresholds of the
            # level storing weight j and the level storing weight j-1, so a
            # cell storing weight w conducts exactly for j <= w.
            thresholds = self.device.threshold_voltages
            voltages = []
            for j in range(1, self.max_weight + 1):
                # Weight w is stored as device level (max_weight - w); see
                # OneFeFETOneRCell.program_weight for the mapping rationale.
                level_for_w_ge_j = self.max_weight - j
                v_low = thresholds[level_for_w_ge_j]
                v_high = thresholds[level_for_w_ge_j + 1]
                voltages.append(0.5 * (v_low + v_high))
            object.__setattr__(self, "read_voltages", tuple(voltages))
        if len(self.read_voltages) != self.max_weight:
            raise ValueError("one read voltage per non-zero weight value is required")

    @property
    def clamped_current(self) -> float:
        """ON-state cell current set by the series resistor (``~V_DD / R``)."""
        return self.supply_voltage / self.series_resistance


@dataclass
class OneFeFETOneRCell:
    """A 1FeFET1R cell storing an integer weight for the inequality filter.

    The weight-to-level mapping is ``level = max_weight - weight``: a larger
    stored weight means a *lower* threshold, so the cell conducts for more of
    the descending staircase read pulses (paper Fig. 4(b)).
    """

    parameters: CellParameters = field(default_factory=CellParameters)
    weight: int = 0
    variability: Optional[VariabilityModel] = None
    threshold_shift: Optional[float] = None
    on_current_factor: Optional[float] = None

    def __post_init__(self) -> None:
        self._check_weight(self.weight)
        self._device = FeFETDevice(
            parameters=self.parameters.device,
            level=self._level_for_weight(self.weight),
            variability=self.variability,
            # Pre-sampled variation (device-axis arrays inject the values
            # drawn by one vectorised sample_device_table call).
            threshold_shift=self.threshold_shift,
            on_current_factor=self.on_current_factor,
        )

    def _check_weight(self, weight: int) -> None:
        if not 0 <= weight <= self.parameters.max_weight:
            raise ValueError(
                f"weight {weight} out of range 0..{self.parameters.max_weight}"
            )

    def _level_for_weight(self, weight: int) -> int:
        return self.parameters.max_weight - weight

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def program_weight(self, weight: int) -> None:
        """Store a new integer weight (reprograms the FeFET threshold)."""
        self._check_weight(weight)
        self.weight = weight
        self._device.program(self._level_for_weight(weight))

    @property
    def device(self) -> FeFETDevice:
        """The embedded FeFET (read-only access for inspection/tests)."""
        return self._device

    # ------------------------------------------------------------------ #
    # Read behaviour
    # ------------------------------------------------------------------ #
    def conducts(self, read_index: int, input_bit: int = 1) -> bool:
        """Whether the cell discharges the matchline during read phase ``read_index``.

        ``read_index`` is 1-based (phase ``j`` applies ``V_read,j``); a cell
        storing weight ``w`` conducts iff ``input_bit == 1`` and ``j <= w``.
        """
        if not 1 <= read_index <= self.parameters.max_weight:
            raise ValueError(
                f"read index {read_index} out of range 1..{self.parameters.max_weight}"
            )
        if input_bit not in (0, 1):
            raise ValueError("input bit must be 0 or 1")
        if input_bit == 0:
            return False
        gate_voltage = self.parameters.read_voltages[read_index - 1]
        return self._device.is_on(gate_voltage)

    def read_current(self, read_index: int, input_bit: int = 1) -> float:
        """Cell current during read phase ``read_index`` (clamped by ``R``)."""
        if not self.conducts(read_index, input_bit):
            # Leakage through the OFF transistor.
            gate_voltage = self.parameters.read_voltages[read_index - 1] if input_bit else 0.0
            return self._device.drain_current(gate_voltage, self.parameters.supply_voltage)
        transistor_current = self._device.drain_current(
            self.parameters.read_voltages[read_index - 1], self.parameters.supply_voltage
        )
        return float(min(transistor_current, self.parameters.clamped_current))

    def conduction_count(self, input_bit: int = 1) -> int:
        """How many of the staircase phases discharge the matchline.

        Equals the stored weight for an ideal device (the property Eq. (7)
        relies on); variability can shift it by one for marginal thresholds.
        """
        return sum(
            1 for j in range(1, self.parameters.max_weight + 1) if self.conducts(j, input_bit)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OneFeFETOneRCell(weight={self.weight}, VT={self._device.threshold_voltage:.3f} V)"

"""Behavioural multi-level FeFET device model.

A FeFET stores information in the polarisation state of its HfO2 gate
dielectric: different write pulses shift the transistor threshold voltage
(paper Fig. 2(a)), so a single device can be programmed to several
distinguishable ``ID-VG`` curves (Fig. 2(b) shows 4 levels measured on 60
devices).  The drain current model used here is the standard behavioural
abstraction for array-level simulation:

* below threshold: exponential subthreshold conduction with a fixed swing,
  floored at ``off_current``;
* above threshold: the device is ON and delivers ``on_current`` (the series
  resistor of the 1FeFET1R cell, not this class, is what linearises and
  clamps the ON current).

The numbers default to the ranges visible in Fig. 2(b): ON current around
tens of microamps, OFF current around nanoamps (ON/OFF >= 1e4), threshold
levels spread across 0-2 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fefet.variability import VariabilityModel


@dataclass(frozen=True)
class FeFETParameters:
    """Nominal electrical parameters of a multi-level FeFET.

    Attributes
    ----------
    threshold_voltages:
        Nominal threshold voltage of each programmable level, ordered from the
        lowest-VT (most conductive at a given read voltage) to the highest-VT
        state.  Level ``0`` conventionally denotes the erased / highest-VT
        state in the filter-cell mapping, but this class is agnostic: callers
        pick the mapping.
    on_current:
        Saturated ON current (amperes) once ``V_G`` exceeds threshold by more
        than ~4 subthreshold swings.
    off_current:
        Leakage floor (amperes).
    subthreshold_swing:
        Gate-voltage increase (volts) per decade of subthreshold current.
    read_drain_voltage:
        Drain bias used for read operations (Fig. 2(b) uses 50 mV).
    """

    threshold_voltages: Tuple[float, ...] = (0.2, 0.6, 1.0, 1.4, 1.8)
    on_current: float = 30e-6
    off_current: float = 1e-9
    subthreshold_swing: float = 0.09
    read_drain_voltage: float = 0.05

    def __post_init__(self) -> None:
        if len(self.threshold_voltages) < 2:
            raise ValueError("at least two programmable levels are required")
        if list(self.threshold_voltages) != sorted(self.threshold_voltages):
            raise ValueError("threshold voltages must be sorted ascending")
        if self.on_current <= self.off_current:
            raise ValueError("on_current must exceed off_current")
        if self.subthreshold_swing <= 0:
            raise ValueError("subthreshold swing must be positive")

    @property
    def num_levels(self) -> int:
        """Number of programmable polarisation states."""
        return len(self.threshold_voltages)

    @property
    def on_off_ratio(self) -> float:
        """Nominal ON/OFF current ratio."""
        return self.on_current / self.off_current


@dataclass
class FeFETDevice:
    """One FeFET programmed to a specific multi-level state.

    Parameters
    ----------
    parameters:
        Nominal device parameters (shared across an array).
    level:
        Programmed level index into ``parameters.threshold_voltages``.
    variability:
        Optional variability model; when given, a per-device threshold shift
        and ON-current factor are sampled at construction (i.e. at program
        time) and stay fixed for the lifetime of the device, mirroring how
        write-verify programming freezes the device state.
    threshold_shift / on_current_factor:
        Pre-sampled variation values.  The device-axis array kernels sample
        whole chips in one vectorised
        :meth:`~repro.fefet.variability.VariabilityModel.sample_device_table`
        draw and inject the per-device values here, so a cell object can be
        materialised for inspection without consuming the variability stream
        a second time.  When either is given, ``variability`` is not sampled.
    """

    parameters: FeFETParameters = field(default_factory=FeFETParameters)
    level: int = 0
    variability: Optional[VariabilityModel] = None
    threshold_shift: Optional[float] = None
    on_current_factor: Optional[float] = None

    def __post_init__(self) -> None:
        self._check_level(self.level)
        if self.threshold_shift is not None or self.on_current_factor is not None:
            self._threshold_shift = (0.0 if self.threshold_shift is None
                                     else float(self.threshold_shift))
            self._on_factor = (1.0 if self.on_current_factor is None
                               else float(self.on_current_factor))
        elif self.variability is not None:
            self._threshold_shift = self.variability.sample_threshold_shift()
            self._on_factor = self.variability.sample_on_current_factor()
        else:
            self._threshold_shift = 0.0
            self._on_factor = 1.0

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.parameters.num_levels:
            raise ValueError(
                f"level {level} out of range for a {self.parameters.num_levels}-level device"
            )

    # ------------------------------------------------------------------ #
    # Programming
    # ------------------------------------------------------------------ #
    def program(self, level: int) -> None:
        """Program the device to a new polarisation level (write pulse).

        Device-to-device variation is a property of the physical device, not
        of the written state, so the sampled threshold shift and ON-current
        factor are retained across reprogramming.
        """
        self._check_level(level)
        self.level = level

    def erase(self) -> None:
        """Erase to the highest-threshold (least conductive) state."""
        self.level = self.parameters.num_levels - 1

    # ------------------------------------------------------------------ #
    # Electrical behaviour
    # ------------------------------------------------------------------ #
    @property
    def threshold_voltage(self) -> float:
        """Actual threshold voltage of the current state, including variation."""
        return self.parameters.threshold_voltages[self.level] + self._threshold_shift

    @property
    def on_current(self) -> float:
        """Actual ON current including the sampled device variation."""
        return self.parameters.on_current * self._on_factor

    def drain_current(self, gate_voltage, drain_voltage: Optional[float] = None):
        """Drain current at the given gate (and drain) bias.

        The drain dependence is linear in the deep-triode read regime used by
        the CiM arrays (``V_DS`` = tens of millivolts), normalised so that the
        nominal :attr:`on_current` is reached at the nominal read drain bias.
        ``gate_voltage`` may be a scalar (returning a ``float``) or an array
        of any shape (returning the element-wise currents), so array-level
        simulators can sweep a whole ``(D, M, ...)`` batch of biases in one
        call.
        """
        vds = self.parameters.read_drain_voltage if drain_voltage is None else drain_voltage
        if vds < 0:
            raise ValueError("drain voltage must be non-negative")
        vg = np.asarray(gate_voltage, dtype=float)
        overdrive = vg - self.threshold_voltage
        # Deep-triode ON current scales linearly with the drain bias;
        # subthreshold conduction saturates with drain bias (V_DS >> kT/q),
        # so the leakage floor does not grow with larger read biases.
        on = self.on_current * (vds / self.parameters.read_drain_voltage)
        decades = np.minimum(overdrive, 0.0) / self.parameters.subthreshold_swing
        subthreshold = np.maximum(self.on_current * 10.0 ** decades,
                                  self.parameters.off_current)
        current = np.where(overdrive >= 0.0, on, subthreshold)
        if vg.ndim == 0:
            return float(current)
        return current

    def is_on(self, gate_voltage: float) -> bool:
        """Whether the device conducts strongly at ``gate_voltage`` (V_G >= V_T)."""
        return gate_voltage >= self.threshold_voltage

    def id_vg_curve(self, gate_voltages: Sequence[float]) -> np.ndarray:
        """Drain current at each gate voltage (reproduces one Fig. 2(b) trace)."""
        return np.asarray(self.drain_current(np.asarray(gate_voltages, dtype=float)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FeFETDevice(level={self.level}, VT={self.threshold_voltage:.3f} V, "
            f"Ion={self.on_current * 1e6:.1f} uA)"
        )


def measure_id_vg_population(
    num_devices: int = 60,
    levels: Optional[Sequence[int]] = None,
    gate_voltages: Optional[Sequence[float]] = None,
    parameters: Optional[FeFETParameters] = None,
    variability: Optional[VariabilityModel] = None,
    seed: int = 7,
) -> Tuple[np.ndarray, np.ndarray]:
    """Reproduce the Fig. 2(b) measurement: ID-VG curves of a device population.

    Parameters
    ----------
    num_devices:
        How many devices to sample per level (the paper measures 60 in total
        across 4 states; here ``num_devices`` devices are sampled for *each*
        requested level).
    levels:
        Which programmed levels to sweep (default: the four lowest levels,
        matching the four ``q0..q3`` states in Fig. 2(b)).
    gate_voltages:
        Gate sweep points (default 0..2 V in 50 mV steps).
    parameters, variability, seed:
        Device model knobs.

    Returns
    -------
    (gate_voltages, currents):
        ``currents`` has shape ``(len(levels), num_devices, len(gate_voltages))``.
    """
    params = parameters or FeFETParameters()
    var = variability or VariabilityModel(seed=seed)
    if levels is None:
        levels = list(range(min(4, params.num_levels)))
    if gate_voltages is None:
        gate_voltages = np.arange(0.0, 2.0 + 1e-9, 0.05)
    vg = np.asarray(gate_voltages, dtype=float)
    currents = np.zeros((len(levels), num_devices, vg.shape[0]))
    for li, level in enumerate(levels):
        # One vectorised draw per level replays the per-device construction
        # order exactly (the device axis of the population, computed in one
        # broadcast instead of num_devices Python objects).
        shifts, factors = var.sample_device_table(num_devices)
        thresholds = params.threshold_voltages[level] + shifts
        on_currents = params.on_current * factors
        overdrive = vg[None, :] - thresholds[:, None]
        decades = np.minimum(overdrive, 0.0) / params.subthreshold_swing
        subthreshold = np.maximum(on_currents[:, None] * 10.0 ** decades,
                                  params.off_current)
        currents[li] = np.where(overdrive >= 0.0, on_currents[:, None],
                                subthreshold)
    return vg, currents

"""Bit-packing utilities for the packed sweep kernel.

Replica configurations are 0/1 vectors; the packed backend stores them as
``(M, ceil(n/64))`` uint64 **words** -- bit ``j`` of replica ``k`` lives at
position ``j % 64`` of ``words[k, j // 64]`` -- and evaluates the QUBO
local field by AND + popcount against precomputed **bit-plane masks** of
the symmetrised coefficient matrix.

The plane decomposition handles signed integer coefficients with a per-row
offset: with ``m_i = min(0, min_j S[i, j])`` every entry of
``enc = S - m_i`` is a non-negative integer, so ``enc`` splits into ``B``
binary planes and

    field_i(x) = sum_j S[i, j] x_j
               = sum_b 2**b * popcount(mask_b[i] & words(x)) + m_i * |x|

with ``|x|`` the state's popcount.  Every quantity on the right is an
exact int64, so the float64 field value is *bit-identical* to the fused
kernel's incrementally maintained ``x @ (Q + Q^T)`` cache whenever the
coefficient data is integer-valued -- which is exactly the precondition
:func:`build_plane_masks` enforces.

Masks are laid out ``(n, B, W)`` so the per-proposal gather of the chosen
rows is a single contiguous fancy index; popcounts use
:func:`numpy.bitwise_count` (numpy >= 2.0).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.sparse import is_sparse_matrix
from repro.kernels.base import KernelUnsupportedError

__all__ = [
    "MAX_MASK_BYTES",
    "WORD_BITS",
    "build_plane_masks",
    "pack_bits",
    "packed_dot",
    "packed_width",
    "popcount_rows",
    "unpack_bits",
]

#: Bits per state word.
WORD_BITS = 64

#: Mask-table budget: beyond this the packed backend raises
#: :class:`KernelUnsupportedError` and ``"auto"`` falls back to fused.
MAX_MASK_BYTES = 256 * 1024 * 1024

#: Largest exact integer magnitude a float64 holds (2**53); field values
#: must stay below it for the popcount path to be bit-identical to floats.
_EXACT_FLOAT_BOUND = float(2 ** 53)

_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)


def packed_width(num_variables: int) -> int:
    """Words per replica: ``ceil(n / 64)``."""
    return (int(num_variables) + WORD_BITS - 1) // WORD_BITS


def pack_bits(bools: np.ndarray) -> np.ndarray:
    """Pack an ``(M, n)`` 0/1 array into ``(M, W)`` uint64 words.

    Bit ``j`` lands at position ``j % 64`` of word ``j // 64`` regardless
    of platform endianness.
    """
    array = np.asarray(bools)
    if array.ndim != 2:
        raise ValueError(f"expected an (M, n) array, got shape {array.shape}")
    num_rows, num_variables = array.shape
    width = packed_width(num_variables)
    flags = array.astype(np.uint8, copy=False) != 0
    packed = np.packbits(flags, axis=-1, bitorder="little")
    padded = np.zeros((num_rows, width * 8), dtype=np.uint8)
    padded[:, :packed.shape[1]] = packed
    # Little-endian byte order within each word matches the bit layout
    # above; byte-swap on big-endian hosts instead of viewing natively.
    words = padded.view("<u8")
    return np.ascontiguousarray(words.astype(np.uint64, copy=False))


def unpack_bits(words: np.ndarray, num_variables: int) -> np.ndarray:
    """The ``(M, n)`` float 0/1 array a :func:`pack_bits` result encodes."""
    words = np.asarray(words, dtype=np.uint64)
    num_rows = words.shape[0]
    bits = (words[:, :, None] >> _SHIFTS) & np.uint64(1)
    return bits.reshape(num_rows, -1)[:, :num_variables].astype(float)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Per-row set-bit counts of a packed ``(M, W)`` array, as int64."""
    return np.bitwise_count(words).sum(axis=1, dtype=np.int64)


def packed_dot(masks: np.ndarray, words: np.ndarray,
               plane_weights: np.ndarray,
               offsets: np.ndarray) -> np.ndarray:
    """Row-wise ``sum_j S[i, j] x_j`` from plane masks and packed states.

    ``masks[i]`` is row ``i``'s ``(B, W)`` plane table, ``words`` the
    ``(M, W)`` packed states (one row of ``masks`` per state row, i.e. the
    caller has already gathered ``masks = all_masks[flips]``), ``offsets``
    the per-row offsets ``m_i`` likewise gathered.  Returns exact int64.
    """
    counts = np.bitwise_count(masks & words[:, None, :])
    per_plane = counts.sum(axis=2, dtype=np.int64)
    return per_plane @ plane_weights + offsets * popcount_rows(words)


def _as_row_vector(extrema, num_variables: int) -> np.ndarray:
    """Axis-wise sparse/dense extrema as a flat ``(n,)`` float array."""
    if hasattr(extrema, "todense"):
        extrema = extrema.todense()
    return np.asarray(extrema, dtype=float).reshape(num_variables)


def build_plane_masks(symmetric, *, max_mask_bytes: int = MAX_MASK_BYTES
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bit-plane masks of a symmetrised coefficient matrix.

    Returns ``(offsets, masks, plane_weights)``: per-row int64 offsets
    ``m_i``, the ``(n, B, W)`` uint64 plane table and the ``(B,)`` int64
    weights ``2**b``.  Raises :class:`KernelUnsupportedError` when the
    matrix is not integer-valued, a field value could exceed the exact
    float64 integer range, or the table would exceed ``max_mask_bytes`` --
    the conditions under which the packed backend cannot guarantee
    bit-identical trajectories (or reasonable memory), so ``"auto"`` falls
    through to the fused backend.
    """
    sparse = is_sparse_matrix(symmetric)
    if sparse:
        matrix = symmetric.tocsr()
        entries = np.asarray(matrix.data, dtype=float)
        num_variables = int(matrix.shape[0])
    else:
        matrix = np.asarray(symmetric, dtype=float)
        entries = matrix.ravel()
        num_variables = int(matrix.shape[0])
    if entries.size and not np.array_equal(entries, np.rint(entries)):
        raise KernelUnsupportedError(
            "packed kernels require integer-valued coefficients (popcount "
            "field sums are exact only on integers); float matrices run on "
            "the fused backend")
    max_abs = float(np.abs(entries).max()) if entries.size else 0.0
    if max_abs * num_variables >= _EXACT_FLOAT_BOUND:
        raise KernelUnsupportedError(
            "packed field values could exceed the exact float64 integer "
            "range (max |coefficient| * n >= 2**53)")

    width = packed_width(num_variables)
    if num_variables and entries.size:
        # scipy's axis-wise extrema account for implicit zeros, matching
        # the dense semantics (a missing CSR entry is a zero coefficient).
        row_min = _as_row_vector(matrix.min(axis=1), num_variables)
        row_max = _as_row_vector(matrix.max(axis=1), num_variables)
    else:
        row_min = np.zeros(num_variables)
        row_max = np.zeros(num_variables)
    offsets = np.minimum(row_min, 0.0).astype(np.int64)
    largest = int((row_max - offsets).max()) if num_variables else 0
    num_planes = largest.bit_length()
    if num_planes * num_variables * width * 8 > max_mask_bytes:
        raise KernelUnsupportedError(
            f"packed plane table would need {num_planes} planes x "
            f"{num_variables} rows x {width} words "
            f"(> {max_mask_bytes} bytes); this instance runs on the fused "
            "backend")

    # packbits output lands directly in the little-endian byte image of the
    # word table (pad bytes pre-zeroed), viewed back as uint64 at the end --
    # the same byte-order convention as :func:`pack_bits`.
    mask_bytes = np.zeros((num_variables, num_planes, width * 8),
                          dtype=np.uint8)
    # Encoded entries fit ``largest``; peeling planes off the low end of the
    # smallest sufficient unsigned dtype keeps the per-plane temporaries
    # small (a uint8 pass over the block instead of an int64 shift).
    encode_dtype = next(dtype for dtype in
                        (np.uint8, np.uint16, np.uint32, np.uint64)
                        if largest < 2 ** (8 * np.dtype(dtype).itemsize))
    # Encode rows in chunks so the dense (chunk, n) temporary stays small
    # even when the matrix arrives as CSR.
    chunk = max(1, min(num_variables, (1 << 24) // max(1, num_variables)))
    for start in range(0, num_variables, chunk):
        stop = min(start + chunk, num_variables)
        block = (matrix[start:stop].toarray() if sparse
                 else matrix[start:stop])
        encoded = (np.asarray(block, dtype=np.int64)
                   - offsets[start:stop, None]).astype(encode_dtype)
        for plane in range(num_planes):
            bits = (encoded & encode_dtype(1)).astype(np.uint8, copy=False)
            packed = np.packbits(bits, axis=-1, bitorder="little")
            mask_bytes[start:stop, plane, :packed.shape[1]] = packed
            encoded >>= encode_dtype(1)
    masks = np.ascontiguousarray(
        mask_bytes.view("<u8").reshape(num_variables, num_planes, width)
        .astype(np.uint64, copy=False))
    plane_weights = (np.int64(1) << np.arange(num_planes, dtype=np.int64))
    return offsets, masks, plane_weights

"""Sweep kernels: pluggable inner loops for the lock-step batched engines.

See :mod:`repro.kernels.base` for the interface and the backend matrix.
The factories here are what the engines call: given a backend name (or
``"auto"``) and the engine's loop state, they construct the matching
:class:`~repro.kernels.base.SweepKernel`, falling back along
``numba -> packed -> fused -> reference`` when ``"auto"`` meets an
unsupported configuration or a missing optional dependency.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.base import (
    DEFAULT_KERNEL,
    KERNEL_BACKENDS,
    KernelUnavailableError,
    KernelUnsupportedError,
    SweepKernel,
    canonical_kernel_param,
    resolve_kernel_backend,
)
from repro.kernels.fused import FusedHyCiMKernel, FusedSAKernel
from repro.kernels.packed import PackedHyCiMKernel, PackedSAKernel
from repro.kernels.reference import ReferenceHyCiMKernel, ReferenceSAKernel

__all__ = [
    "DEFAULT_KERNEL",
    "KERNEL_BACKENDS",
    "FusedHyCiMKernel",
    "FusedSAKernel",
    "KernelUnavailableError",
    "KernelUnsupportedError",
    "PackedHyCiMKernel",
    "PackedSAKernel",
    "ReferenceHyCiMKernel",
    "ReferenceSAKernel",
    "SweepKernel",
    "canonical_kernel_param",
    "make_hycim_kernel",
    "make_sa_kernel",
    "resolve_kernel_backend",
]

#: ``"auto"`` tries backends in this order, falling through on
#: KernelUnsupportedError / KernelUnavailableError; the reference backend
#: supports everything, so "auto" never fails for support reasons.
AUTO_ORDER = ("numba", "packed", "fused", "reference")


def _build(backend: Optional[str], builders: dict) -> SweepKernel:
    name = resolve_kernel_backend(backend)
    if name != "auto":
        return builders[name]()
    last_error: Optional[Exception] = None
    for candidate in AUTO_ORDER:
        try:
            return builders[candidate]()
        except (KernelUnsupportedError, KernelUnavailableError) as error:
            last_error = error
    raise last_error  # pragma: no cover - reference never raises


def make_sa_kernel(kernel: Optional[str], *, matrix, offset, driver,
                   move_generator, single_flip, moves_per_iteration,
                   current, current_energy, accept_filter=None,
                   accept_filter_batch=None, feasibility_constraints=None,
                   generators=None) -> SweepKernel:
    """Construct the SA sweep kernel for the requested backend."""

    def reference() -> SweepKernel:
        return ReferenceSAKernel(
            matrix=matrix, offset=offset, driver=driver,
            move_generator=move_generator, single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, current=current,
            current_energy=current_energy, accept_filter=accept_filter,
            accept_filter_batch=accept_filter_batch)

    def fused() -> SweepKernel:
        return FusedSAKernel(
            matrix=matrix, offset=offset, driver=driver,
            single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, current=current,
            current_energy=current_energy, accept_filter=accept_filter,
            accept_filter_batch=accept_filter_batch,
            constraints=feasibility_constraints, generators=generators)

    def packed() -> SweepKernel:
        return PackedSAKernel(
            matrix=matrix, offset=offset, driver=driver,
            single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, current=current,
            current_energy=current_energy, accept_filter=accept_filter,
            accept_filter_batch=accept_filter_batch,
            constraints=feasibility_constraints, generators=generators)

    def numba() -> SweepKernel:
        from repro.kernels.jit import JitSAKernel

        return JitSAKernel(
            matrix=matrix, offset=offset, driver=driver,
            single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, current=current,
            current_energy=current_energy, accept_filter=accept_filter,
            accept_filter_batch=accept_filter_batch,
            constraints=feasibility_constraints, generators=generators)

    return _build(kernel, {"reference": reference, "fused": fused,
                           "packed": packed, "numba": numba})


def make_hycim_kernel(kernel: Optional[str], *, num_variables, driver,
                      move_generator, single_flip, moves_per_iteration,
                      feasible_batch, energies, current, current_energy,
                      current_feasible, use_delta, matrix, raw_energy,
                      constraints, use_hardware_filters, use_crossbar,
                      generators=None) -> SweepKernel:
    """Construct the HyCiM sweep kernel for the requested backend."""

    def reference() -> SweepKernel:
        return ReferenceHyCiMKernel(
            num_variables=num_variables, driver=driver,
            move_generator=move_generator, single_flip=single_flip,
            moves_per_iteration=moves_per_iteration,
            feasible_batch=feasible_batch, energies=energies,
            current=current, current_energy=current_energy,
            current_feasible=current_feasible, use_delta=use_delta,
            matrix=matrix, raw_energy=raw_energy)

    def fused() -> SweepKernel:
        return FusedHyCiMKernel(
            matrix=matrix, driver=driver, single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, constraints=constraints,
            current=current, current_energy=current_energy,
            current_feasible=current_feasible,
            raw_energy=raw_energy if use_delta else None,
            use_hardware_filters=use_hardware_filters,
            use_crossbar=use_crossbar, generators=generators)

    def packed() -> SweepKernel:
        return PackedHyCiMKernel(
            matrix=matrix, driver=driver, single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, constraints=constraints,
            current=current, current_energy=current_energy,
            current_feasible=current_feasible,
            raw_energy=raw_energy if use_delta else None,
            use_hardware_filters=use_hardware_filters,
            use_crossbar=use_crossbar, generators=generators)

    def numba() -> SweepKernel:
        from repro.kernels.jit import JitHyCiMKernel

        return JitHyCiMKernel(
            matrix=matrix, driver=driver, single_flip=single_flip,
            moves_per_iteration=moves_per_iteration, constraints=constraints,
            current=current, current_energy=current_energy,
            current_feasible=current_feasible,
            raw_energy=raw_energy if use_delta else None,
            use_hardware_filters=use_hardware_filters,
            use_crossbar=use_crossbar, generators=generators)

    return _build(kernel, {"reference": reference, "fused": fused,
                           "packed": packed, "numba": numba})

"""Optional numba JIT backend: compiled per-replica sweep loops.

The fused kernels already make the per-proposal work O(M) (plus O(n) or
O(degree) per *accepted* flip), but every proposal still crosses the
Python/NumPy boundary several times -- generator method calls, fancy
indexing, boolean masks.  The kernels here compile the whole fused block
into one ``numba.njit`` function that loops replicas and iterations in
native code, including the random streams themselves.

**RNG replay.**  numba cannot call ``numpy.random.Generator`` methods, so
the compiled loop re-implements the exact draw pipeline of PCG64 +
``Generator`` and is handed each replica's generator state as plain uint64
arrays:

* the 128-bit LCG advance ``state = state * PCG_MULT + inc`` on two 64-bit
  limbs, with the XSL-RR output permutation;
* ``Generator.random()`` as ``(next64() >> 11) * 2**-53``;
* ``Generator.integers(0, n)`` (``n <= 2**32``) as numpy's 32-bit Lemire
  bounded sampler fed by PCG64's *buffered* ``next32`` -- the low half of a
  64-bit draw first, the high half parked in the bit generator's
  ``has_uint32``/``uinteger`` fields.

Every primitive is validated bit-for-bit against numpy by the test suite
(which runs the same functions interpreted when numba is absent), and
:meth:`~repro.kernels.base.SweepKernel.finalize` writes the advanced states
back into the ``Generator`` objects, so anything consuming the streams
afterwards continues exactly where a reference run would.

**Support matrix.**  Everything the fused kernels support *except*
shared-RNG mode (its draws are batched, not per-replica), non-Metropolis
acceptance rules and non-PCG64 bit generators -- those raise
:class:`~repro.kernels.base.KernelUnsupportedError` so ``kernel="auto"``
falls back to the fused backend.  A missing numba installation raises
:class:`~repro.kernels.base.KernelUnavailableError` instead; tests may set
``_ALLOW_INTERPRETED`` to exercise the (slow) interpreted fallback, which
runs the very same functions undecorated.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.constraints import EqualityConstraint, InequalityConstraint
from repro.dynamics.acceptance import MetropolisRule
from repro.dynamics.driver import LoopDriver
from repro.kernels.base import KernelUnavailableError, KernelUnsupportedError
from repro.kernels.fused import LOAD_TOLERANCE, FusedHyCiMKernel, FusedSAKernel
from repro.kernels.streams import ReplayStreams

__all__ = ["HAVE_NUMBA", "JitHyCiMKernel", "JitSAKernel"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the CI default (no numba)
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        """No-op decorator: the kernels run interpreted (tests only)."""
        if args and callable(args[0]):
            return args[0]

        def decorate(function):
            return function

        return decorate


#: Tests flip this to run the compiled functions interpreted (numpy uint64
#: scalar arithmetic) on machines without numba; ``"auto"`` still treats the
#: backend as unavailable unless numba is importable.
_ALLOW_INTERPRETED = False

# PCG64's 128-bit LCG multiplier, split into 64-bit limbs.
_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_MULT_LO = np.uint64(0x4385DF649FCCF645)
_MASK32 = np.uint64(0xFFFFFFFF)
_TWO32 = np.uint64(0x100000000)
_SHIFT32 = np.uint64(32)
_ROT_SHIFT = np.uint64(58)
_SHIFT11 = np.uint64(11)
_C64 = np.uint64(64)
_C63 = np.uint64(63)
_ONE = np.uint64(1)
_ZERO = np.uint64(0)
#: ``Generator.random()`` scale: 2**-53.
_INV53 = 1.0 / 9007199254740992.0


# --------------------------------------------------------------------- #
# PCG64 + Generator draw pipeline on uint64 limbs
# --------------------------------------------------------------------- #
@njit(cache=False)
def _pcg_next64(s_hi, s_lo, i_hi, i_lo):
    """Advance one PCG64 state (two uint64 limbs) and emit its output."""
    # mulhi64(s_lo, MULT_LO) via 32-bit partial products.
    a_lo = s_lo & _MASK32
    a_hi = s_lo >> _SHIFT32
    b_lo = _MULT_LO & _MASK32
    b_hi = _MULT_LO >> _SHIFT32
    lo_lo = a_lo * b_lo
    hi_lo = a_hi * b_lo
    cross = (lo_lo >> _SHIFT32) + (hi_lo & _MASK32) + a_lo * b_hi
    carry = (hi_lo >> _SHIFT32) + (cross >> _SHIFT32) + a_hi * b_hi
    # state * MULT (mod 2**128) ...
    new_lo = s_lo * _MULT_LO
    new_hi = s_hi * _MULT_LO + s_lo * _MULT_HI + carry
    # ... + inc (mod 2**128).
    summed = new_lo + i_lo
    if summed < new_lo:
        new_hi = new_hi + _ONE
    new_hi = new_hi + i_hi
    # XSL-RR output permutation.
    rot = new_hi >> _ROT_SHIFT
    word = new_hi ^ summed
    out = (word >> rot) | (word << ((_C64 - rot) & _C63))
    return new_hi, summed, out


@njit(cache=False)
def _pcg_next32(s_hi, s_lo, i_hi, i_lo, has32, buffered):
    """PCG64's buffered 32-bit draw: low half first, high half parked."""
    if has32 != _ZERO:
        return s_hi, s_lo, _ZERO, buffered, buffered
    s_hi, s_lo, value = _pcg_next64(s_hi, s_lo, i_hi, i_lo)
    return s_hi, s_lo, _ONE, value >> _SHIFT32, value & _MASK32


@njit(cache=False)
def _pcg_random(s_hi, s_lo, i_hi, i_lo):
    """``Generator.random()``: top 53 bits of one 64-bit draw."""
    s_hi, s_lo, value = _pcg_next64(s_hi, s_lo, i_hi, i_lo)
    return s_hi, s_lo, (value >> _SHIFT11) * _INV53


@njit(cache=False)
def _pcg_integers(s_hi, s_lo, i_hi, i_lo, has32, buffered, bound):
    """``Generator.integers(0, bound)``: numpy's 32-bit Lemire sampler."""
    if bound <= _ONE:
        return s_hi, s_lo, has32, buffered, _ZERO
    s_hi, s_lo, has32, buffered, value = _pcg_next32(
        s_hi, s_lo, i_hi, i_lo, has32, buffered)
    product = value * bound
    leftover = product & _MASK32
    if leftover < bound:
        threshold = (_TWO32 - bound) % bound
        while leftover < threshold:
            s_hi, s_lo, has32, buffered, value = _pcg_next32(
                s_hi, s_lo, i_hi, i_lo, has32, buffered)
            product = value * bound
            leftover = product & _MASK32
    return s_hi, s_lo, has32, buffered, product >> _SHIFT32


@njit(cache=False)
def _metropolis_accept(step, temperature, draw):
    """Scalar Metropolis verdict, mirroring ``acceptance_probability``."""
    if step <= 0.0:
        return True
    if temperature <= 0.0:
        return False
    exponent = -step / temperature
    if exponent < -700.0:
        return False
    return draw < math.exp(exponent)


# --------------------------------------------------------------------- #
# Compiled sweep blocks
# --------------------------------------------------------------------- #
@njit(cache=False)
def _commit_flip(k, flip, sign, bit, current, loads, candidate,
                 num_constraints, is_sparse, symmetric, sym_indptr,
                 sym_indices, sym_data, field):
    """Apply replica ``k``'s accepted/drifting flip: bit, loads, field row."""
    current[k, flip] = 1.0 - bit
    for c in range(num_constraints):
        loads[k, c] = candidate[c]
    if is_sparse:
        for position in range(sym_indptr[flip], sym_indptr[flip + 1]):
            field[k, sym_indices[position]] += sign * sym_data[position]
    else:
        for j in range(field.shape[1]):
            field[k, j] += sign * symmetric[flip, j]


@njit(cache=False)
def _sa_block(start, num_iterations, moves_per_iteration, base, factors,
              is_sparse, symmetric, sym_indptr, sym_indices, sym_data, diag,
              current, field, current_energy, best, best_energy, loads,
              weights_t, bounds, num_constraints, num_feasible, num_skipped,
              num_accepted, rs_hi, rs_lo, ri_hi, ri_lo, r_has, r_buf,
              num_variables):
    num_replicas = current.shape[0]
    candidate = np.empty(num_constraints, dtype=np.float64)
    # Replicas are independent between exchange boundaries (each owns its
    # stream and its state rows), so looping them outermost is equivalent
    # to the reference lock-step order.
    for k in range(num_replicas):
        s_hi = rs_hi[k]
        s_lo = rs_lo[k]
        i_hi = ri_hi[k]
        i_lo = ri_lo[k]
        has32 = r_has[k]
        buffered = r_buf[k]
        for iteration in range(start, start + num_iterations):
            temperature = base[iteration] * factors[k]
            for _ in range(moves_per_iteration):
                s_hi, s_lo, has32, buffered, drawn = _pcg_integers(
                    s_hi, s_lo, i_hi, i_lo, has32, buffered, num_variables)
                flip = np.int64(drawn)
                bit = current[k, flip]
                sign = 1.0 - 2.0 * bit
                d = diag[flip]
                delta = sign * (d + field[k, flip] - 2.0 * d * bit)
                passed = True
                for c in range(num_constraints):
                    value = loads[k, c] + sign * weights_t[flip, c]
                    candidate[c] = value
                    if not (value <= bounds[c] + LOAD_TOLERANCE):
                        passed = False
                if not passed:
                    num_skipped[k] += 1
                    continue
                num_feasible[k] += 1
                s_hi, s_lo, draw = _pcg_random(s_hi, s_lo, i_hi, i_lo)
                if _metropolis_accept(delta, temperature, draw):
                    current_energy[k] += delta
                    _commit_flip(k, flip, sign, bit, current, loads,
                                 candidate, num_constraints, is_sparse,
                                 symmetric, sym_indptr, sym_indices,
                                 sym_data, field)
                    num_accepted[k] += 1
                    if current_energy[k] < best_energy[k]:
                        best_energy[k] = current_energy[k]
                        for j in range(current.shape[1]):
                            best[k, j] = current[k, j]
        rs_hi[k] = s_hi
        rs_lo[k] = s_lo
        r_has[k] = has32
        r_buf[k] = buffered


@njit(cache=False)
def _hycim_block(start, num_iterations, moves_per_iteration, base, factors,
                 is_sparse, symmetric, sym_indptr, sym_indices, sym_data,
                 diag, current, field, current_energy, raw_energy,
                 current_feasible, best, best_energy, best_feasible, loads,
                 weights_t, bounds, num_constraints, num_feasible,
                 num_skipped, num_accepted, rs_hi, rs_lo, ri_hi, ri_lo,
                 r_has, r_buf, num_variables):
    num_replicas = current.shape[0]
    candidate = np.empty(num_constraints, dtype=np.float64)
    for k in range(num_replicas):
        s_hi = rs_hi[k]
        s_lo = rs_lo[k]
        i_hi = ri_hi[k]
        i_lo = ri_lo[k]
        has32 = r_has[k]
        buffered = r_buf[k]
        for iteration in range(start, start + num_iterations):
            temperature = base[iteration] * factors[k]
            for _ in range(moves_per_iteration):
                s_hi, s_lo, has32, buffered, drawn = _pcg_integers(
                    s_hi, s_lo, i_hi, i_lo, has32, buffered, num_variables)
                flip = np.int64(drawn)
                bit = current[k, flip]
                sign = 1.0 - 2.0 * bit
                d = diag[flip]
                delta = sign * (d + field[k, flip] - 2.0 * d * bit)
                candidate_raw = raw_energy[k] + delta
                passed = True
                for c in range(num_constraints):
                    value = loads[k, c] + sign * weights_t[flip, c]
                    candidate[c] = value
                    if not (value <= bounds[c] + LOAD_TOLERANCE):
                        passed = False
                if not passed:
                    num_skipped[k] += 1
                    # Infeasible incumbents drift freely at energy 0
                    # (paper Eq. (6)), exactly as the fused kernel.
                    if not current_feasible[k]:
                        current_energy[k] = 0.0
                        raw_energy[k] = candidate_raw
                        _commit_flip(k, flip, sign, bit, current, loads,
                                     candidate, num_constraints, is_sparse,
                                     symmetric, sym_indptr, sym_indices,
                                     sym_data, field)
                    continue
                num_feasible[k] += 1
                step = candidate_raw - current_energy[k]
                s_hi, s_lo, draw = _pcg_random(s_hi, s_lo, i_hi, i_lo)
                if _metropolis_accept(step, temperature, draw):
                    current_energy[k] = candidate_raw
                    raw_energy[k] = candidate_raw
                    current_feasible[k] = True
                    _commit_flip(k, flip, sign, bit, current, loads,
                                 candidate, num_constraints, is_sparse,
                                 symmetric, sym_indptr, sym_indices,
                                 sym_data, field)
                    num_accepted[k] += 1
                    if (current_energy[k] < best_energy[k]
                            or not best_feasible[k]):
                        best_energy[k] = current_energy[k]
                        best_feasible[k] = True
                        for j in range(current.shape[1]):
                            best[k, j] = current[k, j]
        rs_hi[k] = s_hi
        rs_lo[k] = s_lo
        r_has[k] = has32
        r_buf[k] = buffered


def _require_jit(driver: LoopDriver) -> None:
    if not HAVE_NUMBA and not _ALLOW_INTERPRETED:
        raise KernelUnavailableError(
            "the numba backend needs numba installed "
            "(pip install repro[jit])")
    if driver._shared_rng is not None:
        raise KernelUnsupportedError(
            "shared-RNG mode draws in a different order than the compiled "
            "per-replica loop; it runs on the fused/reference backends")
    if type(driver.dynamics.acceptance) is not MetropolisRule:
        raise KernelUnsupportedError(
            f"acceptance rule {type(driver.dynamics.acceptance).__name__} "
            "has no compiled equivalent; the numba backend implements "
            "MetropolisRule exactly")


def _reject_equality(constraints) -> None:
    # The compiled blocks hard-code the ``load <= bound + tol`` compare;
    # equality constraints run on the (pure-NumPy) fused backend instead.
    for constraint in constraints or ():
        if isinstance(constraint, EqualityConstraint):
            raise KernelUnsupportedError(
                "equality constraints have no compiled feasibility compare; "
                "the numba backend covers linear inequalities only")


class _JitMixin:
    """Shared setup: ladder factors, dummy model arrays, stream marshalling."""

    backend = "numba"

    def _init_jit(self, driver: LoopDriver,
                  generators: Optional[Sequence[np.random.Generator]]) -> None:
        if self._num_variables > 2 ** 32:
            raise KernelUnsupportedError(
                "the compiled Lemire sampler covers bounds up to 2**32")
        # The same limb marshalling the fused replay uses (state layout,
        # buffered next32 fields, write-back); the compiled blocks mutate
        # its arrays in place.
        streams = generators if generators is not None else driver._generators
        self._streams = ReplayStreams(streams)
        self._jit_base = np.ascontiguousarray(driver._base, dtype=np.float64)
        factors = driver._factors
        self._jit_factors = (np.ones(self.current.shape[0])
                             if factors is None
                             else np.ascontiguousarray(factors,
                                                       dtype=np.float64))
        self._num_variables_u = np.uint64(self._num_variables)
        # The compiled blocks take both dense and CSR model arrays and
        # branch on ``is_sparse``; the unused side is a typed dummy.
        if self._sparse:
            self._jit_symmetric = np.zeros((1, 1))
        else:
            self._jit_symmetric = self._symmetric
            self._sym_indptr = np.zeros(1, dtype=np.int64)
            self._sym_indices = np.zeros(0, dtype=np.int64)
            self._sym_data = np.zeros(0, dtype=np.float64)


class JitSAKernel(_JitMixin, FusedSAKernel):
    """Compiled counterpart of :class:`~repro.kernels.fused.FusedSAKernel`."""

    def __init__(self, *, matrix, offset: float, driver: LoopDriver,
                 single_flip: bool, moves_per_iteration: int,
                 current: np.ndarray, current_energy: np.ndarray,
                 accept_filter=None, accept_filter_batch=None,
                 constraints: Optional[Sequence[InequalityConstraint]] = None,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        _require_jit(driver)
        _reject_equality(constraints)
        super().__init__(matrix=matrix, offset=offset, driver=driver,
                         single_flip=single_flip,
                         moves_per_iteration=moves_per_iteration,
                         current=current, current_energy=current_energy,
                         accept_filter=accept_filter,
                         accept_filter_batch=accept_filter_batch,
                         constraints=constraints)
        self._init_jit(driver, generators)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        streams = self._streams
        # Interpreted mode wraps uint64 in numpy scalars, which warns on
        # every (intentional) overflow; compiled mode never raises it.
        with np.errstate(over="ignore"):
            _sa_block(start_iteration, num_iterations,
                      self.moves_per_iteration, self._jit_base,
                      self._jit_factors, self._sparse, self._jit_symmetric,
                      self._sym_indptr, self._sym_indices, self._sym_data,
                      self._diag, self.current, self.field,
                      self.current_energy, self.best, self.best_energy,
                      self.loads, self._weights_t, self._bounds,
                      self._num_constraints, self.num_feasible,
                      self.num_skipped, self.num_accepted, streams.s_hi,
                      streams.s_lo, streams.i_hi, streams.i_lo,
                      streams.has32, streams.buffered,
                      self._num_variables_u)


class JitHyCiMKernel(_JitMixin, FusedHyCiMKernel):
    """Compiled counterpart of :class:`~repro.kernels.fused.FusedHyCiMKernel`."""

    def __init__(self, *, matrix, driver: LoopDriver, single_flip: bool,
                 moves_per_iteration: int,
                 constraints: Sequence[InequalityConstraint],
                 current: np.ndarray, current_energy: np.ndarray,
                 current_feasible: np.ndarray,
                 raw_energy: Optional[np.ndarray],
                 use_hardware_filters: bool = False,
                 use_crossbar: bool = False,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        _require_jit(driver)
        _reject_equality(constraints)
        super().__init__(matrix=matrix, driver=driver,
                         single_flip=single_flip,
                         moves_per_iteration=moves_per_iteration,
                         constraints=constraints, current=current,
                         current_energy=current_energy,
                         current_feasible=current_feasible,
                         raw_energy=raw_energy,
                         use_hardware_filters=use_hardware_filters,
                         use_crossbar=use_crossbar)
        self._init_jit(driver, generators)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        streams = self._streams
        with np.errstate(over="ignore"):
            _hycim_block(start_iteration, num_iterations,
                         self.moves_per_iteration, self._jit_base,
                         self._jit_factors, self._sparse,
                         self._jit_symmetric, self._sym_indptr,
                         self._sym_indices, self._sym_data, self._diag,
                         self.current, self.field, self.current_energy,
                         self.raw_energy, self.current_feasible, self.best,
                         self.best_energy, self.best_feasible, self.loads,
                         self._weights_t, self._bounds,
                         self._num_constraints, self.num_feasible,
                         self.num_skipped, self.num_accepted, streams.s_hi,
                         streams.s_lo, streams.i_hi, streams.i_lo,
                         streams.has32, streams.buffered,
                         self._num_variables_u)

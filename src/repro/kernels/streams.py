"""Vectorised PCG64 stream replay across the replica batch.

Profiling the fused kernels shows the sweep floor is not the ΔE arithmetic
but the per-replica Python draw loops behind it: ``LoopDriver.flip_indices``
calls each replica's ``Generator.integers`` one at a time, and
``MetropolisRule.accept`` loops replicas for the uniform draws.  At
``M = 32`` those two loops cost more than the whole incremental sweep.

:class:`ReplayStreams` removes them by replaying every replica's PCG64
stream in numpy uint64 lanes -- the same limb arithmetic the numba backend
compiles (see :mod:`repro.kernels.jit`), applied batch-wide.  Advancing the
128-bit LCG one draw at a time would still cost a dozen numpy calls per
proposal, so the replay exploits that the LCG is affine:

    state_j = MULT**j * state_0  +  (MULT**j - 1) / (MULT - 1) * inc

with both coefficients precomputed per lookahead depth ``j``, a lane's next
:data:`BUFFER_OUTPUTS` raw 64-bit outputs (XSL-RR applied to each
``state_j``) materialise in one vectorised pass, and the per-proposal cost
collapses to buffered reads.  On top of the raw outputs sit the exact
``Generator`` draw pipelines:

* ``Generator.random()`` as ``(next64() >> 11) * 2**-53``;
* ``Generator.integers(0, n)`` (``n <= 2**32``) as numpy's 32-bit Lemire
  bounded sampler over PCG64's *buffered* ``next32`` -- low half of a 64-bit
  draw first, high half parked per lane (``has_uint32`` / ``uinteger``).

Each lane advances exactly as its ``Generator`` object would -- lanes
consume at different rates (feasibility-dependent uniforms, Lemire
rejections) and refill independently from their own jumped states -- so the
draws are bit-identical to the reference engine's, and :meth:`write_back`
leaves the ``Generator`` objects exactly where a reference run would have.

:func:`metropolis_decisions` vectorises the acceptance rule.  ``np.exp``
and ``math.exp`` may disagree in the last ulp, so any draw landing within a
few ulps of the vectorised probability is re-judged through the scalar
:func:`~repro.dynamics.acceptance.acceptance_probability` -- decisions stay
bit-identical to :class:`~repro.dynamics.acceptance.MetropolisRule` while
the re-judge triggers with probability ~1e-15 per draw.

Eligibility (:func:`try_replay_streams`): per-replica mode only (shared-RNG
draws are already vectorised), plain :class:`MetropolisRule` acceptance,
PCG64 bit generators, ``n <= 2**32``.  Anything else returns ``None`` and
the fused kernels keep drawing through the :class:`LoopDriver`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamics.acceptance import MetropolisRule, acceptance_probability
from repro.dynamics.driver import LoopDriver
from repro.kernels.base import KernelUnsupportedError

__all__ = ["ReplayStreams", "metropolis_decisions", "try_replay_streams"]

#: PCG64's 128-bit LCG multiplier.
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK64 = (1 << 64) - 1
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_ROT_SHIFT = np.uint64(58)
_SHIFT11 = np.uint64(11)
_C64 = np.uint64(64)
_C63 = np.uint64(63)
#: ``Generator.random()`` scale: 2**-53.
_INV53 = 1.0 / 9007199254740992.0

#: Raw 64-bit outputs generated ahead per lane and refill.
BUFFER_OUTPUTS = 64

#: Largest ``integers`` bound the 32-bit Lemire sampler covers.
MAX_LEMIRE_BOUND = 2 ** 32

#: Draws within this relative distance of the vectorised probability are
#: re-judged with the scalar rule (``np.exp`` vs ``math.exp`` last-ulp
#: disagreement is far inside this margin).
_BORDERLINE_RTOL = 8e-16


def _mulhi64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of ``a * b`` via 32-bit partial products."""
    a_lo = a & _MASK32
    a_hi = a >> _SHIFT32
    b_lo = b & _MASK32
    b_hi = b >> _SHIFT32
    lo_lo = a_lo * b_lo
    hi_lo = a_hi * b_lo
    cross = (lo_lo >> _SHIFT32) + (hi_lo & _MASK32) + a_lo * b_hi
    return (hi_lo >> _SHIFT32) + (cross >> _SHIFT32) + a_hi * b_hi


def _mul128(a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.ndarray,
            b_lo: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``a * b mod 2**128`` on 64-bit limb arrays (broadcasting)."""
    lo = a_lo * b_lo
    hi = _mulhi64(a_lo, b_lo) + a_lo * b_hi + a_hi * b_lo
    return hi, lo


def _split(value: int) -> Tuple[np.uint64, np.uint64]:
    """A 128-bit Python int as (hi, lo) uint64 limbs."""
    return np.uint64((value >> 64) & _MASK64), np.uint64(value & _MASK64)


def _jump_tables() -> Tuple[np.ndarray, ...]:
    """``MULT**j`` and ``(MULT**j - 1) / (MULT - 1)`` for each lookahead.

    ``state_j = mult_j * state_0 + incc_j * inc  (mod 2**128)``: the j-step
    jump of the LCG, exact because the coefficients satisfy
    ``mult_j = mult_{j-1} * MULT`` and ``incc_j = incc_{j-1} * MULT + 1``.
    """
    mult_hi = np.empty(BUFFER_OUTPUTS, dtype=np.uint64)
    mult_lo = np.empty(BUFFER_OUTPUTS, dtype=np.uint64)
    incc_hi = np.empty(BUFFER_OUTPUTS, dtype=np.uint64)
    incc_lo = np.empty(BUFFER_OUTPUTS, dtype=np.uint64)
    mult, incc = 1, 0
    mask128 = (1 << 128) - 1
    for j in range(BUFFER_OUTPUTS):
        mult = (mult * _PCG_MULT) & mask128
        incc = (incc * _PCG_MULT + 1) & mask128
        mult_hi[j], mult_lo[j] = _split(mult)
        incc_hi[j], incc_lo[j] = _split(incc)
    return mult_hi, mult_lo, incc_hi, incc_lo


_JUMP_MULT_HI, _JUMP_MULT_LO, _JUMP_INCC_HI, _JUMP_INCC_LO = _jump_tables()


class ReplayStreams:
    """Per-replica PCG64 states as uint64 lanes, advanced in lock step.

    Raises :class:`~repro.kernels.base.KernelUnsupportedError` if any
    generator is not PCG64-backed.
    """

    def __init__(self, generators: Sequence[np.random.Generator]) -> None:
        self.generators = list(generators)
        count = len(self.generators)
        self.s_hi = np.empty(count, dtype=np.uint64)
        self.s_lo = np.empty(count, dtype=np.uint64)
        self.i_hi = np.empty(count, dtype=np.uint64)
        self.i_lo = np.empty(count, dtype=np.uint64)
        self.has32 = np.empty(count, dtype=np.uint64)
        self.buffered = np.empty(count, dtype=np.uint64)
        self._all = np.arange(count)
        for k, generator in enumerate(self.generators):
            state = generator.bit_generator.state
            if state.get("bit_generator") != "PCG64":
                raise KernelUnsupportedError(
                    f"replica {k} uses bit generator "
                    f"{state.get('bit_generator')!r}; stream replay covers "
                    "PCG64 only")
            raw = state["state"]["state"]
            inc = state["state"]["inc"]
            self.s_hi[k] = (raw >> 64) & _MASK64
            self.s_lo[k] = raw & _MASK64
            self.i_hi[k] = (inc >> 64) & _MASK64
            self.i_lo[k] = inc & _MASK64
            self.has32[k] = int(state["has_uint32"])
            self.buffered[k] = int(state["uinteger"])
        # Lookahead buffers: per lane, the raw outputs of the next
        # BUFFER_OUTPUTS steps and the state each step lands on.
        # ``s_hi``/``s_lo`` stay the state *before* slot 0 of the buffer;
        # ``_pos[k]`` is the next unconsumed slot.
        self._out = np.empty((count, BUFFER_OUTPUTS), dtype=np.uint64)
        self._st_hi = np.empty((count, BUFFER_OUTPUTS), dtype=np.uint64)
        self._st_lo = np.empty((count, BUFFER_OUTPUTS), dtype=np.uint64)
        self._pos = np.zeros(count, dtype=np.intp)
        self._refill(self._all)

    # ------------------------------------------------------------------ #
    # Raw output stream (lane-subset aware, buffered lookahead)
    # ------------------------------------------------------------------ #
    def _refill(self, lanes: np.ndarray) -> None:
        """Jump the listed lanes' buffers forward from their base states."""
        s_hi = self.s_hi[lanes, None]
        s_lo = self.s_lo[lanes, None]
        hi_a, lo_a = _mul128(_JUMP_MULT_HI, _JUMP_MULT_LO, s_hi, s_lo)
        hi_b, lo_b = _mul128(_JUMP_INCC_HI, _JUMP_INCC_LO,
                             self.i_hi[lanes, None], self.i_lo[lanes, None])
        lo = lo_a + lo_b
        hi = hi_a + hi_b + (lo < lo_a)
        self._st_hi[lanes] = hi
        self._st_lo[lanes] = lo
        # XSL-RR output permutation of every jumped state.
        rot = hi >> _ROT_SHIFT
        word = hi ^ lo
        self._out[lanes] = (word >> rot) | (word << ((_C64 - rot) & _C63))

    def _next64(self, lanes: np.ndarray) -> np.ndarray:
        """The listed lanes' next raw 64-bit outputs (refilling as needed)."""
        positions = self._pos[lanes]
        depleted = positions == BUFFER_OUTPUTS
        if depleted.any():
            exhausted = lanes[depleted]
            self.s_hi[exhausted] = self._st_hi[exhausted, -1]
            self.s_lo[exhausted] = self._st_lo[exhausted, -1]
            self._refill(exhausted)
            self._pos[exhausted] = 0
            positions = self._pos[lanes]
        self._pos[lanes] = positions + 1
        return self._out[lanes, positions]

    # ------------------------------------------------------------------ #
    # Generator draw pipelines
    # ------------------------------------------------------------------ #
    def _next32(self, lanes: np.ndarray) -> np.ndarray:
        """Buffered 32-bit draws: parked high halves first, else a next64.

        Lanes usually stay parity-synchronised (uniform draws bypass the
        32-bit buffer and Lemire rejections are rare), so the all-parked /
        all-fresh fast paths cover almost every call.
        """
        parked = self.has32[lanes] != 0
        if not parked.any():
            value = self._next64(lanes)
            self.buffered[lanes] = value >> _SHIFT32
            self.has32[lanes] = 1
            return value & _MASK32
        if parked.all():
            out = self.buffered[lanes]
            self.has32[lanes] = 0
            return out
        out = np.empty(lanes.shape[0], dtype=np.uint64)
        consumed = lanes[parked]
        out[parked] = self.buffered[consumed]
        self.has32[consumed] = 0
        fresh = lanes[~parked]
        value = self._next64(fresh)
        out[~parked] = value & _MASK32
        self.buffered[fresh] = value >> _SHIFT32
        self.has32[fresh] = 1
        return out

    def integers(self, bound: int) -> np.ndarray:
        """``Generator.integers(0, bound)`` for every lane (32-bit Lemire)."""
        if bound <= 1:
            # numpy consumes no draw for an empty/singleton range.
            return np.zeros(self._all.shape[0], dtype=np.intp)
        wide = np.uint64(bound)
        product = self._next32(self._all) * wide
        # ``threshold < bound``, so numpy's ``leftover < bound`` pre-check
        # before computing the threshold never changes the verdict.
        threshold = np.uint64((MAX_LEMIRE_BOUND - bound) % bound)
        rejected = (product & _MASK32) < threshold
        if rejected.any():
            retry = np.flatnonzero(rejected)
            while retry.size:
                redrawn = self._next32(retry) * wide
                product[retry] = redrawn
                retry = retry[(redrawn & _MASK32) < threshold]
        return (product >> _SHIFT32).astype(np.intp)

    def uniforms(self, lanes: np.ndarray) -> np.ndarray:
        """``Generator.random()`` for the listed lanes."""
        return (self._next64(lanes) >> _SHIFT11) * _INV53

    def write_back(self) -> None:
        """Restore the advanced states into the ``Generator`` objects."""
        for k, generator in enumerate(self.generators):
            position = self._pos[k]
            if position == 0:
                hi, lo = int(self.s_hi[k]), int(self.s_lo[k])
            else:
                hi = int(self._st_hi[k, position - 1])
                lo = int(self._st_lo[k, position - 1])
            state = generator.bit_generator.state
            state["state"]["state"] = (hi << 64) | lo
            state["has_uint32"] = int(self.has32[k])
            state["uinteger"] = int(self.buffered[k])
            generator.bit_generator.state = state


def metropolis_decisions(step: np.ndarray,
                         temperatures: Union[float, np.ndarray],
                         draws: np.ndarray) -> np.ndarray:
    """Vectorised Metropolis verdicts, bit-identical to the scalar rule.

    ``temperatures`` is a scalar (flat batch) or already gathered to the
    same shape as ``step`` (ladder rows indexed by the listed replicas).
    """
    if isinstance(temperatures, np.ndarray):
        positive = temperatures > 0.0
        exponent = np.where(positive,
                            -step / np.where(positive, temperatures, 1.0),
                            -np.inf)
    elif temperatures <= 0.0:
        return step <= 0.0
    else:
        exponent = -step / temperatures
    # Exponents past the double range underflow to exactly 0, matching the
    # scalar rule; flushing is intended, so mask the underflow flag.
    with np.errstate(under="ignore"):
        probability = np.where(exponent < -700.0, 0.0,
                               np.exp(np.minimum(exponent, 0.0)))
    decisions = (step <= 0.0) | (draws < probability)
    # A draw within a few ulps of the probability could be decided by the
    # np.exp-vs-math.exp last ulp; re-judge those through the scalar rule.
    borderline = (np.abs(draws - probability)
                  <= _BORDERLINE_RTOL * probability) & (step > 0.0)
    if borderline.any():  # pragma: no cover - ~1e-15 per draw
        for index in np.flatnonzero(borderline):
            temperature = (float(temperatures[index])
                           if isinstance(temperatures, np.ndarray)
                           else float(temperatures))
            decisions[index] = draws[index] < acceptance_probability(
                float(step[index]), temperature)
    return decisions


def try_replay_streams(driver: LoopDriver,
                       generators: Optional[Sequence[np.random.Generator]],
                       num_variables: int) -> Optional[ReplayStreams]:
    """A :class:`ReplayStreams` when the configuration is replayable.

    ``None`` means the kernel should keep drawing through the driver: shared
    RNG (already vectorised there), a custom acceptance rule (subclassing
    :class:`MetropolisRule` counts -- its override must be honoured), a
    non-PCG64 bit generator, or a flip bound past the 32-bit Lemire sampler.
    """
    if generators is None or driver._shared_rng is not None:
        return None
    if type(driver.dynamics.acceptance) is not MetropolisRule:
        return None
    if num_variables > MAX_LEMIRE_BOUND:
        return None
    try:
        return ReplayStreams(generators)
    except KernelUnsupportedError:
        return None

"""Reference sweep kernels: the engines' original NumPy inner loops.

The loop bodies in this module are the exact code
:class:`~repro.batched.engine.BatchedSimulatedAnnealer` and
:class:`~repro.batched.engine.BatchedHyCiMSolver` inlined before the kernel
layer existed -- moved, not rewritten -- so per-seed trajectories are
byte-identical to every release since PR 2 (pinned by
``tests/batched/test_golden_trajectories.py`` and the scalar-parity suite).
One full-batch operation per proposal: an O(M*n) candidate copy, an O(M*n)
delta gather (or batched crossbar MVM), one batched filter pass.

This backend supports every engine configuration -- hardware or software
evaluation, any move generator, noisy filters, device axes, both RNG
topologies -- which is why it is the default and the fallback of
``kernel="auto"``.  Sparse (CSR) matrices run through the sparse-aware
:mod:`repro.batched.kernels` primitives with identical verdicts and
integer-exact energies, at O(M * nnz-per-row) per proposal.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.batched.kernels import (
    batched_energies,
    batched_energy_delta,
    symmetrized_matrix,
)
from repro.dynamics.driver import LoopDriver
from repro.dynamics.moves import MoveGenerator
from repro.kernels.base import SweepKernel

__all__ = ["ReferenceHyCiMKernel", "ReferenceSAKernel"]

#: Per-row feasibility predicate (scalar fallback).
RowFilter = Callable[[np.ndarray], bool]
#: Vectorised feasibility predicate over an ``(M, n)`` batch.
BatchFilter = Callable[[np.ndarray], np.ndarray]


def _apply_filters(candidates: np.ndarray,
                   accept_filter: Optional[RowFilter],
                   accept_filter_batch: Optional[BatchFilter]) -> np.ndarray:
    """Feasibility verdicts for a candidate batch (vectorised when possible)."""
    if accept_filter_batch is not None:
        return np.asarray(accept_filter_batch(candidates), dtype=bool)
    if accept_filter is not None:
        return np.array([bool(accept_filter(row)) for row in candidates],
                        dtype=bool)
    return np.ones(candidates.shape[0], dtype=bool)


class ReferenceSAKernel(SweepKernel):
    """The batched SA sweep, exactly as the engine inlined it.

    Parameters mirror what the engine's loop closed over: the QUBO data,
    the driver (temperatures + draws + acceptance), the move generator and
    the filter hooks.  ``current`` is adopted (not copied) -- the engine
    hands over ownership of the travelling state.
    """

    backend = "reference"

    def __init__(self, *, matrix: np.ndarray, offset: float,
                 driver: LoopDriver, move_generator: MoveGenerator,
                 single_flip: bool, moves_per_iteration: int,
                 current: np.ndarray, current_energy: np.ndarray,
                 accept_filter: Optional[RowFilter] = None,
                 accept_filter_batch: Optional[BatchFilter] = None) -> None:
        self.matrix = matrix
        self.offset = float(offset)
        self.driver = driver
        self.move_generator = move_generator
        self.single_flip = bool(single_flip)
        self.moves_per_iteration = int(moves_per_iteration)
        self.accept_filter = accept_filter
        self.accept_filter_batch = accept_filter_batch

        self.current = current
        self.current_energy = current_energy
        self.best = current.copy()
        self.best_energy = current_energy.copy()
        num_replicas = current.shape[0]
        self.num_feasible = np.zeros(num_replicas, dtype=int)
        self.num_skipped = np.zeros(num_replicas, dtype=int)
        self.num_accepted = np.zeros(num_replicas, dtype=int)
        self._rows = np.arange(num_replicas)
        self._num_variables = self.matrix.shape[0]
        self._symmetric = (symmetrized_matrix(self.matrix) if self.single_flip
                           else None)
        # Reused single-flip candidate buffer: refreshing it with np.copyto
        # is value-identical to a fresh current.copy() per proposal but
        # spares the O(M*n) allocation in the hot loop.
        self._candidates = (np.empty_like(current) if self.single_flip
                            else None)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        current = self.current
        current_energy = self.current_energy
        rows = self._rows
        n = self._num_variables
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                if self.single_flip:
                    # Same stream consumption as SingleFlipMove.propose: one
                    # integer draw per replica (one vectorised draw from the
                    # shared stream in chip-faithful mode).
                    flips = driver.flip_indices(n)
                    candidates = self._candidates
                    np.copyto(candidates, current)
                    candidates[rows, flips] = 1.0 - candidates[rows, flips]
                else:
                    flips = None
                    candidates = driver.propose(self.move_generator, current)

                passed = _apply_filters(candidates, self.accept_filter,
                                        self.accept_filter_batch)
                self.num_skipped[~passed] += 1
                feasible_idx = np.flatnonzero(passed)
                if feasible_idx.size == 0:
                    continue
                self.num_feasible[feasible_idx] += 1

                if self.single_flip:
                    delta = batched_energy_delta(
                        self.matrix, current[feasible_idx],
                        flips[feasible_idx], symmetric=self._symmetric)
                    candidate_energy = current_energy[feasible_idx] + delta
                else:
                    candidate_energy = batched_energies(
                        self.matrix, candidates[feasible_idx], self.offset)
                    delta = candidate_energy - current_energy[feasible_idx]

                accepted = driver.metropolis(delta, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    current[accepted_idx] = candidates[accepted_idx]
                    current_energy[accepted_idx] = candidate_energy[accepted]
                    self.num_accepted[accepted_idx] += 1
                    improved = accepted_idx[
                        current_energy[accepted_idx]
                        < self.best_energy[accepted_idx]]
                    self.best_energy[improved] = current_energy[improved]
                    self.best[improved] = current[improved]

    def swap_arrays(self) -> tuple:
        return (self.current, self.current_energy)


class ReferenceHyCiMKernel(SweepKernel):
    """The batched HyCiM sweep, exactly as the engine inlined it.

    The engine stays the owner of the hardware stack: ``feasible_batch``
    and ``energies`` are its bound evaluation primitives (CiM filters /
    crossbar, device axes, scalar fallbacks for noisy filters), so this
    kernel runs every hardware configuration the engine does.
    ``use_delta`` enables the software-mode single-flip incremental path
    over the raw QUBO value (``raw_energy``), as before.
    """

    backend = "reference"

    def __init__(self, *, num_variables: int, driver: LoopDriver,
                 move_generator: MoveGenerator, single_flip: bool,
                 moves_per_iteration: int,
                 feasible_batch: Callable[[np.ndarray], np.ndarray],
                 energies: Callable[[np.ndarray, np.ndarray], np.ndarray],
                 current: np.ndarray, current_energy: np.ndarray,
                 current_feasible: np.ndarray,
                 use_delta: bool = False,
                 matrix: Optional[np.ndarray] = None,
                 raw_energy: Optional[np.ndarray] = None) -> None:
        self.driver = driver
        self.move_generator = move_generator
        self.single_flip = bool(single_flip)
        self.moves_per_iteration = int(moves_per_iteration)
        self.feasible_batch = feasible_batch
        self.energies = energies
        self.use_delta = bool(use_delta)
        self.matrix = matrix
        self.raw_energy = raw_energy

        self.current = current
        self.current_energy = current_energy
        self.current_feasible = current_feasible
        self.best = current.copy()
        self.best_energy = current_energy.copy()
        self.best_feasible = current_feasible.copy()
        num_replicas = current.shape[0]
        self.num_feasible = np.zeros(num_replicas, dtype=int)
        self.num_skipped = np.zeros(num_replicas, dtype=int)
        self.num_accepted = np.zeros(num_replicas, dtype=int)
        self._rows = np.arange(num_replicas)
        self._num_variables = int(num_variables)
        self._symmetric = (symmetrized_matrix(matrix)
                           if self.use_delta else None)
        # Reused single-flip candidate buffer (see ReferenceSAKernel).
        self._candidates = (np.empty_like(current) if self.single_flip
                            else None)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        current = self.current
        current_energy = self.current_energy
        current_feasible = self.current_feasible
        raw_energy = self.raw_energy
        rows = self._rows
        n = self._num_variables
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                if self.single_flip:
                    flips = driver.flip_indices(n)
                    candidates = self._candidates
                    np.copyto(candidates, current)
                    candidates[rows, flips] = 1.0 - candidates[rows, flips]
                else:
                    candidates = driver.propose(self.move_generator, current)

                if self.use_delta:
                    candidate_raw = raw_energy + batched_energy_delta(
                        self.matrix, current, flips,
                        symmetric=self._symmetric)

                # Step 1: inequality evaluation, one batched filter pass.
                candidate_feasible = self.feasible_batch(candidates)
                infeasible_idx = np.flatnonzero(~candidate_feasible)
                self.num_skipped[infeasible_idx] += 1
                # Replicas whose incumbent is itself infeasible drift freely
                # at energy 0 (paper Eq. (6)), as in the scalar solver.
                drifting = infeasible_idx[~current_feasible[infeasible_idx]]
                if drifting.size:
                    current[drifting] = candidates[drifting]
                    current_energy[drifting] = 0.0
                    if self.use_delta:
                        raw_energy[drifting] = candidate_raw[drifting]

                feasible_idx = np.flatnonzero(candidate_feasible)
                if feasible_idx.size == 0:
                    continue
                self.num_feasible[feasible_idx] += 1

                # Step 2: QUBO computation for all feasible candidates in one
                # batched crossbar MVM (or BLAS product in software mode).
                if self.use_delta:
                    candidate_energy = candidate_raw[feasible_idx]
                else:
                    candidate_energy = self.energies(candidates[feasible_idx],
                                                     feasible_idx)

                # Step 3: per-replica Metropolis acceptance.
                delta = candidate_energy - current_energy[feasible_idx]
                accepted = driver.metropolis(delta, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    current[accepted_idx] = candidates[accepted_idx]
                    current_energy[accepted_idx] = candidate_energy[accepted]
                    if self.use_delta:
                        raw_energy[accepted_idx] = candidate_energy[accepted]
                    current_feasible[accepted_idx] = True
                    self.num_accepted[accepted_idx] += 1
                    improved = accepted_idx[
                        (current_energy[accepted_idx]
                         < self.best_energy[accepted_idx])
                        | ~self.best_feasible[accepted_idx]]
                    self.best_energy[improved] = current_energy[improved]
                    self.best[improved] = current[improved]
                    self.best_feasible[improved] = True

    def swap_arrays(self) -> tuple:
        arrays = [self.current, self.current_energy, self.current_feasible]
        if self.use_delta:
            arrays.append(self.raw_energy)
        return tuple(arrays)

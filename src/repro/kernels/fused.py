"""Fused sweep kernels: incremental-ΔE annealing with local-field caches.

The reference kernels pay one O(M·n) candidate copy plus an O(M·n) matmul /
gather per proposal.  The kernels here maintain, per replica:

* a **local-field cache** ``field = x @ (Q + Q^T)`` so the single-flip
  energy delta is an O(M) gather -- ``ΔE_k = (1-2b)(diag_i + field[k,i]
  - 2 diag_i b)`` with ``b = x_k[i]`` -- and an accepted flip costs one
  row update, O(n) dense or O(degree) CSR;
* **running constraint loads** ``load[k,c] = w_c · x_k`` so linear
  feasibility is an O(M·C) compare instead of a batched matvec per
  constraint (inequality verdicts use the same ``bound + 1e-9`` tolerance
  as :func:`repro.batched.kernels.batched_inequality_verdicts`; equality
  verdicts the ``|lhs - bound| <= 1e-9`` of
  :meth:`EqualityConstraint.is_satisfied`).

``run_block`` fuses K iterations per Python call without materialising a
candidate batch at all.  RNG parity is preserved draw for draw: in the
common per-replica configuration (PCG64 generators, plain Metropolis
acceptance) the kernel replays every replica's stream vectorised across the
batch (:mod:`repro.kernels.streams`), consuming bit-identical draws without
the per-replica Python loops of :meth:`LoopDriver.flip_indices` /
:meth:`LoopDriver.metropolis`; any other configuration falls back to those
driver calls.  Either way the streams advance exactly as the reference
kernel's and only the ΔE arithmetic (summation order) differs -- which on
the integer-valued conformance families means trajectories are *exactly*
equal, and on float data tolerance-equal.

Configurations a fused kernel cannot express -- generic move generators,
opaque feasibility callables, hardware-mode evaluation, noisy filters --
raise :class:`~repro.kernels.base.KernelUnsupportedError` at construction;
``kernel="auto"`` then falls back to the reference backend.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.constraints import (
    EqualityConstraint,
    InequalityConstraint,
    LinearConstraint,
)
from repro.core.sparse import is_sparse_matrix, symmetrized_matrix
from repro.dynamics.driver import LoopDriver
from repro.kernels.base import KernelUnsupportedError, SweepKernel
from repro.kernels.streams import metropolis_decisions, try_replay_streams

__all__ = ["FusedHyCiMKernel", "FusedSAKernel"]

#: Feasibility tolerance of the scalar/batched inequality verdict paths.
LOAD_TOLERANCE = 1e-9


def _csr_row_entries(indptr: np.ndarray, indices: np.ndarray,
                     data: np.ndarray, rows: np.ndarray
                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columns/values of the selected CSR rows, flattened, plus row lengths."""
    starts = indptr[rows]
    counts = indptr[rows + 1] - starts
    total = int(counts.sum())
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    positions = np.repeat(starts, counts) + offsets
    return indices[positions], data[positions], counts


class _FusedCore(SweepKernel):
    """Shared state machine: field cache, constraint loads, flip application."""

    backend = "fused"

    def _init_model(self, matrix, current: np.ndarray,
                    constraints: Sequence[LinearConstraint]) -> None:
        self._sparse = is_sparse_matrix(matrix)
        symmetric = symmetrized_matrix(matrix)
        if self._sparse:
            self._diag = np.asarray(matrix.diagonal(), dtype=float)
            self._sym_indptr = np.asarray(symmetric.indptr, dtype=np.int64)
            self._sym_indices = np.asarray(symmetric.indices, dtype=np.int64)
            self._sym_data = np.asarray(symmetric.data, dtype=float)
            self._symmetric = None
        else:
            self._diag = np.ascontiguousarray(np.diagonal(matrix),
                                              dtype=float).copy()
            self._symmetric = np.ascontiguousarray(symmetric, dtype=float)
        #: (M, n) local fields -- row k is ``current[k] @ (Q + Q^T)``.
        self.field = np.ascontiguousarray(np.asarray(current @ symmetric,
                                                     dtype=float))
        self._num_variables = int(self._diag.shape[0])
        self._rows = np.arange(current.shape[0])
        self._init_constraints(current, constraints)

    def _init_constraints(self, current: np.ndarray,
                          constraints: Sequence[LinearConstraint]) -> None:
        """Running-load state shared with the packed backend's model."""
        weights = [np.asarray(c.weight_vector, dtype=float)
                   for c in constraints]
        self._num_constraints = len(weights)
        if weights:
            #: (n, C) constraint weights; (M, C) running loads.
            self._weights_t = np.ascontiguousarray(np.stack(weights, axis=1))
            self._bounds = np.array([float(c.bound) for c in constraints])
            self.loads = np.ascontiguousarray(current @ self._weights_t)
        else:
            self._weights_t = np.zeros((self._num_variables, 0))
            self._bounds = np.zeros(0)
            self.loads = np.zeros((current.shape[0], 0))
        self._bounds_tol = self._bounds + LOAD_TOLERANCE
        self._equality = np.array(
            [isinstance(c, EqualityConstraint) for c in constraints],
            dtype=bool)
        self._has_equality = bool(self._equality.any())

    def _propose(self, driver: LoopDriver
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """One flip per replica: indices, old bits, flip signs, energy deltas."""
        if self._streams is not None:
            flips = self._streams.integers(self._num_variables)
        else:
            flips = driver.flip_indices(self._num_variables)
        bits = self.current[self._rows, flips]
        signs = 1.0 - 2.0 * bits
        diag = self._diag[flips]
        delta = signs * (diag + self.field[self._rows, flips]
                         - 2.0 * diag * bits)
        return flips, bits, signs, delta

    def _accept(self, driver: LoopDriver, step: np.ndarray,
                replica_indices: np.ndarray, iteration: int) -> np.ndarray:
        """Metropolis verdicts for the listed replicas, replayed or drawn."""
        if self._streams is None:
            return driver.metropolis(step, replica_indices, iteration)
        draws = self._streams.uniforms(replica_indices)
        temperatures = driver.temperature(iteration)
        if isinstance(temperatures, np.ndarray):
            temperatures = temperatures[replica_indices]
        return metropolis_decisions(step, temperatures, draws)

    def finalize(self) -> None:
        if self._streams is not None:
            self._streams.write_back()

    def _candidate_loads(self, flips: np.ndarray,
                         signs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Post-flip constraint loads and their feasibility verdicts."""
        candidate = self.loads + signs[:, None] * self._weights_t[flips]
        if self._has_equality:
            ok = np.where(self._equality,
                          np.abs(candidate - self._bounds) <= LOAD_TOLERANCE,
                          candidate <= self._bounds_tol)
            passed = ok.all(axis=1)
        elif self._num_constraints == 1:
            passed = candidate[:, 0] <= self._bounds_tol[0]
        else:
            passed = (candidate <= self._bounds_tol).all(axis=1)
        return candidate, passed

    def _apply_flips(self, replicas: np.ndarray, flips: np.ndarray,
                     bits: np.ndarray, signs: np.ndarray,
                     candidate_loads: Optional[np.ndarray]) -> None:
        """Commit the flips of the listed replicas: bits, fields, loads."""
        chosen = flips[replicas]
        self.current[replicas, chosen] = 1.0 - bits[replicas]
        if candidate_loads is not None and self._num_constraints:
            self.loads[replicas] = candidate_loads[replicas]
        chosen_signs = signs[replicas]
        if self._sparse:
            cols, values, counts = _csr_row_entries(
                self._sym_indptr, self._sym_indices, self._sym_data, chosen)
            # One CSR row per (distinct) replica and unique columns within a
            # row make the flat indices unique, so an in-place fancy add is
            # exact (no np.add.at needed).
            flat = np.repeat(replicas, counts) * self._num_variables + cols
            self.field.reshape(-1)[flat] += np.repeat(chosen_signs,
                                                      counts) * values
        else:
            # Split by flip direction: adding/subtracting the raw symmetric
            # rows is bit-identical to scaling by the +-1 signs and saves a
            # full multiply pass over the gathered rows.
            raising = chosen_signs > 0
            if raising.any():
                self.field[replicas[raising]] += self._symmetric[
                    chosen[raising]]
            if not raising.all():
                lowering = ~raising
                self.field[replicas[lowering]] -= self._symmetric[
                    chosen[lowering]]


class FusedSAKernel(_FusedCore):
    """Fused counterpart of :class:`~repro.kernels.reference.ReferenceSAKernel`.

    Requires single-flip moves and filters expressible as linear inequality
    constraints (``constraints``); an opaque ``accept_filter`` /
    ``accept_filter_batch`` without its linear form is unsupported.
    """

    def __init__(self, *, matrix, offset: float, driver: LoopDriver,
                 single_flip: bool, moves_per_iteration: int,
                 current: np.ndarray, current_energy: np.ndarray,
                 accept_filter=None, accept_filter_batch=None,
                 constraints: Optional[Sequence[LinearConstraint]] = None,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        if not single_flip:
            raise KernelUnsupportedError(
                "fused kernels require single-flip moves; generic move "
                "generators run on the reference backend")
        if accept_filter is not None and accept_filter_batch is None:
            # With a batch filter present the row filter is never consulted
            # (the reference kernel's precedence), so it need not be linear.
            raise KernelUnsupportedError(
                "fused kernels cannot evaluate an opaque per-row "
                "accept_filter incrementally")
        if accept_filter_batch is not None and constraints is None:
            raise KernelUnsupportedError(
                "accept_filter_batch has no linear-inequality form "
                "(feasibility_constraints not provided); fused kernels need "
                "one to maintain incremental constraint loads")
        effective = (tuple(constraints)
                     if accept_filter_batch is not None else ())
        for constraint in effective:
            if not isinstance(constraint,
                              (InequalityConstraint, EqualityConstraint)):
                raise KernelUnsupportedError(
                    f"constraint {type(constraint).__name__} is not a linear "
                    "inequality or equality; fused kernels cannot track it "
                    "incrementally")
        self.driver = driver
        self.moves_per_iteration = int(moves_per_iteration)
        self.current = current
        self.current_energy = current_energy
        self.best = current.copy()
        self.best_energy = current_energy.copy()
        num_replicas = current.shape[0]
        self.num_feasible = np.zeros(num_replicas, dtype=int)
        self.num_skipped = np.zeros(num_replicas, dtype=int)
        self.num_accepted = np.zeros(num_replicas, dtype=int)
        self._init_model(matrix, current, effective)
        self._streams = try_replay_streams(driver, generators,
                                           self._num_variables)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                flips, bits, signs, delta = self._propose(driver)
                if self._num_constraints:
                    candidate_loads, passed = self._candidate_loads(flips,
                                                                    signs)
                    self.num_skipped += ~passed
                    self.num_feasible += passed
                    feasible_idx = np.flatnonzero(passed)
                    if feasible_idx.size == 0:
                        continue
                    step = delta[feasible_idx]
                else:
                    candidate_loads = None
                    feasible_idx = self._rows
                    self.num_feasible += 1
                    step = delta

                accepted = self._accept(driver, step, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    # current_energy[f] + delta then assign, as the reference
                    # does, equals this in-place add entry for entry.
                    self.current_energy[accepted_idx] += step[accepted]
                    self._apply_flips(accepted_idx, flips, bits, signs,
                                      candidate_loads)
                    self.num_accepted[accepted_idx] += 1
                    energies = self.current_energy[accepted_idx]
                    better = energies < self.best_energy[accepted_idx]
                    if better.any():
                        improved = accepted_idx[better]
                        self.best_energy[improved] = energies[better]
                        self.best[improved] = self.current[improved]

    def swap_arrays(self) -> tuple:
        arrays = [self.current, self.current_energy, self.field]
        if self._num_constraints:
            arrays.append(self.loads)
        return tuple(arrays)


class FusedHyCiMKernel(_FusedCore):
    """Fused counterpart of :class:`~repro.kernels.reference.ReferenceHyCiMKernel`.

    Covers the software-mode single-flip configuration (the ``use_delta``
    fast path): every constraint a linear inequality evaluated exactly, no
    crossbar, no hardware filters.  The HyCiM drift semantics are preserved:
    replicas whose incumbent is infeasible follow every infeasible candidate
    at energy 0 while ``raw_energy`` tracks the true QUBO value
    incrementally.
    """

    def __init__(self, *, matrix, driver: LoopDriver, single_flip: bool,
                 moves_per_iteration: int,
                 constraints: Sequence[LinearConstraint],
                 current: np.ndarray, current_energy: np.ndarray,
                 current_feasible: np.ndarray, raw_energy: Optional[np.ndarray],
                 use_hardware_filters: bool = False,
                 use_crossbar: bool = False,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        if not single_flip:
            raise KernelUnsupportedError(
                "fused kernels require single-flip moves")
        if use_crossbar or raw_energy is None:
            raise KernelUnsupportedError(
                "hardware-mode (crossbar) energy evaluation runs on the "
                "reference backend")
        if use_hardware_filters:
            raise KernelUnsupportedError(
                "hardware inequality filters (quantised weights / matchline "
                "noise) run on the reference backend")
        constraints = tuple(constraints)
        for constraint in constraints:
            if not isinstance(constraint,
                              (InequalityConstraint, EqualityConstraint)):
                raise KernelUnsupportedError(
                    f"constraint {type(constraint).__name__} is not a linear "
                    "inequality or equality; fused kernels cannot track it "
                    "incrementally")
        self.driver = driver
        self.moves_per_iteration = int(moves_per_iteration)
        self.current = current
        self.current_energy = current_energy
        self.current_feasible = current_feasible
        self.raw_energy = raw_energy
        self.best = current.copy()
        self.best_energy = current_energy.copy()
        self.best_feasible = current_feasible.copy()
        num_replicas = current.shape[0]
        self.num_feasible = np.zeros(num_replicas, dtype=int)
        self.num_skipped = np.zeros(num_replicas, dtype=int)
        self.num_accepted = np.zeros(num_replicas, dtype=int)
        self._init_model(matrix, current, constraints)
        self._streams = try_replay_streams(driver, generators,
                                           self._num_variables)

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                flips, bits, signs, delta = self._propose(driver)
                candidate_raw = self.raw_energy + delta

                if self._num_constraints:
                    candidate_loads, candidate_feasible = \
                        self._candidate_loads(flips, signs)
                else:
                    candidate_loads = None
                    candidate_feasible = np.ones(self._rows.shape[0],
                                                 dtype=bool)
                infeasible_idx = np.flatnonzero(~candidate_feasible)
                self.num_skipped[infeasible_idx] += 1
                # Infeasible incumbents drift freely at energy 0 (paper
                # Eq. (6)), exactly as the reference kernel.
                drifting = infeasible_idx[
                    ~self.current_feasible[infeasible_idx]]
                if drifting.size:
                    self.current_energy[drifting] = 0.0
                    self.raw_energy[drifting] = candidate_raw[drifting]
                    self._apply_flips(drifting, flips, bits, signs,
                                      candidate_loads)

                feasible_idx = np.flatnonzero(candidate_feasible)
                if feasible_idx.size == 0:
                    continue
                self.num_feasible[feasible_idx] += 1

                candidate_energy = candidate_raw[feasible_idx]
                step = candidate_energy - self.current_energy[feasible_idx]
                accepted = self._accept(driver, step, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    self.current_energy[accepted_idx] = \
                        candidate_raw[accepted_idx]
                    self.raw_energy[accepted_idx] = candidate_raw[accepted_idx]
                    self.current_feasible[accepted_idx] = True
                    self._apply_flips(accepted_idx, flips, bits, signs,
                                      candidate_loads)
                    self.num_accepted[accepted_idx] += 1
                    improved = accepted_idx[
                        (self.current_energy[accepted_idx]
                         < self.best_energy[accepted_idx])
                        | ~self.best_feasible[accepted_idx]]
                    self.best_energy[improved] = self.current_energy[improved]
                    self.best[improved] = self.current[improved]
                    self.best_feasible[improved] = True

    def swap_arrays(self) -> tuple:
        arrays = [self.current, self.current_energy, self.current_feasible,
                  self.raw_energy, self.field]
        if self._num_constraints:
            arrays.append(self.loads)
        return tuple(arrays)

"""The sweep-kernel interface: one object owns the inner SA sweep.

The lock-step engines in :mod:`repro.batched.engine` used to inline their
propose -> dE -> filter -> accept -> update loop; that loop is now a
:class:`SweepKernel` the engine drives block-wise:

    kernel = make_sa_kernel(backend, ...)
    while iteration < total:
        block = driver.block_length(iteration, limit)
        kernel.run_block(iteration, block)
        iteration += block
        ... exchange / probes / history at the block boundary ...

A kernel owns the travelling sweep state (configurations, energies,
best-so-far, proposal counters) and advances it ``block`` iterations per
:meth:`SweepKernel.run_block` call.  :class:`~repro.dynamics.driver.
LoopDriver` stays the single authority on temperatures, RNG draws,
acceptance and exchange -- kernels call back into it (or, for the JIT
backend, replay its draw streams bit-exactly) -- and
:meth:`~repro.dynamics.driver.LoopDriver.block_length` guarantees blocks end
exactly where an exchange round or telemetry probe is due.

Backends
--------
``"reference"``
    The engines' original NumPy code, moved verbatim: one full-batch matmul
    / gather per proposal.  Byte-identical trajectories to every release
    since PR 2; supports every engine configuration.
``"fused"``
    Incremental kernels: per-replica local-field caches make the energy
    delta an O(M) gather, inequality feasibility is maintained as running
    constraint loads, and CSR matrices are supported end-to-end (flip
    updates cost O(degree)).  Consumes the *same* RNG draws through the
    same ``LoopDriver`` calls, so trajectories are exactly equal whenever
    the arithmetic is (integer-valued coefficient data -- the conformance
    families); float data agrees to summation-order tolerance.
``"packed"``
    Bit-packed states (:mod:`repro.kernels.packed`): replicas travel as
    ``(M, ceil(n/64))`` uint64 words, the single-flip ΔE is recomputed per
    proposal by AND + popcount against precomputed bit-plane masks of
    ``Q + Q^T``, and an accepted flip is a one-word XOR.  Same RNG replay
    as ``fused``; requires integer-valued coefficients (the popcount
    field sums are exact int64, hence bit-identical to the float caches)
    and a plane table within the :data:`repro.kernels.bits.MAX_MASK_BYTES`
    budget, else :class:`KernelUnsupportedError`.
``"numba"``
    The fused loop JIT-compiled (:mod:`repro.kernels.jit`), replaying each
    replica's PCG64 stream bit-exactly inside the compiled block.  Only
    available when :mod:`numba` is importable; selecting it otherwise
    raises :class:`KernelUnavailableError`.
``"auto"``
    The fastest backend that supports the requested configuration
    (``numba`` > ``packed`` > ``fused`` > ``reference``); never raises for
    support reasons.  Note the resolved backend depends on the environment
    (numba present or not), so persisted runs that must be reproducible
    elsewhere should pin an explicit backend instead.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "KERNEL_BACKENDS",
    "KernelUnavailableError",
    "KernelUnsupportedError",
    "SweepKernel",
    "canonical_kernel_param",
    "resolve_kernel_backend",
]

#: Explicit kernel backends, fastest last.  ``"auto"`` resolves to one of
#: these at engine-construction time.
KERNEL_BACKENDS = ("reference", "fused", "packed", "numba")

#: The backend engines use when none is requested (and the one the golden
#: trajectory suite pins byte-for-byte).
DEFAULT_KERNEL = "reference"


class KernelUnsupportedError(ValueError):
    """The selected backend cannot run this engine configuration.

    Raised at kernel construction (never mid-sweep) with the unsupported
    feature named, e.g. hardware-mode evaluation under ``"fused"``.  The
    ``"auto"`` backend catches this and falls back to the next backend.
    """


class KernelUnavailableError(RuntimeError):
    """The selected backend's optional dependency is not importable."""


def resolve_kernel_backend(kernel: Optional[str]) -> str:
    """Validate a kernel backend name (``None`` means the default).

    Returns one of :data:`KERNEL_BACKENDS` or ``"auto"``; raises
    ``ValueError`` for unknown names so typos fail at engine construction
    instead of silently running the default.
    """
    if kernel is None:
        return DEFAULT_KERNEL
    name = str(kernel)
    if name == "auto" or name in KERNEL_BACKENDS:
        return name
    raise ValueError(
        f"unknown kernel backend {kernel!r}; choose from "
        f"{KERNEL_BACKENDS + ('auto',)}"
    )


def canonical_kernel_param(kernel: Optional[str]) -> Optional[str]:
    """Canonical form of a ``params['kernel']`` entry for store run keys.

    The default backend canonicalises to ``None`` (the key is dropped), so
    runs that never mention ``kernel`` and runs that spell out
    ``kernel="reference"`` address the same persisted run -- and every run
    key minted before the kernel layer existed stays valid.  Non-default
    backends stay in the params: ``"fused"``/``"numba"`` are only *exactly*
    equal to the reference on integer-valued instances, so conservatively
    they address their own runs.
    """
    name = resolve_kernel_backend(kernel)
    return None if name == DEFAULT_KERNEL else name


class SweepKernel:
    """Base class for sweep kernels (state container + block stepping).

    Subclasses implement :meth:`run_block` and expose the travelling state
    as attributes; the engines read them at block boundaries for exchange,
    probes, history recording and final result assembly.

    Attributes
    ----------
    current, current_energy:
        The ``(M, n)`` incumbent configurations and their ``(M,)`` energies.
    best, best_energy:
        Best-so-far configurations/energies (same shapes).
    num_feasible, num_skipped, num_accepted:
        Cumulative ``(M,)`` integer proposal counters (feasible candidates,
        filter-rejected candidates, accepted moves).
    """

    #: Class-level backend tag (for result metadata / introspection).
    backend: str = "reference"

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        """Advance the sweep ``num_iterations`` iterations in one call."""
        raise NotImplementedError

    def swap_arrays(self) -> tuple:
        """Per-replica arrays whose rows travel in a replica exchange.

        The driver swaps *rows* of these arrays in place, so every cache a
        kernel keys by replica (local fields, constraint loads, raw
        energies) must be listed here alongside the configurations and
        energies -- otherwise an exchange would silently desynchronise the
        cache from the configuration it summarises.
        """
        raise NotImplementedError

    def finalize(self) -> None:
        """Hook run once after the last block (JIT kernels write RNG state
        back to the replicas' generators here).  Default: nothing."""

    def state_nbytes_per_replica(self) -> float:
        """Bytes of travelling per-replica sweep state.

        Counts the swap arrays (configurations, energies, caches) plus the
        best-so-far tracking arrays -- the memory a kernel keeps hot per
        replica between blocks.  Benchmarks report this next to throughput
        so backend memory footprints are comparable; backends whose best
        tracking lives elsewhere (the packed words) override it.
        """
        arrays = list(self.swap_arrays())
        for name in ("best", "best_energy", "best_feasible"):
            value = getattr(self, name, None)
            if value is not None and hasattr(value, "nbytes"):
                arrays.append(value)
        return sum(array.nbytes for array in arrays) / arrays[0].shape[0]

"""Packed sweep kernels: uint64 word states with popcount ΔE gathers.

The fused kernels keep three float64 ``(M, n)`` arrays hot per batch
(configurations, best-so-far, local fields) and pay an O(n) float row
update per accepted flip.  The kernels here collapse the travelling state
to ``(M, ceil(n/64))`` uint64 **words** (:mod:`repro.kernels.bits`):

* the single-flip local field is recomputed per proposal from precomputed
  bit-plane masks of ``Q + Q^T`` -- one contiguous row gather, an AND and
  a popcount per plane -- so a proposal costs the same whether or not it
  is accepted, and an accepted flip is a one-word XOR instead of a float
  row update;
* running inequality/equality constraint loads are maintained exactly as
  the fused kernels maintain them (the float increments are exact on the
  integer conformance data);
* best-so-far configurations are tracked as packed words and only
  unpacked once, in :meth:`~repro.kernels.base.SweepKernel.finalize`.

RNG parity is inherited from the fused layer: the same
:mod:`repro.kernels.streams` replay (or driver-call fallback) consumes
bit-identical draws, and the popcount field sums are exact int64, so on
integer-valued coefficient matrices trajectories -- energies, counters,
histories, final generator states -- are *exactly* equal to the reference
backend's.  Non-integer matrices (where the popcount identity cannot
hold bit-for-bit) raise :class:`~repro.kernels.base.
KernelUnsupportedError` at construction and ``kernel="auto"`` falls back
to the fused backend, as do instances whose plane table would exceed the
:data:`~repro.kernels.bits.MAX_MASK_BYTES` budget.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.constraints import LinearConstraint
from repro.core.sparse import is_sparse_matrix, symmetrized_matrix
from repro.dynamics.driver import LoopDriver
from repro.kernels.bits import (
    build_plane_masks,
    pack_bits,
    popcount_rows,
    unpack_bits,
)
from repro.kernels.fused import FusedHyCiMKernel, FusedSAKernel

__all__ = ["PackedHyCiMKernel", "PackedSAKernel"]

_ONE = np.uint64(1)
_LOW6 = np.uint64(63)


class _PackedModel:
    """Packed replacement for the fused local-field model state.

    Overrides the fused ``_init_model`` / ``_propose`` / ``_apply_flips``
    trio; the constraint-load machinery, acceptance replay and
    constructor guards are inherited unchanged from the fused layer.
    """

    backend = "packed"

    def _init_model(self, matrix, current: np.ndarray,
                    constraints: Sequence[LinearConstraint]) -> None:
        self._sparse = is_sparse_matrix(matrix)
        symmetric = symmetrized_matrix(matrix)
        if self._sparse:
            self._diag = np.asarray(matrix.diagonal(), dtype=float)
        else:
            self._diag = np.ascontiguousarray(np.diagonal(matrix),
                                              dtype=float).copy()
        # Raises KernelUnsupportedError on non-integer coefficients or an
        # oversized plane table; "auto" then falls through to fused.
        self._offsets, self._masks, self._plane_weights = \
            build_plane_masks(symmetric)
        self._num_variables = int(self._diag.shape[0])
        self._rows = np.arange(current.shape[0])
        #: (M, W) packed incumbent configurations -- the only hot copy.
        self.words = pack_bits(current)
        #: (M,) incumbent popcounts (the ``|x|`` term of the field sum).
        self._ones = popcount_rows(self.words)
        self._init_constraints(current, constraints)

    def _propose(self, driver: LoopDriver):
        """One flip per replica, ΔE via plane-mask popcounts (exact int)."""
        if self._streams is not None:
            flips = self._streams.integers(self._num_variables)
        else:
            flips = driver.flip_indices(self._num_variables)
        words = self.words
        bits_int = (words[self._rows, flips >> 6]
                    >> (flips.astype(np.uint64) & _LOW6)) & _ONE
        bits = bits_int.astype(float)
        signs = 1.0 - 2.0 * bits
        counts = np.bitwise_count(self._masks[flips] & words[:, None, :])
        field = (counts.sum(axis=2, dtype=np.int64) @ self._plane_weights
                 + self._offsets[flips] * self._ones).astype(float)
        diag = self._diag[flips]
        delta = signs * (diag + field - 2.0 * diag * bits)
        return flips, bits, signs, delta

    def _apply_flips(self, replicas: np.ndarray, flips: np.ndarray,
                     bits: np.ndarray, signs: np.ndarray,
                     candidate_loads: Optional[np.ndarray]) -> None:
        """Commit the listed replicas' flips: word XOR, popcounts, loads."""
        chosen = flips[replicas]
        self.words[replicas, chosen >> 6] ^= \
            _ONE << (chosen.astype(np.uint64) & _LOW6)
        self._ones[replicas] += signs[replicas].astype(np.int64)
        if candidate_loads is not None and self._num_constraints:
            self.loads[replicas] = candidate_loads[replicas]

    def _record_best(self, improved: np.ndarray) -> None:
        self._best_words[improved] = self.words[improved]

    def finalize(self) -> None:
        if self._streams is not None:
            self._streams.write_back()
        np.copyto(self.current, unpack_bits(self.words, self._num_variables))
        self.best = unpack_bits(self._best_words, self._num_variables)

    def state_nbytes_per_replica(self) -> float:
        arrays = list(self.swap_arrays()) + [self._best_words,
                                             self.best_energy]
        best_feasible = getattr(self, "best_feasible", None)
        if best_feasible is not None:
            arrays.append(best_feasible)
        return sum(array.nbytes for array in arrays) / self.words.shape[0]


class PackedSAKernel(_PackedModel, FusedSAKernel):
    """Packed counterpart of :class:`~repro.kernels.fused.FusedSAKernel`.

    Same support matrix as the fused SA kernel plus the packed
    preconditions: integer-valued coefficients and a plane table within
    budget.  ``current`` is adopted; it is rewritten from the words in
    :meth:`finalize`, not during the sweep.
    """

    def __init__(self, *, matrix, offset: float, driver: LoopDriver,
                 single_flip: bool, moves_per_iteration: int,
                 current: np.ndarray, current_energy: np.ndarray,
                 accept_filter=None, accept_filter_batch=None,
                 constraints: Optional[Sequence[LinearConstraint]] = None,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        super().__init__(matrix=matrix, offset=offset, driver=driver,
                         single_flip=single_flip,
                         moves_per_iteration=moves_per_iteration,
                         current=current, current_energy=current_energy,
                         accept_filter=accept_filter,
                         accept_filter_batch=accept_filter_batch,
                         constraints=constraints, generators=generators)
        #: Best-so-far configurations stay packed until finalize().
        self._best_words = self.words.copy()
        self.best = None

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                flips, bits, signs, delta = self._propose(driver)
                if self._num_constraints:
                    candidate_loads, passed = self._candidate_loads(flips,
                                                                    signs)
                    self.num_skipped += ~passed
                    self.num_feasible += passed
                    feasible_idx = np.flatnonzero(passed)
                    if feasible_idx.size == 0:
                        continue
                    step = delta[feasible_idx]
                else:
                    candidate_loads = None
                    feasible_idx = self._rows
                    self.num_feasible += 1
                    step = delta

                accepted = self._accept(driver, step, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    self.current_energy[accepted_idx] += step[accepted]
                    self._apply_flips(accepted_idx, flips, bits, signs,
                                      candidate_loads)
                    self.num_accepted[accepted_idx] += 1
                    energies = self.current_energy[accepted_idx]
                    better = energies < self.best_energy[accepted_idx]
                    if better.any():
                        improved = accepted_idx[better]
                        self.best_energy[improved] = energies[better]
                        self._record_best(improved)

    def swap_arrays(self) -> tuple:
        arrays = [self.words, self.current_energy, self._ones]
        if self._num_constraints:
            arrays.append(self.loads)
        return tuple(arrays)


class PackedHyCiMKernel(_PackedModel, FusedHyCiMKernel):
    """Packed counterpart of :class:`~repro.kernels.fused.FusedHyCiMKernel`.

    The HyCiM drift semantics (infeasible incumbents follow infeasible
    candidates at energy 0 while ``raw_energy`` tracks the true QUBO
    value) are preserved word for word from the fused loop.
    """

    def __init__(self, *, matrix, driver: LoopDriver, single_flip: bool,
                 moves_per_iteration: int,
                 constraints: Sequence[LinearConstraint],
                 current: np.ndarray, current_energy: np.ndarray,
                 current_feasible: np.ndarray,
                 raw_energy: Optional[np.ndarray],
                 use_hardware_filters: bool = False,
                 use_crossbar: bool = False,
                 generators: Optional[Sequence[np.random.Generator]] = None
                 ) -> None:
        super().__init__(matrix=matrix, driver=driver,
                         single_flip=single_flip,
                         moves_per_iteration=moves_per_iteration,
                         constraints=constraints, current=current,
                         current_energy=current_energy,
                         current_feasible=current_feasible,
                         raw_energy=raw_energy,
                         use_hardware_filters=use_hardware_filters,
                         use_crossbar=use_crossbar, generators=generators)
        self._best_words = self.words.copy()
        self.best = None

    def run_block(self, start_iteration: int, num_iterations: int) -> None:
        driver = self.driver
        for iteration in range(start_iteration,
                               start_iteration + num_iterations):
            for _ in range(self.moves_per_iteration):
                flips, bits, signs, delta = self._propose(driver)
                candidate_raw = self.raw_energy + delta

                if self._num_constraints:
                    candidate_loads, candidate_feasible = \
                        self._candidate_loads(flips, signs)
                else:
                    candidate_loads = None
                    candidate_feasible = np.ones(self._rows.shape[0],
                                                 dtype=bool)
                infeasible_idx = np.flatnonzero(~candidate_feasible)
                self.num_skipped[infeasible_idx] += 1
                # Infeasible incumbents drift freely at energy 0 (paper
                # Eq. (6)), exactly as the reference kernel.
                drifting = infeasible_idx[
                    ~self.current_feasible[infeasible_idx]]
                if drifting.size:
                    self.current_energy[drifting] = 0.0
                    self.raw_energy[drifting] = candidate_raw[drifting]
                    self._apply_flips(drifting, flips, bits, signs,
                                      candidate_loads)

                feasible_idx = np.flatnonzero(candidate_feasible)
                if feasible_idx.size == 0:
                    continue
                self.num_feasible[feasible_idx] += 1

                candidate_energy = candidate_raw[feasible_idx]
                step = candidate_energy - self.current_energy[feasible_idx]
                accepted = self._accept(driver, step, feasible_idx, iteration)
                accepted_idx = feasible_idx[accepted]
                if accepted_idx.size:
                    self.current_energy[accepted_idx] = \
                        candidate_raw[accepted_idx]
                    self.raw_energy[accepted_idx] = candidate_raw[accepted_idx]
                    self.current_feasible[accepted_idx] = True
                    self._apply_flips(accepted_idx, flips, bits, signs,
                                      candidate_loads)
                    self.num_accepted[accepted_idx] += 1
                    improved = accepted_idx[
                        (self.current_energy[accepted_idx]
                         < self.best_energy[accepted_idx])
                        | ~self.best_feasible[accepted_idx]]
                    self.best_energy[improved] = self.current_energy[improved]
                    self._record_best(improved)
                    self.best_feasible[improved] = True

    def swap_arrays(self) -> tuple:
        arrays = [self.words, self.current_energy, self.current_feasible,
                  self.raw_energy, self._ones]
        if self._num_constraints:
            arrays.append(self.loads)
        return tuple(arrays)

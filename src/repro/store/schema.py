"""Serialization schema and content-addressed run keys for the trial store.

Everything a :class:`~repro.store.store.CampaignStore` persists is a JSON
document produced here.  Two properties carry the whole subsystem:

* **Exact round-trip fidelity.**  ``serialize -> json -> deserialize`` is the
  identity on every deterministic field of a
  :class:`~repro.annealing.result.SolveResult`: float energies round-trip
  bit-exactly (Python's JSON encoder emits shortest-repr floats, which are
  guaranteed to parse back to the same IEEE-754 double; ``NaN`` / ``inf`` use
  the JSON extension tokens Python reads back natively), seeds are arbitrary
  precision integers, and configurations are stored as float lists.  This is
  what makes resumed aggregates identical to uninterrupted ones.
* **Deterministic run keys.**  A *run* -- one ``run_trials`` invocation -- is
  addressed by the SHA-256 of its identity: solver name + display label,
  canonicalized parameters, the instance's :func:`~repro.problems.io.content_hash`,
  the root (master) seed, the backend, and the hash of any explicit initial
  states.  Re-running with the same identity resolves to the same key, so an
  interrupted sweep finds its own partial results; anything that could change
  a trial's outcome changes the key.

Object-valued solver params (schedule / move-generator / variability
instances) are canonicalized from their public attributes, so two runs with
equal objects address the same key regardless of process or platform.  (A
config *dict* and the equivalent constructed object are distinct param
values and hash to distinct keys -- pick one spelling per campaign.)  Params
are stored for identification and inspection; deserialized specs carry them
as plain data, which is sufficient for every store operation (resume gets
its spec from the caller, never from disk).
"""

from __future__ import annotations

import enum
import hashlib
import json
import platform
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.annealing.result import SolveResult

#: Schema version stamped on every persisted document.
STORE_FORMAT_VERSION = 1


class StoreError(RuntimeError):
    """A persisted document is malformed or inconsistent with its manifest."""


# --------------------------------------------------------------------- #
# Canonicalization
# --------------------------------------------------------------------- #
def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to a canonical JSON-serializable structure.

    Mappings are key-stringified (and key-sorted by the encoder), sequences
    and arrays become lists, numpy scalars become Python scalars, enums their
    values, and arbitrary objects a ``{"__class__": ..., "state": ...}``
    record built from their public attributes.  RNG values canonicalize from
    their reproducibility content: a ``SeedSequence`` by its entropy and
    spawn key, a ``Generator`` by its bit-generator state dict.

    One blind spot to know about: an object that drew *hidden* entropy at
    construction (e.g. ``VariabilityModel(seed=None)``, whose public ``seed``
    attribute stays ``None`` while a private stream holds fresh OS entropy)
    canonicalizes identically across processes.  The built-in solvers are
    immune -- their trial functions re-derive all per-trial randomness from
    the spawned trial seed -- but custom solvers that consume such an
    object's own stream should give it an explicit seed when running against
    a store, or the run key cannot distinguish the differing entropy.

    (Deliberately distinct from :func:`repro.problems.io._canonical_content`,
    which erases numeric dtype/int-float distinctions because it addresses
    mathematical *content*; params here keep value fidelity -- ``10`` and
    ``10.0`` are different parameterizations.)
    """
    if isinstance(value, Mapping):
        return {str(key): canonical_value(val) for key, val in value.items()}
    if isinstance(value, np.ndarray):
        return [canonical_value(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((canonical_value(v) for v in value),
                      key=lambda v: json.dumps(v, sort_keys=True))
    if isinstance(value, enum.Enum):
        return canonical_value(value.value)
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, np.random.SeedSequence):
        return {"__seed_sequence__": canonical_value(value.entropy),
                "spawn_key": canonical_value(value.spawn_key)}
    if isinstance(value, np.random.Generator):
        state = value.bit_generator.state
        return {"__generator__": type(value.bit_generator).__name__,
                "state": {key: canonical_value(val)
                          for key, val in sorted(state.items())}}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__class__": type(value).__name__,
            "state": {key: canonical_value(val)
                      for key, val in sorted(state.items())
                      if not key.startswith("_")},
        }
    return repr(value)


def canonical_json(value: Any) -> str:
    """Deterministic JSON rendering of :func:`canonical_value` output."""
    return json.dumps(canonical_value(value), sort_keys=True,
                      separators=(",", ":"), allow_nan=True)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def initial_states_hash(
        initial_states: Optional[Sequence[np.ndarray]]) -> Optional[str]:
    """Content hash of explicit per-trial initial states (``None`` when the
    trials draw their own starting configurations from their seeds)."""
    if initial_states is None:
        return None
    payload = [np.asarray(state, dtype=float).tolist()
               for state in initial_states]
    return _digest(canonical_json(payload))


def trial_run_key(spec: Any, instance_hash: str, master_seed: int,
                  backend: str, initials_hash: Optional[str] = None,
                  grouping: Optional[Sequence[int]] = None) -> str:
    """The deterministic store address of one ``run_trials`` invocation.

    ``spec`` is a :class:`~repro.runtime.registry.SolverSpec` (typed ``Any``
    to keep this module import-light; the runtime imports the store lazily).
    Everything that can change a trial's outcome is part of the key; trial
    *count* deliberately is not -- per-trial ``SeedSequence.spawn`` seeding
    makes trial ``i``'s result independent of how many trials run, so a
    longer re-run extends the same persisted run instead of forking it.

    The one exception is a run with *coupled* dynamics (see
    :class:`repro.dynamics.Dynamics`), where a trial's outcome depends on
    the composition of its lock-step replica group: the executor then passes
    the group structure -- ``(num_trials, chunk_size, replicas_per_task)``
    -- as ``grouping``, which becomes part of the key, so a re-run under a
    different grouping addresses a fresh run instead of silently loading
    results produced under another ladder shape.  ``grouping=None``
    (every uncoupled run) leaves the key material -- and therefore every
    previously persisted run's address -- unchanged.
    """
    material = {
        "v": STORE_FORMAT_VERSION,
        "solver": spec.solver,
        "label": spec.display_name,
        "params": canonical_value(spec.params),
        "instance": instance_hash,
        "master_seed": int(master_seed),
        "backend": backend,
        "initial_states": initials_hash,
    }
    if grouping is not None:
        material["grouping"] = [int(value) for value in grouping]
    return _digest(canonical_json(material))


# --------------------------------------------------------------------- #
# SolveResult
# --------------------------------------------------------------------- #
def serialize_solve_result(result: SolveResult) -> Dict[str, Any]:
    """One trial result as a JSON-serializable dict (schema v1)."""
    return {
        "best_configuration": np.asarray(result.best_configuration,
                                         dtype=float).tolist(),
        "best_energy": float(result.best_energy),
        "best_objective": (None if result.best_objective is None
                           else float(result.best_objective)),
        "feasible": bool(result.feasible),
        "energy_history": [float(v) for v in result.energy_history],
        "num_iterations": int(result.num_iterations),
        "num_feasible_evaluations": int(result.num_feasible_evaluations),
        "num_infeasible_skipped": int(result.num_infeasible_skipped),
        "num_accepted_moves": int(result.num_accepted_moves),
        "solver_name": str(result.solver_name),
        "trial_seed": (None if result.trial_seed is None
                       else int(result.trial_seed)),
        "wall_time": (None if result.wall_time is None
                      else float(result.wall_time)),
        "metadata": canonical_value(result.metadata),
    }


def deserialize_solve_result(payload: Mapping[str, Any]) -> SolveResult:
    """Inverse of :func:`serialize_solve_result`."""
    try:
        return SolveResult(
            best_configuration=np.asarray(payload["best_configuration"],
                                          dtype=float),
            best_energy=float(payload["best_energy"]),
            best_objective=(None if payload["best_objective"] is None
                            else float(payload["best_objective"])),
            feasible=bool(payload["feasible"]),
            energy_history=list(payload["energy_history"]),
            num_iterations=int(payload["num_iterations"]),
            num_feasible_evaluations=int(payload["num_feasible_evaluations"]),
            num_infeasible_skipped=int(payload["num_infeasible_skipped"]),
            num_accepted_moves=int(payload["num_accepted_moves"]),
            solver_name=str(payload["solver_name"]),
            trial_seed=(None if payload["trial_seed"] is None
                        else int(payload["trial_seed"])),
            wall_time=(None if payload["wall_time"] is None
                       else float(payload["wall_time"])),
            metadata=dict(payload["metadata"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed SolveResult payload: {error}") from error


# --------------------------------------------------------------------- #
# TrialBatch
# --------------------------------------------------------------------- #
def serialize_spec(spec: Any) -> Dict[str, Any]:
    """A solver spec as stored data (identification, not reconstruction)."""
    return {"solver": spec.solver, "params": canonical_value(spec.params),
            "label": spec.label}


def deserialize_spec(payload: Mapping[str, Any]) -> Any:
    from repro.runtime.registry import SolverSpec

    return SolverSpec(payload["solver"], dict(payload["params"]),
                      label=payload.get("label"))


def serialize_trial_batch(batch: Any, include_results: bool = True) -> Dict[str, Any]:
    """A :class:`~repro.runtime.executor.TrialBatch` as a JSON document.

    With ``include_results=False`` only the header is emitted -- the form the
    campaign log uses, where the per-trial results already live in the run's
    shards and are re-joined at load time via ``run_key``.
    """
    document = {
        "v": STORE_FORMAT_VERSION,
        "spec": serialize_spec(batch.spec),
        "problem_name": batch.problem_name,
        "backend": batch.backend,
        "master_seed": int(batch.master_seed),
        "num_trials_requested": int(batch.num_trials_requested),
        "stopped_early": bool(batch.stopped_early),
        "wall_time": float(batch.wall_time),
    }
    if include_results:
        document["results"] = [serialize_solve_result(r) for r in batch.results]
    return document


def deserialize_trial_batch(payload: Mapping[str, Any],
                            results: Optional[List[SolveResult]] = None) -> Any:
    """Inverse of :func:`serialize_trial_batch`; ``results`` supplies the
    trial list for header-only documents."""
    from repro.runtime.executor import TrialBatch

    if results is None:
        results = [deserialize_solve_result(r) for r in payload.get("results", ())]
    return TrialBatch(
        results=results,
        spec=deserialize_spec(payload["spec"]),
        problem_name=payload["problem_name"],
        backend=payload["backend"],
        master_seed=int(payload["master_seed"]),
        num_trials_requested=int(payload["num_trials_requested"]),
        stopped_early=bool(payload["stopped_early"]),
        wall_time=float(payload["wall_time"]),
    )


# --------------------------------------------------------------------- #
# CampaignRecord
# --------------------------------------------------------------------- #
def serialize_campaign_record(record: Any, run_key: Optional[str] = None,
                              include_results: bool = True) -> Dict[str, Any]:
    """A :class:`~repro.runtime.campaign.CampaignRecord` as a JSON document.

    ``run_key`` links the record's batch to its trial shards, which lets the
    campaign log drop the (already persisted) per-trial results.
    """
    return {
        "v": STORE_FORMAT_VERSION,
        "run_key": run_key,
        "problem_name": record.problem_name,
        "spec": serialize_spec(record.spec),
        "batch": serialize_trial_batch(record.batch,
                                       include_results=include_results),
        "statistics": asdict(record.statistics),
        "reference": (None if record.reference is None
                      else float(record.reference)),
        "maximize": bool(record.maximize),
    }


def deserialize_campaign_record(payload: Mapping[str, Any],
                                results: Optional[List[SolveResult]] = None) -> Any:
    """Inverse of :func:`serialize_campaign_record`."""
    from repro.runtime.aggregate import TrialStatistics
    from repro.runtime.campaign import CampaignRecord

    try:
        return CampaignRecord(
            problem_name=payload["problem_name"],
            spec=deserialize_spec(payload["spec"]),
            batch=deserialize_trial_batch(payload["batch"], results=results),
            statistics=TrialStatistics(**payload["statistics"]),
            reference=(None if payload["reference"] is None
                       else float(payload["reference"])),
            maximize=bool(payload["maximize"]),
        )
    except (KeyError, TypeError) as error:
        raise StoreError(f"malformed CampaignRecord payload: {error}") from error


# --------------------------------------------------------------------- #
# Run manifest
# --------------------------------------------------------------------- #
def run_provenance() -> Dict[str, str]:
    """The software/hardware environment a run was produced under.

    Stored on the :class:`RunManifest` for auditability; deliberately **not**
    part of the :func:`trial_run_key` material -- upgrading numpy or moving
    the store to another host must keep addressing the same persisted runs.
    """
    import repro

    return {
        "repro_version": str(repro.__version__),
        "numpy_version": str(np.__version__),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "hostname": platform.node(),
    }


@dataclass(frozen=True)
class RunManifest:
    """Identity card of one persisted run (one line of ``manifest.jsonl``).

    Attributes mirror the :func:`trial_run_key` material plus bookkeeping
    that is useful for listing but not part of the key
    (``num_trials_requested`` -- a longer re-run raises it in place, and
    ``provenance`` -- the :func:`run_provenance` environment snapshot,
    ``None`` for manifests written before it existed).
    """

    run_key: str
    solver: str
    label: str
    params: Any
    problem_name: str
    instance_hash: str
    master_seed: int
    backend: str
    num_trials_requested: int
    provenance: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["v"] = STORE_FORMAT_VERSION
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        try:
            return cls(
                run_key=payload["run_key"],
                solver=payload["solver"],
                label=payload["label"],
                params=payload["params"],
                problem_name=payload["problem_name"],
                instance_hash=payload["instance_hash"],
                master_seed=int(payload["master_seed"]),
                backend=payload["backend"],
                num_trials_requested=int(payload["num_trials_requested"]),
                provenance=payload.get("provenance"),
            )
        except (KeyError, TypeError) as error:
            raise StoreError(f"malformed manifest entry: {error}") from error


def manifest_for_run(spec: Any, problem: Any, instance_hash: str,
                     master_seed: int, backend: str, num_trials: int,
                     initials_hash: Optional[str] = None,
                     grouping: Optional[Sequence[int]] = None) -> RunManifest:
    """Build the manifest (and key) for one ``run_trials`` invocation."""
    return RunManifest(
        run_key=trial_run_key(spec, instance_hash, master_seed, backend,
                              initials_hash, grouping=grouping),
        solver=spec.solver,
        label=spec.display_name,
        params=canonical_value(spec.params),
        problem_name=getattr(problem, "name", type(problem).__name__),
        instance_hash=instance_hash,
        master_seed=int(master_seed),
        backend=backend,
        num_trials_requested=int(num_trials),
        provenance=run_provenance(),
    )


def dumps_line(payload: Mapping[str, Any]) -> str:
    """One JSONL line (newline included) with deterministic key order."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=True) + "\n"

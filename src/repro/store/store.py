"""Checkpointed, resumable campaign store: append-only JSONL shards on disk.

Layout of a store directory::

    store/
      manifest.jsonl        # one line per registered run (identity card)
      campaigns.jsonl       # one line per campaign cell (header + statistics)
      wall_times.jsonl      # one line per run invocation (elapsed seconds)
      shards/
        <run_key>.0000.jsonl    # one line per completed trial
        <run_key>.0001.jsonl    # next shard after rotation
        ...
      telemetry/
        <run_key>.jsonl         # telemetry sidecar (spans/counters/probes)
        <run_key>.w<pid>.jsonl  # per-worker shards of process-backend runs

Durability model
----------------
Every write is an *append of one complete line followed by a flush*, and
shard files rotate by simply opening the next numbered file once the active
one reaches ``shard_size`` lines -- full shards are never reopened for
writing, so a crash can damage at most the final line of the final shard of
the run being written.  :meth:`CampaignStore.load_results` therefore treats a
torn trailing line as "this trial never completed" and drops it (the resume
path simply re-runs that trial); a malformed line anywhere *else* is real
corruption and raises :class:`~repro.store.schema.StoreError`.  Bulk
rewrites (:meth:`merge` targets, future compactions) go through a temp file
plus :func:`os.replace`, so readers never observe a half-written shard.

Trials are keyed ``(run_key, trial_index)``; appending the same trial again
(e.g. a ``resume=False`` re-run) is an overwrite -- later lines win at load
time, mirroring the append-only log semantics.

Concurrency model: **one writer per store directory at a time** (the runtime
appends from the parent process only), any number of concurrent readers.
Sequential writers -- a resumed campaign after a crash, a CLI merge between
campaigns, alternating store handles -- are fully supported: the append path
re-validates its cached shard position against disk and repairs a torn tail
before writing.  Two *simultaneous* writer processes on one directory are
not coordinated (no file locking) and may interleave shard lines.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union

from repro.annealing.result import SolveResult
from repro.store.schema import (
    RunManifest,
    StoreError,
    deserialize_campaign_record,
    deserialize_solve_result,
    dumps_line,
    serialize_campaign_record,
    serialize_solve_result,
)

_MANIFEST = "manifest.jsonl"
_CAMPAIGNS = "campaigns.jsonl"
_SHARD_DIR = "shards"
_TELEMETRY_DIR = "telemetry"
_WALL_TIMES = "wall_times.jsonl"
_SHARD_DIGITS = 4

#: CSV columns emitted by :meth:`CampaignStore.export_csv` -- one row per
#: trial, floats rendered with ``repr`` so they parse back bit-exactly.
EXPORT_CSV_COLUMNS = (
    "run_key", "problem_name", "instance_hash", "solver", "label", "backend",
    "master_seed", "trial_index", "trial_seed", "best_energy",
    "best_objective", "feasible", "num_iterations",
    "num_feasible_evaluations", "num_infeasible_skipped",
    "num_accepted_moves", "wall_time",
)


def _format_csv_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)


class CampaignStore:
    """Durable, content-addressed storage for trial results.

    Parameters
    ----------
    root:
        Store directory; created (with parents) if missing.
    shard_size:
        Trials per shard file before rotation.  Small shards bound the blast
        radius of a torn write and keep merge copies incremental; the default
        matches a few campaign cells per file at paper scale.
    create:
        Create the directory structure if missing (the write-path default).
        Read-only tooling passes ``create=False`` so a mistyped path fails
        loudly (``FileNotFoundError``) instead of materialising an empty
        store and reporting the checkpoints "gone".
    """

    def __init__(self, root: Union[str, Path], shard_size: int = 256,
                 create: bool = True) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be positive")
        self.root = Path(root)
        self.shard_size = int(shard_size)
        if create:
            (self.root / _SHARD_DIR).mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise FileNotFoundError(f"no store directory at {self.root}")
        self._runs: Dict[str, RunManifest] = {}
        #: run_key -> (active shard index, lines in it, byte size); lazily
        #: discovered from disk and revalidated against it before every
        #: append, so sequential/alternating store handles stay consistent.
        self._active_shard: Dict[str, Tuple[int, int, int]] = {}
        self._load_manifest()

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    def _load_manifest(self) -> None:
        # Append-only log semantics: a run re-registered with a larger trial
        # request appends an updated line, so the latest line wins.
        for payload in _read_jsonl(self.root / _MANIFEST,
                                   tolerate_torn_tail=True):
            manifest = RunManifest.from_dict(payload)
            self._runs[manifest.run_key] = manifest

    def register_run(self, manifest: RunManifest) -> RunManifest:
        """Idempotently add a run to the manifest; returns the stored entry.

        A re-registration with a higher ``num_trials_requested`` (a longer
        re-run of the same identity) raises the stored request count so
        listings reflect the largest sweep seen.
        """
        existing = self._runs.get(manifest.run_key)
        if existing is not None:
            if manifest.num_trials_requested > existing.num_trials_requested:
                self._runs[manifest.run_key] = manifest
                self._append_line(self.root / _MANIFEST, manifest.to_dict())
            return self._runs[manifest.run_key]
        self._runs[manifest.run_key] = manifest
        self._append_line(self.root / _MANIFEST, manifest.to_dict())
        return manifest

    def annotate_provenance(self, run_key: str, **entries: str) -> RunManifest:
        """Merge keys into a registered run's provenance snapshot.

        The runtime uses this to stamp facts only known *after* the run
        executed -- e.g. ``kernel_resolved``, the sweep-kernel backend
        ``"auto"`` actually picked.  The manifest log is last-line-wins, so
        the updated entry is re-appended with the merged provenance;
        re-annotating with already-stored values appends nothing.
        """
        manifest = self._runs.get(run_key)
        if manifest is None:
            raise KeyError(f"run {run_key!r} is not registered")
        merged = dict(manifest.provenance or {})
        merged.update({key: str(value) for key, value in entries.items()})
        if merged == (manifest.provenance or {}):
            return manifest
        updated = replace(manifest, provenance=merged)
        self._runs[run_key] = updated
        self._append_line(self.root / _MANIFEST, updated.to_dict())
        return updated

    def runs(self) -> List[RunManifest]:
        """All registered runs, ordered by (problem, label, run_key)."""
        return sorted(self._runs.values(),
                      key=lambda m: (m.problem_name, m.label, m.run_key))

    def get_manifest(self, run_key: str) -> RunManifest:
        """The manifest of ``run_key``; accepts an unambiguous key prefix."""
        if run_key in self._runs:
            return self._runs[run_key]
        matches = [m for k, m in self._runs.items() if k.startswith(run_key)]
        if not matches:
            raise KeyError(f"no run with key (prefix) {run_key!r}")
        if len(matches) > 1:
            raise KeyError(f"run key prefix {run_key!r} is ambiguous "
                           f"({len(matches)} matches)")
        return matches[0]

    # ------------------------------------------------------------------ #
    # Trial shards
    # ------------------------------------------------------------------ #
    def _shard_paths(self, run_key: str) -> List[Path]:
        return sorted((self.root / _SHARD_DIR).glob(f"{run_key}.*.jsonl"))

    def _shard_path(self, run_key: str, index: int) -> Path:
        return self.root / _SHARD_DIR / f"{run_key}.{index:0{_SHARD_DIGITS}d}.jsonl"

    def _locate_active_shard(self, run_key: str) -> Tuple[int, int, int]:
        state = self._active_shard.get(run_key)
        if state is not None:
            # Guard against writes through another handle (a CLI merge, an
            # alternating campaign): the cache is only trusted while no
            # later shard exists *and* the active shard's on-disk size
            # matches what this handle last saw; otherwise rescan.
            index, _, size = state
            path = self._shard_path(run_key, index)
            if not self._shard_path(run_key, index + 1).exists() and \
                    (path.stat().st_size if path.exists() else 0) == size:
                return state
        shards = self._shard_paths(run_key)
        if not shards:
            state = (0, 0, 0)
        else:
            last = shards[-1]
            index = int(last.name.rsplit(".", 2)[-2])
            raw = last.read_bytes()
            if raw and not raw.endswith(b"\n"):
                # Torn tail from a crash mid-append.  Discard the partial
                # record *before* writing anything after it -- appending
                # behind it would weld two records into one corrupt mid-file
                # line that no later read could recover from.  (Only the
                # non-full active shard is ever repaired this way; full
                # shards stay immutable.)
                keep = raw.rfind(b"\n") + 1
                with last.open("rb+") as handle:
                    handle.truncate(keep)
                raw = raw[:keep]
            state = (index, raw.count(b"\n"), len(raw))
        self._active_shard[run_key] = state
        return state

    def append_result(self, run_key: str, trial_index: int,
                      result: SolveResult) -> None:
        """Persist one completed trial (crash-safe single-line append)."""
        if trial_index < 0:
            raise ValueError("trial_index must be non-negative")
        self._append_trial_payload(run_key, {
            "trial_index": int(trial_index),
            "result": serialize_solve_result(result),
        })

    def _append_trial_payload(self, run_key: str,
                              payload: Mapping[str, Any]) -> None:
        if run_key not in self._runs:
            raise KeyError(f"run {run_key!r} is not registered; call "
                           "register_run before appending results")
        index, lines, size = self._locate_active_shard(run_key)
        if lines >= self.shard_size:
            index, lines, size = index + 1, 0, 0
        line = dumps_line(payload)
        path = self._shard_path(run_key, index)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
        self._active_shard[run_key] = (index, lines + 1,
                                       size + len(line.encode("utf-8")))

    def _iter_trial_payloads(self, run_key: str):
        """Raw ``(trial_index, line payload)`` pairs, in append order."""
        shards = self._shard_paths(run_key)
        for position, shard in enumerate(shards):
            tail_ok = position == len(shards) - 1
            for payload in _read_jsonl(shard, tolerate_torn_tail=tail_ok):
                try:
                    index = int(payload["trial_index"])
                except (KeyError, TypeError, ValueError) as error:
                    raise StoreError(
                        f"{shard}: trial line without a valid trial_index"
                    ) from error
                yield index, payload

    def load_results(self, run_key: str) -> Dict[int, SolveResult]:
        """All persisted trials of a run, keyed by trial index.

        Duplicate indices resolve to the *latest* line (append-only overwrite
        semantics); a torn final line in the final shard is dropped.
        """
        latest = {index: payload
                  for index, payload in self._iter_trial_payloads(run_key)}
        return {index: deserialize_solve_result(payload["result"])
                for index, payload in latest.items()}

    def trial_indices(self, run_key: str) -> set:
        """Indices of the persisted trials, without deserializing them --
        counting and diffing at paper scale must not materialize every
        configuration array."""
        return {index for index, _ in self._iter_trial_payloads(run_key)}

    def num_results(self, run_key: str) -> int:
        """Distinct persisted trials of a run."""
        return len(self.trial_indices(run_key))

    # ------------------------------------------------------------------ #
    # Campaign log
    # ------------------------------------------------------------------ #
    def append_campaign_record(self, record: Any, run_key: str) -> None:
        """Log one campaign cell (header + statistics; trials live in shards)."""
        if run_key not in self._runs:
            raise KeyError(f"run {run_key!r} is not registered")
        payload = serialize_campaign_record(record, run_key=run_key,
                                            include_results=False)
        self._append_line(self.root / _CAMPAIGNS, payload)

    def load_campaign_records(self) -> List[Any]:
        """All logged campaign cells with their trial results re-joined.

        Cells logged repeatedly under the same run key (an interrupted and a
        resumed campaign, say) dedupe to the latest line.
        """
        latest: Dict[str, Mapping[str, Any]] = {}
        for payload in _read_jsonl(self.root / _CAMPAIGNS,
                                   tolerate_torn_tail=True):
            key = payload.get("run_key")
            if key is None:
                raise StoreError("campaign record without a run_key")
            latest[key] = payload
        records = []
        for key, payload in sorted(latest.items()):
            stored = self.load_results(key)
            results = [stored[i] for i in sorted(stored)]
            records.append(deserialize_campaign_record(payload, results=results))
        return records

    # ------------------------------------------------------------------ #
    # Telemetry sidecars + accumulated wall time
    # ------------------------------------------------------------------ #
    def telemetry_path(self, run_key: str) -> Path:
        """Where ``run_key``'s telemetry sidecar lives (may not exist yet)."""
        return self.root / _TELEMETRY_DIR / f"{run_key}.jsonl"

    def telemetry_shard_paths(self, run_key: str) -> List[Path]:
        """Existing per-worker telemetry shards of a run (may be empty)."""
        from repro.telemetry.recorder import worker_shard_paths

        return worker_shard_paths(self.telemetry_path(run_key))

    def telemetry_recorder(self, run_key: str,
                           probe_interval: Optional[int] = None):
        """A :class:`~repro.telemetry.JsonlRecorder` appending to the run's
        sidecar (same one-complete-line-plus-flush durability as shards; the
        recorder repairs a torn tail before its first write, so interrupted
        and resumed sessions share one well-formed file).  Opening the
        recorder also repairs the torn tails of any existing *worker* shards
        -- a SIGKILLed worker's pid never comes back to reopen its own shard,
        so the resuming parent is the only writer left to make the shard set
        well-formed before new sessions append beside it.  Caller closes it
        -- ``run_trials(..., telemetry=True)`` does this automatically.
        """
        if run_key not in self._runs:
            raise KeyError(f"run {run_key!r} is not registered; call "
                           "register_run before recording telemetry")
        from repro.telemetry.recorder import (DEFAULT_PROBE_INTERVAL,
                                              JsonlRecorder,
                                              _repair_torn_tail)

        for shard in self.telemetry_shard_paths(run_key):
            _repair_torn_tail(shard)
        return JsonlRecorder(
            self.telemetry_path(run_key),
            probe_interval=(DEFAULT_PROBE_INTERVAL if probe_interval is None
                            else probe_interval))

    def load_telemetry(self, run_key: str) -> List[Mapping[str, Any]]:
        """Committed telemetry events of a run (torn tails dropped; empty
        list when the run never recorded telemetry).  Accepts an unambiguous
        key prefix like :meth:`get_manifest`.

        A run with per-worker shards (process backend) loads as one causally
        merged timeline -- worker events tagged with their ``shard`` id and
        spliced under the parent's chunk spans
        (:mod:`repro.telemetry.shards`); a single-sidecar run loads exactly
        as before."""
        from repro.telemetry.shards import load_run_events

        manifest = self.get_manifest(run_key)
        return load_run_events(self.telemetry_path(manifest.run_key))

    def record_wall_time(self, run_key: str, seconds: float) -> None:
        """Log one invocation's elapsed seconds against a run.

        The executor calls this after every run span -- completed or
        interrupted -- so :meth:`accumulated_wall_time` reflects the total
        compute ever spent producing the run's persisted trials.
        """
        if run_key not in self._runs:
            raise KeyError(f"run {run_key!r} is not registered")
        self._append_line(self.root / _WALL_TIMES,
                          {"run_key": run_key, "seconds": float(seconds)})

    def accumulated_wall_time(self, run_key: str) -> float:
        """Total recorded seconds across every invocation of a run."""
        total = 0.0
        for payload in _read_jsonl(self.root / _WALL_TIMES,
                                   tolerate_torn_tail=True):
            if payload.get("run_key") == run_key:
                total += float(payload.get("seconds", 0.0))
        return total

    # ------------------------------------------------------------------ #
    # Merge / export
    # ------------------------------------------------------------------ #
    def merge(self, other: "CampaignStore") -> Dict[str, int]:
        """Fold another store into this one.

        Runs unknown here are registered; trials absent here are appended
        (trials present in both keep *this* store's version -- merging never
        rewrites existing data).  Campaign log lines are carried over for
        runs this store had not logged, telemetry shard sets (sidecar plus
        per-worker shards) for runs without any telemetry here, and
        wall-time lines for runs with no recorded time here.
        Returns ``{"runs": ..., "trials": ...}`` counts of newly added
        entries.
        """
        added_runs = 0
        added_trials = 0
        for manifest in other.runs():
            if manifest.run_key not in self._runs:
                added_runs += 1
            self.register_run(manifest)
            mine = self.trial_indices(manifest.run_key)
            # Copy the raw persisted lines (latest line per index) -- merge
            # moves serialized records between stores, it never needs to
            # rebuild SolveResults.
            theirs = {index: payload for index, payload
                      in other._iter_trial_payloads(manifest.run_key)}
            for index in sorted(set(theirs) - mine):
                self._append_trial_payload(manifest.run_key, theirs[index])
                added_trials += 1
            # Telemetry is per-run observability, not mergeable result data:
            # carry the other store's shard set (main sidecar plus worker
            # shards) only when this store has no telemetry at all for the
            # run (committed events only -- torn tails stay behind).  The
            # shard set moves as a unit so a merged run's timeline stays
            # causally complete.
            my_sidecar = self.telemetry_path(manifest.run_key)
            if not my_sidecar.exists() and \
                    not self.telemetry_shard_paths(manifest.run_key):
                their_sidecar = other.telemetry_path(manifest.run_key)
                theirs = ([their_sidecar] if their_sidecar.exists() else []) \
                    + other.telemetry_shard_paths(manifest.run_key)
                from repro.telemetry.recorder import load_events

                for source in theirs:
                    dest = my_sidecar.with_name(source.name)
                    dest.parent.mkdir(parents=True, exist_ok=True)
                    tmp = dest.with_name(dest.name + ".tmp")
                    with tmp.open("w", encoding="utf-8") as handle:
                        for event in load_events(source):
                            handle.write(json.dumps(
                                event, sort_keys=True, separators=(",", ":"),
                                allow_nan=True) + "\n")
                    os.replace(tmp, dest)
        their_wall_times: Dict[str, List[Mapping[str, Any]]] = {}
        for payload in _read_jsonl(other.root / _WALL_TIMES,
                                   tolerate_torn_tail=True):
            their_wall_times.setdefault(payload.get("run_key"),
                                        []).append(payload)
        mine_with_time = {
            payload.get("run_key")
            for payload in _read_jsonl(self.root / _WALL_TIMES,
                                       tolerate_torn_tail=True)
        }
        for key in sorted(k for k in their_wall_times if k is not None):
            if key not in mine_with_time and key in self._runs:
                for payload in their_wall_times[key]:
                    self._append_line(self.root / _WALL_TIMES, payload)
        seen_campaign_keys = {
            payload.get("run_key")
            for payload in _read_jsonl(self.root / _CAMPAIGNS,
                                       tolerate_torn_tail=True)
        }
        for payload in _read_jsonl(other.root / _CAMPAIGNS,
                                   tolerate_torn_tail=True):
            if payload.get("run_key") not in seen_campaign_keys:
                self._append_line(self.root / _CAMPAIGNS, payload)
        return {"runs": added_runs, "trials": added_trials}

    def export_csv(self, path: Union[str, Path]) -> int:
        """Write every persisted trial as one CSV row; returns the row count.

        Floats are rendered with ``repr`` so the CSV round-trips bit-exactly
        through ``float()`` -- the analysis/reporting helpers can recompute
        success rates from the exported values and land on the numbers the
        live aggregation produced.
        """
        import csv

        rows = 0
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(EXPORT_CSV_COLUMNS)
            for manifest in self.runs():
                stored = self.load_results(manifest.run_key)
                for index in sorted(stored):
                    result = stored[index]
                    writer.writerow([_format_csv_value(v) for v in (
                        manifest.run_key, manifest.problem_name,
                        manifest.instance_hash, manifest.solver,
                        manifest.label, manifest.backend,
                        manifest.master_seed, index, result.trial_seed,
                        result.best_energy, result.best_objective,
                        result.feasible, result.num_iterations,
                        result.num_feasible_evaluations,
                        result.num_infeasible_skipped,
                        result.num_accepted_moves, result.wall_time,
                    )])
                    rows += 1
        os.replace(tmp, path)
        return rows

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _append_line(self, path: Path, payload: Mapping[str, Any]) -> None:
        with path.open("a", encoding="utf-8") as handle:
            handle.write(dumps_line(payload))
            handle.flush()


def _read_jsonl(path: Path, tolerate_torn_tail: bool = False) -> Iterator[Mapping[str, Any]]:
    """Parse a JSONL file, optionally forgiving a torn final line.

    A record only counts as committed once its terminating newline is on
    disk, so an *unterminated* final line is a torn write even when its
    prefix happens to parse -- the same rule the append path's
    crash-repair uses, keeping readers and writers in agreement.  A line
    that fails to parse anywhere else is corruption and raises
    :class:`StoreError`.
    """
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as handle:
        content = handle.read()
    lines = content.splitlines()
    unterminated = bool(content) and not content.endswith("\n")
    for number, line in enumerate(lines):
        last = number == len(lines) - 1
        if not line.strip():
            continue
        if last and unterminated:
            if tolerate_torn_tail:
                return
            raise StoreError(f"{path}:{number + 1}: torn (unterminated) line")
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if tolerate_torn_tail and last:
                return
            raise StoreError(f"{path}:{number + 1}: corrupt line") from error
        if not isinstance(payload, Mapping):
            raise StoreError(f"{path}:{number + 1}: expected a JSON object")
        yield payload

"""``python -m repro.store`` -- the results CLI over campaign stores.

Subcommands::

    list STORE [--json]            # table of persisted runs
    inspect STORE RUN_KEY [--json] # manifest + per-trial table (key prefix ok)
    merge DEST SRC [SRC ...]       # fold source stores into DEST
    export-csv STORE [OUTPUT]      # all trials as CSV (default: trials.csv)

``--json`` switches ``list`` and ``inspect`` from human tables to one JSON
document on stdout (full run keys, params and provenance included), for
piping into ``jq`` or downstream tooling.

The CLI is read-mostly tooling for humans; campaigns and sweeps talk to the
store through the runtime (``run_trials(..., store=...)``).  ``merge`` is the
one write command: it folds shards recorded on other machines (or in other
interrupted sessions) into a single store for cross-run analysis.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.store.schema import StoreError
from repro.store.store import CampaignStore


def _short(run_key: str) -> str:
    return run_key[:12]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Inspect, merge and export checkpointed campaign stores.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the runs persisted in a store")
    list_cmd.add_argument("store", help="store directory")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit one JSON document instead of a table")

    inspect_cmd = sub.add_parser(
        "inspect", help="show one run's manifest and per-trial results")
    inspect_cmd.add_argument("store", help="store directory")
    inspect_cmd.add_argument("run_key",
                             help="run key (an unambiguous prefix is enough)")
    inspect_cmd.add_argument("--json", action="store_true",
                             help="emit one JSON document instead of a table")

    merge_cmd = sub.add_parser(
        "merge", help="fold one or more source stores into a destination")
    merge_cmd.add_argument("dest", help="destination store directory")
    merge_cmd.add_argument("sources", nargs="+", help="source store directories")

    export_cmd = sub.add_parser(
        "export-csv", help="export every persisted trial as one CSV row")
    export_cmd.add_argument("store", help="store directory")
    export_cmd.add_argument("output", nargs="?", default="trials.csv",
                            help="output CSV path (default: trials.csv)")
    return parser


def _dump_json(document: object) -> None:
    print(json.dumps(document, sort_keys=True, indent=2, allow_nan=True))


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table

    store = CampaignStore(args.store, create=False)
    runs = store.runs()
    if args.json:
        _dump_json([
            {
                "run_key": manifest.run_key,
                "problem": manifest.problem_name,
                "solver": manifest.solver,
                "label": manifest.label,
                "backend": manifest.backend,
                "master_seed": manifest.master_seed,
                "trials_persisted": store.num_results(manifest.run_key),
                "trials_requested": manifest.num_trials_requested,
                "provenance": manifest.provenance,
            }
            for manifest in runs
        ])
        return 0
    if not runs:
        print(f"{args.store}: empty store (no runs registered)")
        return 0
    rows = []
    for manifest in runs:
        persisted = store.num_results(manifest.run_key)
        rows.append([
            _short(manifest.run_key), manifest.problem_name, manifest.label,
            manifest.backend, str(manifest.master_seed),
            f"{persisted}/{manifest.num_trials_requested}",
        ])
    print(format_table(
        ["run key", "instance", "solver", "backend", "seed", "trials"], rows))
    print(f"{len(runs)} run(s) in {args.store}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import format_table
    from repro.store.schema import canonical_json

    store = CampaignStore(args.store, create=False)
    try:
        manifest = store.get_manifest(args.run_key)
    except KeyError as error:
        print(error.args[0])
        return 1
    results = store.load_results(manifest.run_key)
    if args.json:
        _dump_json({
            "run_key": manifest.run_key,
            "problem": manifest.problem_name,
            "instance_hash": manifest.instance_hash,
            "solver": manifest.solver,
            "label": manifest.label,
            "params": manifest.params,
            "backend": manifest.backend,
            "master_seed": manifest.master_seed,
            "trials_requested": manifest.num_trials_requested,
            "provenance": manifest.provenance,
            "trials": [
                {
                    "index": index,
                    "seed": result.trial_seed,
                    "energy": result.best_energy,
                    "objective": result.best_objective,
                    "feasible": result.feasible,
                    "wall_time": result.wall_time,
                }
                for index, result in sorted(results.items())
            ],
        })
        return 0
    print(f"run key      : {manifest.run_key}")
    print(f"instance     : {manifest.problem_name} "
          f"(content {manifest.instance_hash[:12]})")
    print(f"solver       : {manifest.label} ({manifest.solver})")
    print(f"params       : {canonical_json(manifest.params)}")
    print(f"backend/seed : {manifest.backend} / {manifest.master_seed}")
    print(f"trials       : {len(results)} persisted "
          f"of {manifest.num_trials_requested} requested")
    if manifest.provenance:
        origin = manifest.provenance
        kernel = origin.get("kernel_resolved")
        print(f"provenance   : repro {origin.get('repro_version', '?')}, "
              f"numpy {origin.get('numpy_version', '?')}, "
              f"python {origin.get('python_version', '?')} "
              f"on {origin.get('hostname', '?')}"
              + (f", kernel {kernel}" if kernel else ""))
    if results:
        rows = [[str(index), str(result.trial_seed),
                 f"{result.best_energy:.6g}",
                 "n/a" if result.best_objective is None
                 else f"{result.best_objective:.6g}",
                 str(result.feasible),
                 "n/a" if result.wall_time is None
                 else f"{result.wall_time:.3f}s"]
                for index, result in sorted(results.items())]
        print(format_table(
            ["trial", "seed", "energy", "objective", "feasible", "time"], rows))
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    dest = CampaignStore(args.dest)
    total_runs = total_trials = 0
    for source in args.sources:
        added = dest.merge(CampaignStore(source, create=False))
        print(f"merged {source}: +{added['runs']} run(s), "
              f"+{added['trials']} trial(s)")
        total_runs += added["runs"]
        total_trials += added["trials"]
    print(f"{args.dest}: {len(dest.runs())} run(s) total "
          f"(+{total_runs} runs, +{total_trials} trials)")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    store = CampaignStore(args.store, create=False)
    rows = store.export_csv(args.output)
    print(f"wrote {rows} trial row(s) to {args.output}")
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "inspect": _cmd_inspect,
    "merge": _cmd_merge,
    "export-csv": _cmd_export,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        print(str(error))
        return 1
    except StoreError as error:
        print(f"store error: {error}")
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal, not an error.
        sys.stderr.close()
        return 0

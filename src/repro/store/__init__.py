"""Checkpointed, resumable campaign store -- the persistence layer.

Sits between the runtime and the studies (Device -> Array -> Algorithm ->
Engine -> Runtime -> **Store** -> Studies): every trial the runtime completes
can be appended to a :class:`CampaignStore` as one JSONL line, addressed by a
deterministic run key, and an interrupted paper-scale sweep resumes from
those records instead of restarting -- ``run_trials(..., store=store)`` and
``run_campaign(..., store=store)`` skip already-persisted trials and produce
aggregates identical to an uninterrupted run (modulo wall-clock timing
fields, exactly like :func:`repro.runtime.executor.replay_trial`).

``python -m repro.store`` is the results CLI: ``list`` / ``inspect`` /
``merge`` / ``export-csv`` over store directories.
"""

from repro.store.schema import (
    STORE_FORMAT_VERSION,
    RunManifest,
    StoreError,
    canonical_json,
    canonical_value,
    deserialize_campaign_record,
    deserialize_solve_result,
    deserialize_trial_batch,
    initial_states_hash,
    manifest_for_run,
    serialize_campaign_record,
    serialize_solve_result,
    serialize_trial_batch,
    trial_run_key,
)
from repro.store.store import EXPORT_CSV_COLUMNS, CampaignStore

__all__ = [
    "CampaignStore",
    "EXPORT_CSV_COLUMNS",
    "RunManifest",
    "STORE_FORMAT_VERSION",
    "StoreError",
    "canonical_json",
    "canonical_value",
    "deserialize_campaign_record",
    "deserialize_solve_result",
    "deserialize_trial_batch",
    "initial_states_hash",
    "manifest_for_run",
    "serialize_campaign_record",
    "serialize_solve_result",
    "serialize_trial_batch",
    "trial_run_key",
]

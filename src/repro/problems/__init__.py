"""Combinatorial optimization problem (COP) substrate.

Every COP the paper references is implemented here with a common interface
(:class:`~repro.problems.base.CombinatorialProblem`):

* :class:`~repro.problems.qkp.QuadraticKnapsackProblem` -- the representative
  problem of the paper (Sec. 3.2, Eq. (3)-(4)).
* :class:`~repro.problems.knapsack.KnapsackProblem` -- the linear special case.
* :class:`~repro.problems.maxcut.MaxCutProblem`,
  :class:`~repro.problems.graph_coloring.GraphColoringProblem`,
  :class:`~repro.problems.tsp.TravelingSalesmanProblem`,
  :class:`~repro.problems.bin_packing.BinPackingProblem`,
  :class:`~repro.problems.spin_glass.SherringtonKirkpatrickProblem` --
  the COP classes listed in Table 1 for the solver comparison.
* :mod:`repro.problems.generators` -- random instance generators, including
  the Billionnet-Soutif style QKP generator used in place of the
  cedric.cnam.fr dataset.
* :mod:`repro.problems.io` -- reader/writer for the Billionnet-Soutif QKP
  text format.
* :mod:`repro.problems.orlib` / :mod:`repro.problems.qplib` -- loaders for
  the OR-Library (Beasley) ``mknap`` and QPLIB benchmark formats.
* :mod:`repro.problems.families` -- the registered family catalogue
  (:class:`ProblemFamily`) and campaign-scale instance streams; the
  contract every family is held to by ``tests/conformance``.
"""

from repro.problems.base import CombinatorialProblem
from repro.problems.knapsack import KnapsackProblem
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.problems.multidim_knapsack import (
    MultiDimensionalKnapsackProblem,
    generate_mdqkp_instance,
)
from repro.problems.maxcut import MaxCutProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.tsp import TravelingSalesmanProblem
from repro.problems.bin_packing import BinPackingProblem
from repro.problems.spin_glass import SherringtonKirkpatrickProblem
from repro.problems.generators import (
    generate_bin_packing_instance,
    generate_coloring_instance,
    generate_knapsack_instance,
    generate_maxcut_instance,
    generate_qkp_benchmark_suite,
    generate_qkp_instance,
    generate_sk_instance,
    generate_tsp_instance,
)
from repro.problems.io import read_qkp_file, write_qkp_file
from repro.problems.families import (
    ProblemFamily,
    family_names,
    family_of,
    get_family,
    register_family,
    stream_instances,
)
from repro.problems.orlib import (
    read_orlib_file,
    read_orlib_knapsack,
    write_orlib_file,
)
from repro.problems.qplib import read_qplib_file, write_qplib_file

__all__ = [
    "CombinatorialProblem",
    "KnapsackProblem",
    "QuadraticKnapsackProblem",
    "MultiDimensionalKnapsackProblem",
    "generate_mdqkp_instance",
    "MaxCutProblem",
    "GraphColoringProblem",
    "TravelingSalesmanProblem",
    "BinPackingProblem",
    "SherringtonKirkpatrickProblem",
    "ProblemFamily",
    "register_family",
    "get_family",
    "family_names",
    "family_of",
    "stream_instances",
    "generate_qkp_instance",
    "generate_qkp_benchmark_suite",
    "generate_knapsack_instance",
    "generate_maxcut_instance",
    "generate_coloring_instance",
    "generate_bin_packing_instance",
    "generate_tsp_instance",
    "generate_sk_instance",
    "read_qkp_file",
    "write_qkp_file",
    "read_orlib_file",
    "read_orlib_knapsack",
    "write_orlib_file",
    "read_qplib_file",
    "write_qplib_file",
]

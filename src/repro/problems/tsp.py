"""Traveling Salesman Problem (TSP) QUBO encoding (Table 1 "TSP" row).

The standard permutation-matrix encoding is used: ``x_{v,t} = 1`` iff city
``v`` is visited at tour position ``t``.  Two families of one-hot equality
constraints (each city visited once, each position filled once) plus the tour
length objective:

    H = A * sum_v (1 - sum_t x_{v,t})^2
      + A * sum_t (1 - sum_v x_{v,t})^2
      + sum_{u,v} d_uv sum_t x_{u,t} x_{v,t+1}

Variable layout: ``x[v * n + t]`` is city ``v`` at position ``t`` (``n``
cities, ``n`` positions, positions wrap around).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.core.constraints import EqualityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO
from repro.problems.base import CombinatorialProblem


@dataclass
class TravelingSalesmanProblem(CombinatorialProblem):
    """Symmetric TSP with a full distance matrix."""

    distances: np.ndarray
    penalty: float = 0.0
    name: str = "tsp"

    problem_class = "Traveling Salesman"
    is_maximization = False

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=float)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise ValueError(f"distance matrix must be square, got {d.shape}")
        if not np.allclose(d, d.T):
            raise ValueError("distance matrix must be symmetric")
        if np.any(np.diag(d) != 0):
            raise ValueError("distance matrix diagonal must be zero")
        if np.any(d < 0):
            raise ValueError("distances must be non-negative")
        self.distances = d
        if self.penalty <= 0:
            # A safe default: larger than the longest possible tour edge sum
            # contribution of a single variable flip.
            self.penalty = float(2.0 * d.max() * d.shape[0] + 1.0)

    @property
    def num_cities(self) -> int:
        """Number of cities ``n``."""
        return self.distances.shape[0]

    @property
    def num_variables(self) -> int:
        return self.num_cities ** 2

    def variable_index(self, city: int, position: int) -> int:
        """Flat index of variable (city, tour position)."""
        n = self.num_cities
        if not 0 <= city < n or not 0 <= position < n:
            raise IndexError("city or position out of range")
        return city * n + position

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def encode_tour(self, tour: Iterable[int]) -> np.ndarray:
        """One-hot encode a permutation of cities."""
        order = list(tour)
        n = self.num_cities
        if sorted(order) != list(range(n)):
            raise ValueError("tour must be a permutation of all cities")
        x = np.zeros(self.num_variables)
        for position, city in enumerate(order):
            x[self.variable_index(city, position)] = 1.0
        return x

    def decode_tour(self, x: Iterable[float]) -> List[int]:
        """City visited at each position (raises if not a valid permutation)."""
        vec = self._validate(x)
        n = self.num_cities
        tour: List[int] = []
        for position in range(n):
            cities = [city for city in range(n) if vec[self.variable_index(city, position)] == 1]
            if len(cities) != 1:
                raise ValueError(f"position {position} has {len(cities)} cities assigned")
            tour.append(cities[0])
        if sorted(tour) != list(range(n)):
            raise ValueError("decoded assignment is not a permutation")
        return tour

    def tour_length(self, tour: Iterable[int]) -> float:
        """Closed-tour length of a city permutation."""
        order = list(tour)
        n = self.num_cities
        if sorted(order) != list(range(n)):
            raise ValueError("tour must be a permutation of all cities")
        return float(sum(self.distances[order[t], order[(t + 1) % n]] for t in range(n)))

    # ------------------------------------------------------------------ #
    # CombinatorialProblem interface
    # ------------------------------------------------------------------ #
    def objective(self, x: Iterable[float]) -> float:
        """Tour length of a valid permutation-encoded configuration."""
        return self.tour_length(self.decode_tour(x))

    def is_feasible(self, x: Iterable[float]) -> bool:
        vec = self._validate(x)
        try:
            self.decode_tour(vec)
        except ValueError:
            return False
        return True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised permutation check over an ``(M, n^2)`` batch.

        A configuration is feasible iff its ``(n, n)`` city-by-position grid
        is a permutation matrix: every position has exactly one city and
        every city exactly one position (together those imply the decoded
        tour is a permutation).
        """
        batch = self._validate_batch(configurations)
        n = self.num_cities
        grid = batch.reshape(batch.shape[0], n, n)
        one_position_per_city = (grid.sum(axis=2) == 1).all(axis=1)
        one_city_per_position = (grid.sum(axis=1) == 1).all(axis=1)
        return one_position_per_city & one_city_per_position

    def permutation_constraints(self) -> Tuple[EqualityConstraint, ...]:
        """Row (per-city) and column (per-position) one-hot equality constraints."""
        n = self.num_cities
        constraints = []
        for city in range(n):
            weights = np.zeros(self.num_variables)
            for position in range(n):
                weights[self.variable_index(city, position)] = 1.0
            constraints.append(EqualityConstraint(weights, 1.0, name=f"city-{city}"))
        for position in range(n):
            weights = np.zeros(self.num_variables)
            for city in range(n):
                weights[self.variable_index(city, position)] = 1.0
            constraints.append(EqualityConstraint(weights, 1.0, name=f"pos-{position}"))
        return tuple(constraints)

    def distance_qubo(self) -> QUBOModel:
        """QUBO of the tour-length term only."""
        n = self.num_cities
        q = np.zeros((self.num_variables, self.num_variables))
        for u in range(n):
            for v in range(n):
                if u == v:
                    continue
                d = self.distances[u, v]
                if d == 0:
                    continue
                for t in range(n):
                    a = self.variable_index(u, t)
                    b = self.variable_index(v, (t + 1) % n)
                    q[min(a, b), max(a, b)] += d
        return QUBOModel(q)

    def to_qubo(self) -> QUBOModel:
        """Full penalty QUBO (distance + both one-hot penalty families)."""
        n = self.num_cities
        q = self.distance_qubo().matrix.copy()
        offset = 0.0
        a_pen = self.penalty
        groups = []
        for city in range(n):
            groups.append([self.variable_index(city, t) for t in range(n)])
        for position in range(n):
            groups.append([self.variable_index(c, position) for c in range(n)])
        for indices in groups:
            offset += a_pen
            for idx in indices:
                q[idx, idx] += -a_pen
            for i, a in enumerate(indices):
                for b in indices[i + 1:]:
                    q[min(a, b), max(a, b)] += 2.0 * a_pen
        return QUBOModel(q, offset=offset)

    def to_inequality_qubo(self) -> InequalityQUBO:
        """Distance QUBO with detached permutation equality constraints."""
        return InequalityQUBO(qubo=self.distance_qubo(),
                              constraints=self.permutation_constraints())

    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Random tour (always feasible by construction)."""
        return self.encode_tour(rng.permutation(self.num_cities))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TravelingSalesmanProblem(name={self.name!r}, cities={self.num_cities})"

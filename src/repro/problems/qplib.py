"""Reader/writer for the binary-quadratic subset of the QPLIB format.

QPLIB (qplib.zib.de; Furini et al., *QPLIB: a library of quadratic
programming instances*) stores quadratic programs as a sectioned text file.
This module supports the subset that maps onto the knapsack families —
problem type ``QBL``/``LBL`` (quadratic/linear objective, binary variables,
linear constraints) with finite constraint upper bounds:

    ! comment lines start with '!'
    <name>
    <problem type>              QBL or LBL
    <sense>                     minimize | maximize
    <n>                         number of variables
    <m>                         number of constraints
    <nnz Q>                     quadratic objective entries (QBL only)
    i j Q_ij                    1-based, lower triangle of Q in 1/2 x'Qx
    <default b>                 default linear objective coefficient
    <nnz b>                     non-default linear coefficients
    i b_i
    <objective constant>
    <nnz A>                     constraint matrix entries
    row col A_rc                1-based
    <infinity>                  the file's infinity marker
    <default c_l> <nnz c_l>     constraint lower bounds (pairs i value)
    <default c_u> <nnz c_u>     constraint upper bounds (pairs i value)

Objective convention is QPLIB's ``1/2 x'Qx + b'x + const``; on binary
variables the diagonal contributes ``Q_ii / 2 * x_i``.  Constraints must
reduce to ``A x <= c_u`` (every lower bound -infinity, every upper bound
finite) with non-negative rows and positive bounds — anything else is
outside the HyCiM inequality form and raises a loud :class:`ValueError`,
as does any truncated or trailing token (no silent truncation).

Mapping: ``m == 1`` with a diagonal-only objective loads as
:class:`KnapsackProblem`, ``m == 1`` with pairwise terms as
:class:`QuadraticKnapsackProblem`, ``m > 1`` as
:class:`MultiDimensionalKnapsackProblem`.  A ``minimize`` sense is loaded
by negating the objective (the knapsack families maximise).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.problems.knapsack import KnapsackProblem
from repro.problems.multidim_knapsack import MultiDimensionalKnapsackProblem
from repro.problems.orlib import _TokenStream
from repro.problems.qkp import QuadraticKnapsackProblem

QplibProblem = Union[KnapsackProblem, QuadraticKnapsackProblem,
                     MultiDimensionalKnapsackProblem]

_SUPPORTED_TYPES = {"QBL", "LBL"}


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("!", 1)[0] for line in text.splitlines())


def _next_index(stream: _TokenStream, what: str, upper: int) -> int:
    value = stream.next_int(what)
    if not 1 <= value <= upper:
        raise ValueError(f"{what} index {value} out of range 1..{upper}")
    return value - 1


def read_qplib_file(path: Union[str, Path]) -> QplibProblem:
    """Read a binary-quadratic QPLIB instance into a knapsack-family problem."""
    text = _strip_comments(Path(path).read_text())
    stream = _TokenStream(path, text)
    tokens = text.split()
    if not tokens:
        raise ValueError(f"{path}: empty QPLIB file")
    name = tokens[0]
    stream._pos = 1  # the name token is free-form, not a number
    type_token = tokens[1] if len(tokens) > 1 else ""
    problem_type = type_token.upper()
    if problem_type not in _SUPPORTED_TYPES:
        raise ValueError(
            f"{path}: problem type {type_token!r} is outside the supported "
            f"QPLIB subset ({sorted(_SUPPORTED_TYPES)}: binary variables, "
            "linear constraints)")
    stream._pos = 2
    sense_token = tokens[2] if len(tokens) > 2 else ""
    sense = sense_token.lower()
    if sense not in ("minimize", "maximize"):
        raise ValueError(f"{path}: unknown objective sense {sense_token!r}")
    stream._pos = 3

    n = stream.next_int("variable count")
    m = stream.next_int("constraint count")
    if n < 1:
        raise ValueError(f"{path}: variable count must be positive, got {n}")
    if m < 1:
        raise ValueError(
            f"{path}: instance has no constraints; the knapsack-family "
            "subset needs at least one inequality")

    profits = np.zeros((n, n))
    if problem_type == "QBL":
        nnz_q = stream.next_int("quadratic objective entry count")
        for k in range(nnz_q):
            i = _next_index(stream, f"quadratic entry {k} row", n)
            j = _next_index(stream, f"quadratic entry {k} col", n)
            value = stream.next_float(f"quadratic entry {k} value")
            if j > i:
                raise ValueError(
                    f"{path}: quadratic entry {k} ({i + 1}, {j + 1}) is above "
                    "the diagonal; QPLIB stores the lower triangle")
            if i == j:
                # 1/2 Q_ii x_i^2 = (Q_ii / 2) x_i on binaries.
                profits[i, i] += value / 2.0
            else:
                # Symmetric pair (i,j)+(j,i) contributes Q_ij x_i x_j.
                profits[i, j] += value
                profits[j, i] += value
    default_b = stream.next_float("default linear coefficient")
    profits[np.diag_indices(n)] += default_b
    nnz_b = stream.next_int("non-default linear coefficient count")
    for k in range(nnz_b):
        i = _next_index(stream, f"linear coefficient {k} index", n)
        value = stream.next_float(f"linear coefficient {k} value")
        profits[i, i] += value - default_b
    stream.next_float("objective constant")  # irrelevant to the argmax

    weights = np.zeros((m, n))
    nnz_a = stream.next_int("constraint matrix entry count")
    for k in range(nnz_a):
        row = _next_index(stream, f"constraint entry {k} row", m)
        col = _next_index(stream, f"constraint entry {k} col", n)
        weights[row, col] = stream.next_float(f"constraint entry {k} value")
    infinity = stream.next_float("infinity marker")

    lower = np.full(m, -infinity)
    default_cl = stream.next_float("default constraint lower bound")
    lower[:] = default_cl
    nnz_cl = stream.next_int("non-default constraint lower bound count")
    for k in range(nnz_cl):
        i = _next_index(stream, f"constraint lower bound {k} index", m)
        lower[i] = stream.next_float(f"constraint lower bound {k} value")

    upper = np.empty(m)
    default_cu = stream.next_float("default constraint upper bound")
    upper[:] = default_cu
    nnz_cu = stream.next_int("non-default constraint upper bound count")
    for k in range(nnz_cu):
        i = _next_index(stream, f"constraint upper bound {k} index", m)
        upper[i] = stream.next_float(f"constraint upper bound {k} value")
    stream.expect_exhausted()

    if np.any(lower > -infinity + 1e-12):
        raise ValueError(
            f"{path}: finite constraint lower bounds are outside the "
            "supported A x <= c_u subset")
    if np.any(np.abs(upper) >= infinity - 1e-12):
        raise ValueError(f"{path}: every constraint needs a finite upper bound")
    if np.any(weights < 0):
        raise ValueError(
            f"{path}: negative constraint coefficients are outside the "
            "knapsack-family subset (weights must be non-negative)")
    if np.any(upper <= 0):
        raise ValueError(f"{path}: constraint upper bounds must be positive")

    if sense == "minimize":
        profits = -profits
    label = name or Path(path).stem

    if m > 1:
        return MultiDimensionalKnapsackProblem(
            profits=profits, weights=weights, capacities=upper, name=label)
    if np.any(np.triu(profits, k=1) != 0):
        return QuadraticKnapsackProblem(
            profits=profits, weights=weights[0], capacity=float(upper[0]),
            name=label)
    return KnapsackProblem(profits=np.diag(profits).copy(), weights=weights[0],
                           capacity=float(upper[0]), name=label)


def write_qplib_file(problem: QplibProblem, path: Union[str, Path],
                     infinity: float = 1e20) -> None:
    """Write a knapsack-family instance in the QPLIB subset layout.

    Always emits ``maximize`` sense with type ``QBL`` (quadratic binary,
    linear constraints); :func:`read_qplib_file` round-trips the result to
    an instance with the same :func:`repro.problems.io.content_hash`.
    """
    from repro.problems.io import _format_number

    profits = np.asarray(problem.profits, dtype=float)
    if profits.ndim == 1:
        profits = np.diag(profits)
    if hasattr(problem, "capacities"):
        weights = np.asarray(problem.weights, dtype=float)
        capacities = np.asarray(problem.capacities, dtype=float)
    else:
        weights = np.asarray(problem.weights, dtype=float)[None, :]
        capacities = np.array([problem.capacity], dtype=float)
    n = profits.shape[0]
    m = weights.shape[0]

    lines: List[str] = [
        problem.name.replace(" ", "_") or "instance",
        "QBL",
        "maximize",
        str(n),
        str(m),
    ]
    quad_entries = []
    for i in range(n):
        if profits[i, i] != 0:
            # Diagonal of 1/2 x'Qx: Q_ii = 2 p_ii.
            quad_entries.append((i, i, 2.0 * profits[i, i]))
        for j in range(i):
            if profits[i, j] != 0:
                quad_entries.append((i, j, profits[i, j]))
    lines.append(str(len(quad_entries)))
    for i, j, value in quad_entries:
        lines.append(f"{i + 1} {j + 1} {_format_number(value)}")
    lines.append("0")  # default linear coefficient
    lines.append("0")  # no non-default linear coefficients
    lines.append("0")  # objective constant
    a_entries = [(r, c, weights[r, c]) for r in range(m) for c in range(n)
                 if weights[r, c] != 0]
    lines.append(str(len(a_entries)))
    for r, c, value in a_entries:
        lines.append(f"{r + 1} {c + 1} {_format_number(value)}")
    lines.append(_format_number(infinity))
    lines.append(_format_number(-infinity))  # default constraint lower bound
    lines.append("0")
    lines.append("0")  # default constraint upper bound (all non-default)
    lines.append(str(m))
    for r in range(m):
        lines.append(f"{r + 1} {_format_number(capacities[r])}")
    Path(path).write_text("\n".join(lines) + "\n")

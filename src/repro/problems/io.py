"""Reader/writer for the Billionnet-Soutif QKP benchmark file format.

The cedric.cnam.fr instances the paper evaluates on (reference [28]) use a
simple text layout:

    <reference line / instance name>
    <n>
    <linear profits: n integers on one line>
    <quadratic profits: upper triangle without diagonal,
     row i has n-1-i integers, one row per line>
    <blank line>
    <0 or 1: constraint type flag (0 = inequality knapsack constraint)>
    <capacity>
    <weights: n integers on one line>

This module parses and emits that layout so synthetic instances produced by
:func:`repro.problems.generators.generate_qkp_instance` can be stored in the
same format and, conversely, original benchmark files can be loaded when
available.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

import numpy as np

from repro.problems.qkp import QuadraticKnapsackProblem


def write_qkp_file(problem: QuadraticKnapsackProblem, path: Union[str, Path]) -> None:
    """Write a QKP instance in the Billionnet-Soutif text format."""
    n = problem.num_items
    lines: List[str] = [problem.name, str(n)]
    diagonal = np.diag(problem.profits).astype(int)
    lines.append(" ".join(str(int(v)) for v in diagonal))
    for i in range(n - 1):
        row = problem.profits[i, i + 1:].astype(int)
        lines.append(" ".join(str(int(v)) for v in row))
    lines.append("")
    lines.append("0")
    lines.append(str(int(problem.capacity)))
    lines.append(" ".join(str(int(w)) for w in problem.weights.astype(int)))
    Path(path).write_text("\n".join(lines) + "\n")


def read_qkp_file(path: Union[str, Path]) -> QuadraticKnapsackProblem:
    """Read a QKP instance written in the Billionnet-Soutif text format."""
    raw_lines = Path(path).read_text().splitlines()
    if len(raw_lines) < 4:
        raise ValueError(f"{path}: too few lines for a QKP instance")
    name = raw_lines[0].strip()
    n = int(raw_lines[1].strip())
    if n < 1:
        raise ValueError(f"{path}: invalid item count {n}")

    def parse_ints(line: str) -> List[int]:
        return [int(token) for token in line.split()]

    diagonal = parse_ints(raw_lines[2])
    if len(diagonal) != n:
        raise ValueError(f"{path}: expected {n} linear profits, got {len(diagonal)}")

    profits = np.zeros((n, n))
    np.fill_diagonal(profits, diagonal)
    cursor = 3
    for i in range(n - 1):
        if cursor >= len(raw_lines):
            raise ValueError(
                f"{path}: file truncated inside the quadratic-profit rows "
                f"(row {i} of {n - 1} missing)"
            )
        row = parse_ints(raw_lines[cursor])
        expected = n - 1 - i
        if len(row) != expected:
            raise ValueError(
                f"{path}: row {i} of quadratic profits has {len(row)} entries, expected {expected}"
            )
        for offset, value in enumerate(row):
            j = i + 1 + offset
            profits[i, j] = value
            profits[j, i] = value
        cursor += 1

    # Skip blank separator lines and the constraint-type flag.
    while cursor < len(raw_lines) and not raw_lines[cursor].strip():
        cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing constraint-type flag")
    constraint_flag = int(raw_lines[cursor].strip())
    if constraint_flag not in (0, 1):
        raise ValueError(f"{path}: unexpected constraint-type flag {constraint_flag}")
    cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing capacity line")
    capacity = float(raw_lines[cursor].strip())
    cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing weights line")
    weights = parse_ints(raw_lines[cursor])
    if len(weights) != n:
        raise ValueError(f"{path}: expected {n} weights, got {len(weights)}")

    return QuadraticKnapsackProblem(
        profits=profits,
        weights=np.asarray(weights, dtype=float),
        capacity=capacity,
        name=name or Path(path).stem,
    )

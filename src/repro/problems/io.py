"""Reader/writer for the Billionnet-Soutif QKP benchmark file format.

The cedric.cnam.fr instances the paper evaluates on (reference [28]) use a
simple text layout:

    <reference line / instance name>
    <n>
    <linear profits: n integers on one line>
    <quadratic profits: upper triangle without diagonal,
     row i has n-1-i integers, one row per line>
    <blank line>
    <0 or 1: constraint type flag (0 = inequality knapsack constraint)>
    <capacity>
    <weights: n integers on one line>

This module parses and emits that layout so synthetic instances produced by
:func:`repro.problems.generators.generate_qkp_instance` can be stored in the
same format and, conversely, original benchmark files can be loaded when
available.

It also provides :func:`content_hash`, the deterministic content address of a
problem instance used by :mod:`repro.store` to key persisted trial results:
two instances hash identically exactly when their mathematical content is
identical, regardless of array dtype, attribute ordering, or instance name.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, List, Union

import numpy as np

from repro.problems.base import CombinatorialProblem
from repro.problems.qkp import QuadraticKnapsackProblem


def _format_number(value: float) -> str:
    """Render a benchmark-file number: integers as integers, everything else
    via ``repr`` (shortest round-trip float formatting).

    The Billionnet-Soutif layout is integer-valued, but silently truncating a
    non-integral capacity or weight with ``int()`` would make a saved
    instance hash differently from the loaded one; preserving the exact value
    keeps :func:`content_hash` stable across a save/load round trip.
    """
    value = float(value)
    if value.is_integer():
        return str(int(value))
    return repr(value)


def write_qkp_file(problem: QuadraticKnapsackProblem, path: Union[str, Path]) -> None:
    """Write a QKP instance in the Billionnet-Soutif text format."""
    n = problem.num_items
    lines: List[str] = [problem.name, str(n)]
    diagonal = np.diag(problem.profits)
    lines.append(" ".join(_format_number(v) for v in diagonal))
    for i in range(n - 1):
        row = problem.profits[i, i + 1:]
        lines.append(" ".join(_format_number(v) for v in row))
    lines.append("")
    lines.append("0")
    lines.append(_format_number(problem.capacity))
    lines.append(" ".join(_format_number(w) for w in problem.weights))
    Path(path).write_text("\n".join(lines) + "\n")


def read_qkp_file(path: Union[str, Path]) -> QuadraticKnapsackProblem:
    """Read a QKP instance written in the Billionnet-Soutif text format."""
    raw_lines = Path(path).read_text().splitlines()
    if len(raw_lines) < 4:
        raise ValueError(f"{path}: too few lines for a QKP instance")
    name = raw_lines[0].strip()
    n = int(raw_lines[1].strip())
    if n < 1:
        raise ValueError(f"{path}: invalid item count {n}")

    def parse_ints(line: str) -> List[float]:
        # Values are integers in the original benchmark files, but instances
        # saved by write_qkp_file may carry exact non-integral floats.
        return [float(token) for token in line.split()]

    diagonal = parse_ints(raw_lines[2])
    if len(diagonal) != n:
        raise ValueError(f"{path}: expected {n} linear profits, got {len(diagonal)}")

    profits = np.zeros((n, n))
    np.fill_diagonal(profits, diagonal)
    cursor = 3
    for i in range(n - 1):
        if cursor >= len(raw_lines):
            raise ValueError(
                f"{path}: file truncated inside the quadratic-profit rows "
                f"(row {i} of {n - 1} missing)"
            )
        row = parse_ints(raw_lines[cursor])
        expected = n - 1 - i
        if len(row) != expected:
            raise ValueError(
                f"{path}: row {i} of quadratic profits has {len(row)} entries, expected {expected}"
            )
        for offset, value in enumerate(row):
            j = i + 1 + offset
            profits[i, j] = value
            profits[j, i] = value
        cursor += 1

    # Skip blank separator lines and the constraint-type flag.
    while cursor < len(raw_lines) and not raw_lines[cursor].strip():
        cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing constraint-type flag")
    constraint_flag = int(raw_lines[cursor].strip())
    if constraint_flag not in (0, 1):
        raise ValueError(f"{path}: unexpected constraint-type flag {constraint_flag}")
    cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing capacity line")
    capacity = float(raw_lines[cursor].strip())
    cursor += 1
    if cursor >= len(raw_lines):
        raise ValueError(f"{path}: missing weights line")
    weights = parse_ints(raw_lines[cursor])
    if len(weights) != n:
        raise ValueError(f"{path}: expected {n} weights, got {len(weights)}")

    return QuadraticKnapsackProblem(
        profits=profits,
        weights=np.asarray(weights, dtype=float),
        capacity=capacity,
        name=name or Path(path).stem,
    )


# --------------------------------------------------------------------- #
# Content addressing
# --------------------------------------------------------------------- #
def _canonical_content(value: Any) -> Any:
    """Reduce a problem attribute to a canonical JSON-serializable form.

    Arrays are normalised to float64 nested lists (so int/float dtypes of the
    same values hash identically), mappings are rendered with sorted keys by
    the JSON encoder, and tuples/sets become lists (sets sorted by their JSON
    rendering to erase iteration order).

    Deliberately distinct from :func:`repro.store.schema.canonical_value`
    despite the family resemblance: content addressing erases representation
    (dtype, int vs float) because a capacity of ``10`` *is* a capacity of
    ``10.0``, while solver-params canonicalization preserves value fidelity.
    Keep the two in sync when touching shared concerns (set ordering, numpy
    scalars, nested containers).
    """
    if isinstance(value, np.ndarray) or (
            isinstance(value, (list, tuple)) and value
            and all(isinstance(v, (int, float, np.integer, np.floating))
                    for v in value)):
        array = np.asarray(value, dtype=np.float64)
        return {"shape": list(array.shape), "values": array.ravel().tolist()}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(key): _canonical_content(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_content(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted((_canonical_content(v) for v in value),
                      key=lambda v: json.dumps(v, sort_keys=True))
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, float)):
        # A capacity of 10 and of 10.0 are the same content.
        return float(value)
    state = getattr(value, "__dict__", None)
    if state is not None:
        # Canonicalize objects from their public attributes -- a default
        # repr() embeds the memory address, which would give the instance a
        # fresh content hash in every process and silently defeat store
        # resume.
        return {"__class__": type(value).__name__,
                "state": {key: _canonical_content(val)
                          for key, val in sorted(state.items())
                          if not key.startswith("_")}}
    return repr(value)


def content_hash(problem: CombinatorialProblem) -> str:
    """Deterministic SHA-256 content address of a problem instance.

    Hashes the problem's class and public data attributes -- arrays
    normalised to float64, mappings key-sorted -- so the digest is stable
    across attribute insertion order, array dtype and process restarts.  The
    instance ``name`` is deliberately *excluded*: the hash addresses the
    mathematical content, so a renamed copy of an instance still resolves to
    the same persisted trial results in a :class:`repro.store.CampaignStore`.
    """
    fields = {
        key: _canonical_content(value)
        for key, value in sorted(vars(problem).items())
        if not key.startswith("_") and key != "name"
    }
    payload = {"class": type(problem).__name__, "fields": fields}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                         allow_nan=True)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

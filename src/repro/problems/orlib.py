"""Reader/writer for the OR-Library (Beasley) multi-knapsack file format.

The OR-Library ``mknap`` files (people.brunel.ac.uk/~mastjjb/jeb/orlib)
store one or more linear multi-dimensional knapsack instances as a single
whitespace-separated token stream:

    K                           number of instances in the file
    for each instance:
      n m opt                   items, constraints, known optimum (0 = unknown)
      p_1 ... p_n               profits
      w_11 ... w_1n             constraint 1 weights
      ...
      w_m1 ... w_mn             constraint m weights
      C_1 ... C_m               capacities

Line breaks are not significant — values for one section routinely span
several lines — so parsing is token-stream based, and every premature end
of stream or leftover token is a loud :class:`ValueError` naming the
section being read (no silent truncation; the same discipline as
:mod:`repro.problems.io`).

Instances load as :class:`~repro.problems.knapsack.KnapsackProblem` when
``m == 1`` and as
:class:`~repro.problems.multidim_knapsack.MultiDimensionalKnapsackProblem`
(with a diagonal profit matrix) otherwise.  The known optimum, when the
file records one, lands in ``optimal_values`` of :func:`read_orlib_file`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.problems.knapsack import KnapsackProblem
from repro.problems.multidim_knapsack import MultiDimensionalKnapsackProblem

OrlibProblem = Union[KnapsackProblem, MultiDimensionalKnapsackProblem]


class _TokenStream:
    """Whitespace token stream with position-aware truncation errors."""

    def __init__(self, path: Union[str, Path], text: str) -> None:
        self._path = str(path)
        self._tokens = text.split()
        self._pos = 0

    def next_float(self, what: str) -> float:
        if self._pos >= len(self._tokens):
            raise ValueError(
                f"{self._path}: file truncated while reading {what} "
                f"(token {self._pos + 1})")
        token = self._tokens[self._pos]
        self._pos += 1
        try:
            return float(token)
        except ValueError as error:
            raise ValueError(
                f"{self._path}: expected a number for {what}, got {token!r} "
                f"(token {self._pos})") from error

    def next_int(self, what: str) -> int:
        value = self.next_float(what)
        if not float(value).is_integer():
            raise ValueError(
                f"{self._path}: expected an integer for {what}, got {value!r}")
        return int(value)

    def next_floats(self, count: int, what: str) -> np.ndarray:
        return np.array([self.next_float(f"{what} [{i}]") for i in range(count)],
                        dtype=float)

    def expect_exhausted(self) -> None:
        if self._pos < len(self._tokens):
            leftover = len(self._tokens) - self._pos
            raise ValueError(
                f"{self._path}: {leftover} unread token(s) after the last "
                f"instance (starting with {self._tokens[self._pos]!r}) -- "
                "corrupt file or wrong instance count")


def _build_problem(profits: np.ndarray, weights: np.ndarray,
                   capacities: np.ndarray, name: str) -> OrlibProblem:
    if weights.shape[0] == 1:
        return KnapsackProblem(profits=profits, weights=weights[0],
                               capacity=float(capacities[0]), name=name)
    return MultiDimensionalKnapsackProblem(
        profits=np.diag(profits), weights=weights, capacities=capacities,
        name=name)


def read_orlib_file(
    path: Union[str, Path],
) -> Tuple[List[OrlibProblem], List[Optional[float]]]:
    """Read every instance in an OR-Library ``mknap`` file.

    Returns ``(problems, optimal_values)`` where ``optimal_values[k]`` is the
    file's recorded optimum for instance ``k`` (``None`` when recorded as 0,
    the format's "unknown" marker).
    """
    text = Path(path).read_text()
    stream = _TokenStream(path, text)
    num_instances = stream.next_int("instance count")
    if num_instances < 1:
        raise ValueError(f"{path}: instance count must be positive, got {num_instances}")
    stem = Path(path).stem
    problems: List[OrlibProblem] = []
    optima: List[Optional[float]] = []
    for k in range(num_instances):
        where = f"instance {k}"
        n = stream.next_int(f"{where} item count")
        m = stream.next_int(f"{where} constraint count")
        if n < 1 or m < 1:
            raise ValueError(
                f"{path}: {where} has invalid dimensions n={n}, m={m}")
        optimum = stream.next_float(f"{where} known optimum")
        profits = stream.next_floats(n, f"{where} profits")
        weights = np.vstack([
            stream.next_floats(n, f"{where} constraint-{i} weights")
            for i in range(m)
        ])
        capacities = stream.next_floats(m, f"{where} capacities")
        problems.append(_build_problem(profits, weights, capacities,
                                       name=f"{stem}_{k}"))
        optima.append(float(optimum) if optimum != 0 else None)
    stream.expect_exhausted()
    return problems, optima


def read_orlib_knapsack(path: Union[str, Path], index: int = 0) -> OrlibProblem:
    """Read one instance (by position) from an OR-Library ``mknap`` file."""
    problems, _ = read_orlib_file(path)
    if not 0 <= index < len(problems):
        raise IndexError(
            f"{path}: instance index {index} out of range (file has "
            f"{len(problems)} instance(s))")
    return problems[index]


def _linear_profits(problem: OrlibProblem) -> np.ndarray:
    profits = np.asarray(problem.profits, dtype=float)
    if profits.ndim == 1:
        return profits
    if np.any(np.triu(profits, k=1) != 0):
        raise ValueError(
            f"instance {problem.name!r} has quadratic (pairwise) profits; "
            "the OR-Library mknap format is linear -- use write_qplib_file")
    return np.diag(profits)


def write_orlib_file(problems: Sequence[OrlibProblem],
                     path: Union[str, Path],
                     optimal_values: Optional[Sequence[Optional[float]]] = None,
                     ) -> None:
    """Write linear (MD-)knapsack instances in the OR-Library ``mknap`` layout.

    ``optimal_values`` mirrors :func:`read_orlib_file`'s second return value;
    ``None`` entries are stored as the format's 0 = unknown marker.  Numbers
    are rendered with the shortest exact representation (integers as
    integers) so a parse→write→parse round trip preserves
    :func:`repro.problems.io.content_hash`.
    """
    from repro.problems.io import _format_number

    problems = list(problems)
    if not problems:
        raise ValueError("cannot write an empty OR-Library file")
    if optimal_values is None:
        optimal_values = [None] * len(problems)
    if len(optimal_values) != len(problems):
        raise ValueError("optimal_values length must match problems")
    lines: List[str] = [str(len(problems))]
    for problem, optimum in zip(problems, optimal_values):
        profits = _linear_profits(problem)
        weights = np.atleast_2d(np.asarray(problem.weights, dtype=float))
        capacities = (np.atleast_1d(np.asarray(problem.capacities, dtype=float))
                      if hasattr(problem, "capacities")
                      else np.array([problem.capacity], dtype=float))
        n, m = profits.shape[0], weights.shape[0]
        lines.append(f"{n} {m} {_format_number(optimum or 0.0)}")
        lines.append(" ".join(_format_number(v) for v in profits))
        for row in weights:
            lines.append(" ".join(_format_number(v) for v in row))
        lines.append(" ".join(_format_number(v) for v in capacities))
    Path(path).write_text("\n".join(lines) + "\n")

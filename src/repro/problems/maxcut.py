"""Max-Cut problem -- the canonical unconstrained COP (Table 1 baseline row).

Given a weighted undirected graph ``G = (V, E)``, partition the vertices into
two sets so that the total weight of edges crossing the partition is
maximised.  Max-Cut maps to QUBO without any constraints, which is why most
published Ising machines evaluate on it; here it exercises the
"no constraint" path of the HyCiM solver.

Variable layout: ``x_i = 1`` iff vertex ``i`` is in partition 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx
import numpy as np

from repro.core.qubo import QUBOModel
from repro.problems.base import CombinatorialProblem


@dataclass
class MaxCutProblem(CombinatorialProblem):
    """A Max-Cut instance defined by a symmetric weight matrix."""

    adjacency: np.ndarray
    name: str = "maxcut"

    problem_class = "Max-Cut"
    is_maximization = True

    def __post_init__(self) -> None:
        w = np.asarray(self.adjacency, dtype=float)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got {w.shape}")
        if not np.allclose(w, w.T):
            raise ValueError("adjacency matrix must be symmetric")
        if np.any(np.diag(w) != 0):
            raise ValueError("adjacency matrix must have a zero diagonal (no self loops)")
        self.adjacency = w

    @classmethod
    def from_graph(cls, graph: nx.Graph, weight: str = "weight",
                   name: str = "maxcut") -> "MaxCutProblem":
        """Build an instance from a ``networkx`` graph (default edge weight 1)."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        w = np.zeros((n, n))
        for u, v, data in graph.edges(data=True):
            value = float(data.get(weight, 1.0))
            w[index[u], index[v]] = value
            w[index[v], index[u]] = value
        return cls(adjacency=w, name=name)

    @property
    def num_variables(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_nodes(self) -> int:
        """Alias for :attr:`num_variables`."""
        return self.num_variables

    def objective(self, x: Iterable[float]) -> float:
        """Total weight of edges cut by the partition encoded in ``x``."""
        vec = self._validate(x)
        cut = 0.0
        n = self.num_nodes
        for i in range(n):
            for j in range(i + 1, n):
                if self.adjacency[i, j] != 0 and vec[i] != vec[j]:
                    cut += self.adjacency[i, j]
        return float(cut)

    def is_feasible(self, x: Iterable[float]) -> bool:
        """Every binary vector is a valid partition."""
        self._validate(x)
        return True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Every replica is feasible: Max-Cut is unconstrained."""
        batch = self._validate_batch(configurations)
        return np.ones(batch.shape[0], dtype=bool)

    def linear_feasibility_constraints(self) -> tuple:
        """Unconstrained: the empty conjunction."""
        return ()

    def to_sparse_qubo(self):
        """CSR Max-Cut QUBO assembled straight from the edge list.

        Skips the dense ``(n, n)`` intermediate and the Python double loop
        of :meth:`to_qubo`; coefficient values are identical.
        """
        from repro.core.sparse import SparseQUBOModel

        rows, cols = np.nonzero(np.triu(self.adjacency, k=1))
        weights = self.adjacency[rows, cols]
        n = self.num_nodes
        coo_rows = np.concatenate([rows, rows, cols])
        coo_cols = np.concatenate([cols, rows, cols])
        coo_vals = np.concatenate([2.0 * weights, -weights, -weights])
        return SparseQUBOModel.from_coo(coo_rows, coo_cols, coo_vals, n)

    def to_qubo(self) -> QUBOModel:
        """Standard Max-Cut QUBO: ``min sum_{(i,j)} w_ij (2 x_i x_j - x_i - x_j)``.

        The minimum equals minus the maximum cut weight.
        """
        n = self.num_nodes
        q = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                w = self.adjacency[i, j]
                if w == 0:
                    continue
                q[i, j] += 2.0 * w
                q[i, i] += -w
                q[j, j] += -w
        return QUBOModel(q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = int(np.count_nonzero(np.triu(self.adjacency, k=1)))
        return f"MaxCutProblem(name={self.name!r}, nodes={self.num_nodes}, edges={edges})"

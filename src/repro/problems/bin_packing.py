"""Bin packing -- the second COP family with inequality constraints the paper
mentions (Sec. 1, Sec. 2.1).

Given ``n`` items with sizes ``s_i`` and ``m`` bins of capacity ``C``, assign
every item to exactly one bin without exceeding any bin capacity, minimising
the number of bins used.

Variable layout: ``x[i * m + b]`` = item ``i`` assigned to bin ``b``, followed
by ``m`` bin-usage indicator variables ``u_b`` at the end of the vector.

The inequality-QUBO form detaches one capacity inequality per bin (exactly the
structure the FeFET inequality filter evaluates), while the one-hot
"item assigned once" constraints stay as equality constraints handled by the
move generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.core.constraints import EqualityConstraint, InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO
from repro.problems.base import CombinatorialProblem


@dataclass
class BinPackingProblem(CombinatorialProblem):
    """Bin packing with ``m`` identical bins of capacity ``C``."""

    sizes: np.ndarray
    capacity: float
    num_bins: int
    penalty_assign: float = 0.0
    penalty_capacity: float = 0.0
    name: str = "binpacking"

    problem_class = "Bin Packing"
    is_maximization = False

    def __post_init__(self) -> None:
        s = np.asarray(self.sizes, dtype=float)
        if s.ndim != 1:
            raise ValueError("sizes must be a 1-D array")
        if np.any(s <= 0):
            raise ValueError("item sizes must be positive")
        if self.capacity <= 0:
            raise ValueError("bin capacity must be positive")
        if np.any(s > self.capacity):
            raise ValueError("every item must fit in an empty bin")
        if self.num_bins < 1:
            raise ValueError("at least one bin is required")
        self.sizes = s
        self.capacity = float(self.capacity)
        if self.penalty_assign <= 0:
            self.penalty_assign = float(2.0 * self.num_bins + 2.0)
        if self.penalty_capacity <= 0:
            self.penalty_capacity = float(2.0 / max(self.capacity, 1.0))

    @property
    def num_items(self) -> int:
        """Number of items ``n``."""
        return self.sizes.shape[0]

    @property
    def num_variables(self) -> int:
        return self.num_items * self.num_bins + self.num_bins

    def assign_index(self, item: int, bin_id: int) -> int:
        """Flat index of assignment variable (item, bin)."""
        if not 0 <= item < self.num_items or not 0 <= bin_id < self.num_bins:
            raise IndexError("item or bin out of range")
        return item * self.num_bins + bin_id

    def usage_index(self, bin_id: int) -> int:
        """Flat index of the bin-usage indicator ``u_b``."""
        if not 0 <= bin_id < self.num_bins:
            raise IndexError("bin out of range")
        return self.num_items * self.num_bins + bin_id

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #
    def encode(self, assignment: Iterable[int]) -> np.ndarray:
        """Encode an item→bin assignment list; usage bits set consistently."""
        bins = list(assignment)
        if len(bins) != self.num_items:
            raise ValueError("assignment length must equal the number of items")
        x = np.zeros(self.num_variables)
        for item, bin_id in enumerate(bins):
            if not 0 <= bin_id < self.num_bins:
                raise ValueError(f"bin {bin_id} out of range for item {item}")
            x[self.assign_index(item, bin_id)] = 1.0
            x[self.usage_index(bin_id)] = 1.0
        return x

    def decode(self, x: Iterable[float]) -> List[int]:
        """Item→bin assignment (-1 when an item is unassigned or multi-assigned)."""
        vec = self._validate(x)
        assignment: List[int] = []
        for item in range(self.num_items):
            block = [vec[self.assign_index(item, b)] for b in range(self.num_bins)]
            chosen = [b for b, value in enumerate(block) if value == 1]
            assignment.append(chosen[0] if len(chosen) == 1 else -1)
        return assignment

    def bin_loads(self, x: Iterable[float]) -> np.ndarray:
        """Total size assigned to each bin."""
        vec = self._validate(x)
        loads = np.zeros(self.num_bins)
        for item in range(self.num_items):
            for b in range(self.num_bins):
                loads[b] += self.sizes[item] * vec[self.assign_index(item, b)]
        return loads

    # ------------------------------------------------------------------ #
    # CombinatorialProblem interface
    # ------------------------------------------------------------------ #
    def objective(self, x: Iterable[float]) -> float:
        """Number of bins used (indicator variables)."""
        vec = self._validate(x)
        return float(sum(vec[self.usage_index(b)] for b in range(self.num_bins)))

    def is_feasible(self, x: Iterable[float]) -> bool:
        """All items assigned once, capacities respected, usage bits consistent."""
        vec = self._validate(x)
        if -1 in self.decode(vec):
            return False
        loads = self.bin_loads(vec)
        if np.any(loads > self.capacity + 1e-9):
            return False
        for b in range(self.num_bins):
            used = loads[b] > 0
            if used and vec[self.usage_index(b)] != 1:
                return False
        return True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised feasibility over an ``(M, n*m + m)`` batch.

        Mirrors :meth:`is_feasible`: every item one-hot assigned, every bin
        load within capacity, and ``u_b = 1`` for every non-empty bin.
        """
        batch = self._validate_batch(configurations)
        n, m = self.num_items, self.num_bins
        assignments = batch[:, :n * m].reshape(batch.shape[0], n, m)
        usage = batch[:, n * m:]
        assigned_once = (assignments.sum(axis=2) == 1).all(axis=1)
        loads = np.einsum("kim,i->km", assignments, self.sizes)
        within_capacity = (loads <= self.capacity + 1e-9).all(axis=1)
        usage_consistent = ((loads <= 0) | (usage == 1)).all(axis=1)
        return assigned_once & within_capacity & usage_consistent

    def assignment_constraints(self) -> Tuple[EqualityConstraint, ...]:
        """One equality constraint ``sum_b x_{i,b} == 1`` per item."""
        constraints = []
        for item in range(self.num_items):
            weights = np.zeros(self.num_variables)
            for b in range(self.num_bins):
                weights[self.assign_index(item, b)] = 1.0
            constraints.append(EqualityConstraint(weights, 1.0, name=f"assign-item{item}"))
        return tuple(constraints)

    def capacity_constraints(self) -> Tuple[InequalityConstraint, ...]:
        """One inequality ``sum_i s_i x_{i,b} <= C`` per bin."""
        constraints = []
        for b in range(self.num_bins):
            weights = np.zeros(self.num_variables)
            for item in range(self.num_items):
                weights[self.assign_index(item, b)] = self.sizes[item]
            constraints.append(InequalityConstraint(weights, self.capacity, name=f"capacity-bin{b}"))
        return tuple(constraints)

    def usage_qubo(self) -> QUBOModel:
        """QUBO of the bin-count objective plus usage-consistency coupling.

        Minimising ``sum_b u_b`` alone would switch all indicators off, so a
        coupling term rewards ``u_b = 1`` whenever any item sits in bin ``b``:
        for every assignment variable ``x_{i,b}`` we add
        ``penalty_assign * x_{i,b} (1 - u_b)``.
        """
        n = self.num_variables
        q = np.zeros((n, n))
        for b in range(self.num_bins):
            u = self.usage_index(b)
            q[u, u] += 1.0
            for item in range(self.num_items):
                a = self.assign_index(item, b)
                q[a, a] += self.penalty_assign
                q[min(a, u), max(a, u)] += -self.penalty_assign
        return QUBOModel(q)

    def to_qubo(self) -> QUBOModel:
        """Full penalty QUBO (assignment one-hot + capacity penalties embedded).

        The capacity inequality is embedded with a quadratic overload penalty
        on pairwise loads (a soft relaxation adequate for the annealer
        baseline); the exact D-QUBO slack construction for bin packing is out
        of the paper's scope.
        """
        q = self.usage_qubo().matrix.copy()
        offset = 0.0
        a_pen = self.penalty_assign
        for item in range(self.num_items):
            indices = [self.assign_index(item, b) for b in range(self.num_bins)]
            offset += a_pen
            for idx in indices:
                q[idx, idx] += -a_pen
            for i, a in enumerate(indices):
                for b in indices[i + 1:]:
                    q[min(a, b), max(a, b)] += 2.0 * a_pen
        # Soft capacity penalty: discourage co-locating large items.
        c_pen = self.penalty_capacity
        for b in range(self.num_bins):
            for i in range(self.num_items):
                for j in range(i + 1, self.num_items):
                    if self.sizes[i] + self.sizes[j] > self.capacity:
                        a = self.assign_index(i, b)
                        c = self.assign_index(j, b)
                        q[min(a, c), max(a, c)] += c_pen * (self.sizes[i] + self.sizes[j])
        return QUBOModel(q, offset=offset)

    def to_inequality_qubo(self) -> InequalityQUBO:
        """Usage QUBO with detached capacity inequalities and assignment equalities."""
        constraints = self.assignment_constraints() + self.capacity_constraints()
        return InequalityQUBO(qubo=self.usage_qubo(), constraints=constraints)

    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """First-fit assignment of a random item order (feasible when bins suffice)."""
        for _ in range(max_tries):
            order = rng.permutation(self.num_items)
            loads = np.zeros(self.num_bins)
            assignment = [-1] * self.num_items
            ok = True
            for item in order:
                placed = False
                for b in rng.permutation(self.num_bins):
                    if loads[b] + self.sizes[item] <= self.capacity:
                        loads[b] += self.sizes[item]
                        assignment[item] = int(b)
                        placed = True
                        break
                if not placed:
                    ok = False
                    break
            if ok:
                return self.encode(assignment)
        raise RuntimeError("failed to construct a feasible packing; add more bins")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BinPackingProblem(name={self.name!r}, items={self.num_items}, "
            f"bins={self.num_bins}, C={self.capacity:g})"
        )

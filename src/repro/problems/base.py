"""Common interface for combinatorial optimization problems.

A :class:`CombinatorialProblem` exposes three things the rest of the system
needs:

1. the native objective and feasibility test on binary decision vectors;
2. a conversion to the HyCiM inequality-QUBO form (constraints detached);
3. a conversion to a plain QUBO (for constraint-free problems, or via the
   D-QUBO penalty route for constrained problems).

Problems whose natural encoding is not a flat binary vector (graph coloring,
TSP) document their own variable layout in the class docstring.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional, Tuple

import numpy as np

from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.sparse import SparseQUBOModel


class CombinatorialProblem(ABC):
    """Abstract base class for all COPs in the reproduction."""

    #: Human-readable problem class name used in reports (Table 1).
    problem_class: str = "COP"

    @property
    @abstractmethod
    def num_variables(self) -> int:
        """Number of binary decision variables."""

    @abstractmethod
    def objective(self, x: Iterable[float]) -> float:
        """Native objective value of configuration ``x`` (maximisation or
        minimisation as defined by the concrete problem; see
        :attr:`is_maximization`)."""

    @abstractmethod
    def is_feasible(self, x: Iterable[float]) -> bool:
        """Whether ``x`` satisfies all problem constraints."""

    @abstractmethod
    def to_qubo(self) -> QUBOModel:
        """Plain QUBO encoding (penalties embedded if the problem has
        constraints).  Minimising the returned QUBO solves the problem."""

    #: Whether the native objective is to be maximised.
    is_maximization: bool = True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Feasibility verdicts for an ``(M, n)`` batch, one row per replica.

        The multi-replica annealing engine calls this once per lock-step
        proposal round.  The default implementation delegates to
        :meth:`is_feasible` row by row (so verdicts always agree with the
        scalar path); problems with cheap vectorised constraint checks
        override it with a single batched evaluation.

        Contract (asserted for every registered family by the
        ``tests/conformance`` suite): a 1-D input is treated as the ``M = 1``
        view, an empty ``(0, n)`` batch returns an empty verdict vector, the
        returned dtype is always ``bool``, and verdict ``k`` equals
        ``is_feasible(batch[k])`` for any input dtype.
        """
        batch = self._validate_batch(configurations)
        return np.fromiter((self.is_feasible(row) for row in batch),
                           dtype=bool, count=batch.shape[0])

    def linear_feasibility_constraints(
            self) -> Optional[Tuple[InequalityConstraint, ...]]:
        """The feasible region as linear inequalities, when expressible.

        Returns the tuple of :class:`InequalityConstraint` objects whose
        conjunction is *exactly* :meth:`is_feasible` / row-wise
        :meth:`is_feasible_batch` (an empty tuple for unconstrained
        problems), or ``None`` when the feasible region has no such form
        (colorings, tours, packings).  The fused sweep kernels
        (:mod:`repro.kernels.fused`) use this to replace the opaque batched
        filter with incrementally maintained constraint loads;
        ``kernel="auto"`` falls back to the reference backend on ``None``.
        """
        return None

    def to_sparse_qubo(self) -> "SparseQUBOModel":
        """CSR encoding of :meth:`to_qubo` (needs the SciPy ``sparse`` extra).

        The default round-trips through the dense matrix, so it is exactly
        :meth:`to_qubo` in sparse storage; families whose coefficients come
        from an edge/coordinate list override it to skip the dense
        intermediate at large ``n``.
        """
        from repro.core.sparse import SparseQUBOModel

        return SparseQUBOModel.from_dense(self.to_qubo())

    def to_inequality_qubo(self) -> InequalityQUBO:
        """HyCiM inequality-QUBO form: objective QUBO + detached constraints.

        Unconstrained problems return an :class:`InequalityQUBO` with an empty
        constraint tuple, so the HyCiM solver degrades gracefully to a plain
        CiM annealer for them.
        """
        return InequalityQUBO(qubo=self.to_qubo(), constraints=())

    # ------------------------------------------------------------------ #
    # Helpers shared by concrete problems
    # ------------------------------------------------------------------ #
    def _validate(self, x: Iterable[float]) -> np.ndarray:
        vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if vec.ndim != 1 or vec.shape[0] != self.num_variables:
            raise ValueError(
                f"expected a binary vector of length {self.num_variables}, got shape {vec.shape}"
            )
        if not np.all((vec == 0) | (vec == 1)):
            raise ValueError("decision vectors must be binary (0/1)")
        return vec

    def _validate_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Coerce a replica batch into a float ``(M, n)`` matrix.

        Accepts a 1-D vector (the ``M = 1`` view), any integer/float/bool
        dtype, and the empty ``(0, n)`` batch; rejects wrong trailing
        dimensions and non-binary values so every ``is_feasible_batch``
        override shares one validation path with the scalar ``_validate``.
        """
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.num_variables:
            raise ValueError(
                f"expected an (M, {self.num_variables}) batch, got shape {batch.shape}"
            )
        if batch.size and not np.all((batch == 0) | (batch == 1)):
            raise ValueError("decision vectors must be binary (0/1)")
        return batch

    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Draw a uniformly random configuration and repair/retry to feasibility.

        The default implementation rejects infeasible samples; problems with
        very sparse feasible regions override this with a constructive
        sampler.
        """
        for _ in range(max_tries):
            x = rng.integers(0, 2, size=self.num_variables).astype(float)
            if self.is_feasible(x):
                return x
        raise RuntimeError("failed to sample a feasible configuration")

    def brute_force_best(self) -> tuple[np.ndarray, float]:
        """Exhaustive search over feasible configurations (``n <= 22``)."""
        n = self.num_variables
        if n > 22:
            raise ValueError("brute_force_best limited to n <= 22")
        best_value = -np.inf if self.is_maximization else np.inf
        best_x = np.zeros(n)
        found = False
        for bits in range(1 << n):
            x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
            if not self.is_feasible(x):
                continue
            value = self.objective(x)
            better = value > best_value if self.is_maximization else value < best_value
            if better or not found:
                best_value = value
                best_x = x
                found = True
        if not found:
            raise RuntimeError("problem has no feasible configuration")
        return best_x, float(best_value)

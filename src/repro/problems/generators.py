"""Random instance generators for the problems in :mod:`repro.problems`.

The central generator is :func:`generate_qkp_instance`, which follows the
Billionnet-Soutif protocol behind the cedric.cnam.fr QKP benchmark the paper
uses (40 instances, 100 items each):

* pairwise profit density ``d`` in {25%, 50%, 75%, 100%};
* non-zero profits drawn uniformly from 1..100;
* weights drawn uniformly from 1..50;
* capacity drawn uniformly from ``[50, sum_i w_i]``.

:func:`generate_qkp_benchmark_suite` produces the 40-instance suite
(10 instances per density) used by the Fig. 8 / 9 / 10 reproductions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from repro.problems.bin_packing import BinPackingProblem
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.knapsack import KnapsackProblem
from repro.problems.maxcut import MaxCutProblem
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.problems.spin_glass import SherringtonKirkpatrickProblem
from repro.problems.tsp import TravelingSalesmanProblem


def _rng(seed: Optional[int]) -> np.random.Generator:
    return np.random.default_rng(seed)


def generate_qkp_instance(
    num_items: int = 100,
    density: float = 0.5,
    max_profit: int = 100,
    max_weight: int = 50,
    capacity: Optional[int] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> QuadraticKnapsackProblem:
    """Generate a Billionnet-Soutif style QKP instance.

    Parameters
    ----------
    num_items:
        Number of items ``n`` (paper uses 100).
    density:
        Probability that a pairwise profit ``p_ij`` (``i != j``) is non-zero.
    max_profit:
        Non-zero profits are uniform integers in ``1..max_profit``.
    max_weight:
        Weights are uniform integers in ``1..max_weight``.
    capacity:
        Knapsack capacity; drawn uniformly from ``[max_weight, sum(w)]`` when
        omitted (the benchmark's recipe, guaranteeing every single item fits).
    seed:
        RNG seed for reproducibility.
    name:
        Instance label; auto-generated when omitted.
    """
    if num_items < 1:
        raise ValueError("num_items must be positive")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = _rng(seed)
    weights = rng.integers(1, max_weight + 1, size=num_items).astype(float)
    profits = np.zeros((num_items, num_items))
    diagonal = rng.integers(1, max_profit + 1, size=num_items).astype(float)
    np.fill_diagonal(profits, diagonal)
    for i in range(num_items):
        for j in range(i + 1, num_items):
            if rng.random() < density:
                value = float(rng.integers(1, max_profit + 1))
                profits[i, j] = value
                profits[j, i] = value
    if capacity is None:
        low = int(max_weight)
        high = int(weights.sum())
        capacity = int(rng.integers(low, max(high, low + 1)))
    label = name or f"qkp_n{num_items}_d{int(round(density * 100))}_s{seed}"
    return QuadraticKnapsackProblem(profits=profits, weights=weights,
                                    capacity=float(capacity), name=label)


def generate_qkp_benchmark_suite(
    num_instances: int = 40,
    num_items: int = 100,
    densities: Sequence[float] = (0.25, 0.50, 0.75, 1.00),
    seed: int = 2024,
) -> List[QuadraticKnapsackProblem]:
    """The 40-instance QKP suite standing in for the cedric.cnam.fr dataset.

    Instances are spread evenly over the density levels; seeds are derived
    deterministically from ``seed`` so the suite is reproducible.
    """
    if num_instances < 1:
        raise ValueError("num_instances must be positive")
    suite: List[QuadraticKnapsackProblem] = []
    per_density = -(-num_instances // len(densities))  # ceil division
    index = 0
    for density in densities:
        for _ in range(per_density):
            if index >= num_instances:
                break
            suite.append(
                generate_qkp_instance(
                    num_items=num_items,
                    density=density,
                    seed=seed + index,
                    name=f"qkp_{index:02d}_d{int(round(density * 100))}",
                )
            )
            index += 1
    return suite


def generate_knapsack_instance(
    num_items: int = 20,
    max_profit: int = 100,
    max_weight: int = 50,
    capacity_ratio: float = 0.5,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> KnapsackProblem:
    """Random linear knapsack with capacity a fixed fraction of total weight."""
    if not 0.0 < capacity_ratio <= 1.0:
        raise ValueError("capacity_ratio must be in (0, 1]")
    rng = _rng(seed)
    profits = rng.integers(1, max_profit + 1, size=num_items).astype(float)
    weights = rng.integers(1, max_weight + 1, size=num_items).astype(float)
    capacity = max(float(weights.max()), float(np.floor(weights.sum() * capacity_ratio)))
    return KnapsackProblem(profits=profits, weights=weights, capacity=capacity,
                           name=name or f"knapsack_n{num_items}_s{seed}")


def generate_maxcut_instance(
    num_nodes: int = 20,
    edge_probability: float = 0.5,
    max_weight: int = 10,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> MaxCutProblem:
    """Random weighted Erdos-Renyi Max-Cut instance."""
    rng = _rng(seed)
    graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=int(rng.integers(0, 2**31)))
    for u, v in graph.edges():
        graph[u][v]["weight"] = float(rng.integers(1, max_weight + 1))
    return MaxCutProblem.from_graph(graph, name=name or f"maxcut_n{num_nodes}_s{seed}")


def generate_coloring_instance(
    num_nodes: int = 12,
    edge_probability: float = 0.3,
    num_colors: int = 3,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> GraphColoringProblem:
    """Random graph coloring instance (not guaranteed to be k-colorable)."""
    rng = _rng(seed)
    graph = nx.gnp_random_graph(num_nodes, edge_probability, seed=int(rng.integers(0, 2**31)))
    return GraphColoringProblem.from_graph(graph, num_colors=num_colors,
                                           name=name or f"coloring_n{num_nodes}_s{seed}")


def generate_tsp_instance(
    num_cities: int = 6,
    coordinate_range: float = 100.0,
    integer_distances: bool = False,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> TravelingSalesmanProblem:
    """Euclidean TSP instance with cities uniform in a square.

    With ``integer_distances=True`` each Euclidean distance is rounded to the
    nearest positive integer (TSPLIB ``EUC_2D`` convention) so QUBO energies
    stay integer-valued — the precondition for bitwise serial↔vectorized
    parity and for exact hardware evaluation.
    """
    rng = _rng(seed)
    points = rng.uniform(0.0, coordinate_range, size=(num_cities, 2))
    distances = np.zeros((num_cities, num_cities))
    for i in range(num_cities):
        for j in range(i + 1, num_cities):
            d = float(np.linalg.norm(points[i] - points[j]))
            if integer_distances:
                d = max(1.0, float(round(d)))
            distances[i, j] = d
            distances[j, i] = d
    return TravelingSalesmanProblem(distances=distances,
                                    name=name or f"tsp_n{num_cities}_s{seed}")


def generate_sk_instance(
    num_spins: int = 15,
    discrete: bool = False,
    max_coupling: int = 10,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> SherringtonKirkpatrickProblem:
    """Sherrington-Kirkpatrick instance with ``J_ij ~ N(0, 1/N)``.

    With ``discrete=True`` couplings are instead uniform non-zero integers in
    ``[-max_coupling, max_coupling]`` — integer-valued energies for bitwise
    backend parity (the Gaussian default keeps the canonical SK statistics).
    """
    rng = _rng(seed)
    if discrete:
        if max_coupling < 1:
            raise ValueError("max_coupling must be at least 1")
        magnitude = rng.integers(1, max_coupling + 1, size=(num_spins, num_spins))
        sign = rng.choice([-1.0, 1.0], size=(num_spins, num_spins))
        j = magnitude * sign
    else:
        j = rng.normal(0.0, 1.0 / np.sqrt(max(num_spins, 1)), size=(num_spins, num_spins))
    j = np.triu(j, k=1)
    j = j + j.T
    return SherringtonKirkpatrickProblem(couplings=j, name=name or f"sk_n{num_spins}_s{seed}")


def generate_bin_packing_instance(
    num_items: int = 10,
    num_bins: int = 4,
    capacity: float = 100.0,
    max_size_fraction: float = 0.6,
    integer_sizes: bool = True,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> BinPackingProblem:
    """Random bin packing instance with item sizes bounded by a capacity fraction.

    Sizes default to integers (uniform in ``1..floor(C * max_size_fraction)``)
    so the per-bin capacity constraints program directly onto the integer-cell
    FeFET inequality filter; ``integer_sizes=False`` restores continuous sizes
    for software-only studies.
    """
    if not 0.0 < max_size_fraction <= 1.0:
        raise ValueError("max_size_fraction must be in (0, 1]")
    rng = _rng(seed)
    if integer_sizes:
        high = max(1, int(np.floor(capacity * max_size_fraction)))
        sizes = rng.integers(1, high + 1, size=num_items).astype(float)
    else:
        sizes = rng.uniform(1.0, capacity * max_size_fraction, size=num_items)
    return BinPackingProblem(sizes=sizes, capacity=capacity, num_bins=num_bins,
                             name=name or f"binpacking_n{num_items}_s{seed}")

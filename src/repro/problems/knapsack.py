"""Linear 0/1 knapsack problem -- the linear special case of QKP.

    max  sum_i p_i x_i
    s.t. sum_i w_i x_i <= C,   x_i in {0, 1}

Used by the Table 1 solver comparison (the "Knapsack" row) and by tests as a
problem whose exact optimum is cheap to compute with dynamic programming
(:func:`repro.exact.dp_knapsack.solve_knapsack_dp`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO
from repro.problems.base import CombinatorialProblem


@dataclass
class KnapsackProblem(CombinatorialProblem):
    """A 0/1 knapsack instance with linear profits."""

    profits: np.ndarray
    weights: np.ndarray
    capacity: float
    name: str = "knapsack"

    problem_class = "Knapsack"
    is_maximization = True

    def __post_init__(self) -> None:
        p = np.asarray(self.profits, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        if p.ndim != 1 or w.ndim != 1 or p.shape != w.shape:
            raise ValueError("profits and weights must be 1-D arrays of equal length")
        if np.any(w <= 0):
            raise ValueError("item weights must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self.profits = p
        self.weights = w
        self.capacity = float(self.capacity)

    @property
    def num_variables(self) -> int:
        return self.profits.shape[0]

    @property
    def num_items(self) -> int:
        """Alias for :attr:`num_variables`."""
        return self.num_variables

    def objective(self, x: Iterable[float]) -> float:
        vec = self._validate(x)
        return float(self.profits @ vec)

    def total_weight(self, x: Iterable[float]) -> float:
        """Total selected weight ``w . x``."""
        vec = self._validate(x)
        return float(self.weights @ vec)

    def is_feasible(self, x: Iterable[float]) -> bool:
        return self.total_weight(x) <= self.capacity + 1e-9

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised capacity check: one weighted sum covers all replicas."""
        batch = self._validate_batch(configurations)
        return (batch @ self.weights) <= self.capacity + 1e-9

    def constraint(self) -> InequalityConstraint:
        """The capacity constraint as a standalone object."""
        return InequalityConstraint(self.weights, self.capacity, name=f"{self.name}-capacity")

    def linear_feasibility_constraints(self) -> tuple:
        """Feasibility is exactly the capacity inequality."""
        return (self.constraint(),)

    def to_qubo(self) -> QUBOModel:
        """Objective-only QUBO (diagonal ``-p_i``); constraint not embedded."""
        return QUBOModel(np.diag(-self.profits))

    def to_inequality_qubo(self) -> InequalityQUBO:
        """HyCiM form: diagonal objective QUBO + detached capacity constraint."""
        return InequalityQUBO(qubo=self.to_qubo(), constraints=(self.constraint(),))

    def to_quadratic(self) -> "QuadraticKnapsackProblem":
        """Lift to a :class:`QuadraticKnapsackProblem` with zero pairwise profits."""
        from repro.problems.qkp import QuadraticKnapsackProblem

        return QuadraticKnapsackProblem(
            profits=np.diag(self.profits),
            weights=self.weights,
            capacity=self.capacity,
            name=self.name,
        )

    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Constructive feasible sample (greedy random fill)."""
        order = rng.permutation(self.num_items)
        x = np.zeros(self.num_items)
        remaining = self.capacity
        for idx in order:
            if self.weights[idx] <= remaining and rng.random() < 0.5:
                x[idx] = 1.0
                remaining -= self.weights[idx]
        return x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KnapsackProblem(name={self.name!r}, n={self.num_items}, C={self.capacity:g})"

"""Multi-dimensional (quadratic) knapsack -- several inequality constraints.

The paper positions HyCiM as a solver for *general* COPs with inequality
constraints; QKP (one capacity constraint) is its representative workload.
The multi-dimensional quadratic knapsack problem (MD-QKP) generalises it to
``m`` resource dimensions:

    max  sum_{i,j} p_ij x_i x_j
    s.t. sum_i w_ik x_i <= C_k      for k = 1..m,   x_i in {0, 1}

Each constraint maps onto its own CiM inequality filter, so this problem
exercises the multi-filter path of :class:`repro.annealing.hycim.HyCiMSolver`
(one filter per row of the weight matrix), which the single-constraint QKP
cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO
from repro.problems.base import CombinatorialProblem


@dataclass
class MultiDimensionalKnapsackProblem(CombinatorialProblem):
    """A quadratic knapsack with ``m`` independent capacity constraints.

    Parameters
    ----------
    profits:
        Symmetric ``n x n`` profit matrix (diagonal = individual profits,
        off-diagonal = pairwise profits counted once).
    weights:
        ``m x n`` non-negative weight matrix; row ``k`` is the resource-``k``
        consumption of each item.
    capacities:
        Length-``m`` vector of resource capacities.
    name:
        Instance label.
    """

    profits: np.ndarray
    weights: np.ndarray
    capacities: np.ndarray
    name: str = "mdqkp"

    problem_class = "Multi-dimensional Quadratic Knapsack"
    is_maximization = True

    def __post_init__(self) -> None:
        p = np.asarray(self.profits, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        c = np.asarray(self.capacities, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ValueError(f"profit matrix must be square, got {p.shape}")
        if not np.allclose(p, p.T):
            raise ValueError("profit matrix must be symmetric")
        if w.ndim != 2 or w.shape[1] != p.shape[0]:
            raise ValueError("weights must be an m x n matrix matching the profit dimension")
        if c.ndim != 1 or c.shape[0] != w.shape[0]:
            raise ValueError("capacities length must equal the number of constraints")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        if np.any(c <= 0):
            raise ValueError("capacities must be positive")
        self.profits = p
        self.weights = w
        self.capacities = c

    # ------------------------------------------------------------------ #
    # CombinatorialProblem interface
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return self.profits.shape[0]

    @property
    def num_items(self) -> int:
        """Alias for :attr:`num_variables`."""
        return self.num_variables

    @property
    def num_constraints(self) -> int:
        """Number of resource dimensions ``m``."""
        return self.weights.shape[0]

    def objective(self, x: Iterable[float]) -> float:
        vec = self._validate(x)
        linear = float(np.diag(self.profits) @ vec)
        pairwise = float(vec @ np.triu(self.profits, k=1) @ vec)
        return linear + pairwise

    def resource_usage(self, x: Iterable[float]) -> np.ndarray:
        """Per-dimension resource consumption ``W x``."""
        vec = self._validate(x)
        return self.weights @ vec

    def is_feasible(self, x: Iterable[float]) -> bool:
        return bool(np.all(self.resource_usage(x) <= self.capacities + 1e-9))

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised resource check: one ``W x`` product covers all replicas."""
        batch = self._validate_batch(configurations)
        usage = batch @ self.weights.T
        return np.all(usage <= self.capacities + 1e-9, axis=1)

    def constraints(self) -> Tuple[InequalityConstraint, ...]:
        """One detached inequality constraint per resource dimension."""
        return tuple(
            InequalityConstraint(self.weights[k], self.capacities[k],
                                 name=f"{self.name}-resource{k}")
            for k in range(self.num_constraints)
        )

    def linear_feasibility_constraints(self) -> Tuple[InequalityConstraint, ...]:
        """Feasibility is exactly the conjunction of the resource inequalities."""
        return self.constraints()

    def to_qubo(self) -> QUBOModel:
        """Objective-only QUBO (``Q = -P_upper``); constraints not embedded."""
        p_upper = np.diag(np.diag(self.profits)) + np.triu(self.profits, k=1)
        return QUBOModel(-p_upper)

    def to_inequality_qubo(self) -> InequalityQUBO:
        """HyCiM form: one inequality filter per resource dimension."""
        return InequalityQUBO(qubo=self.to_qubo(), constraints=self.constraints())

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Greedy random fill respecting every resource dimension."""
        order = rng.permutation(self.num_items)
        x = np.zeros(self.num_items)
        usage = np.zeros(self.num_constraints)
        for item in order:
            if rng.random() < 0.5:
                continue
            candidate_usage = usage + self.weights[:, item]
            if np.all(candidate_usage <= self.capacities):
                x[item] = 1.0
                usage = candidate_usage
        return x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiDimensionalKnapsackProblem(name={self.name!r}, n={self.num_items}, "
            f"m={self.num_constraints})"
        )


def generate_mdqkp_instance(
    num_items: int = 30,
    num_constraints: int = 3,
    density: float = 0.5,
    max_profit: int = 100,
    max_weight: int = 30,
    tightness: float = 0.5,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> MultiDimensionalKnapsackProblem:
    """Generate a random MD-QKP instance.

    Capacities are set to ``tightness * sum_i w_ik`` per dimension, the
    standard recipe for multi-dimensional knapsack benchmarks.
    """
    if num_constraints < 1:
        raise ValueError("at least one constraint is required")
    if not 0.0 < tightness <= 1.0:
        raise ValueError("tightness must be in (0, 1]")
    rng = np.random.default_rng(seed)
    profits = np.zeros((num_items, num_items))
    np.fill_diagonal(profits, rng.integers(1, max_profit + 1, size=num_items))
    for i in range(num_items):
        for j in range(i + 1, num_items):
            if rng.random() < density:
                value = float(rng.integers(1, max_profit + 1))
                profits[i, j] = value
                profits[j, i] = value
    weights = rng.integers(1, max_weight + 1, size=(num_constraints, num_items)).astype(float)
    capacities = np.floor(weights.sum(axis=1) * tightness)
    capacities = np.maximum(capacities, weights.max(axis=1))
    return MultiDimensionalKnapsackProblem(
        profits=profits, weights=weights, capacities=capacities,
        name=name or f"mdqkp_n{num_items}_m{num_constraints}_s{seed}")

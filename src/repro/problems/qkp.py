"""Quadratic Knapsack Problem (QKP) -- the paper's representative COP.

Paper Eq. (3)-(4):

    max  sum_{i,j} p_ij x_i x_j
    s.t. sum_i w_i x_i <= C,   x_i in {0, 1}

``p_ii`` is the individual profit of item ``i`` and ``p_ij = p_ji`` (i != j)
the extra profit earned when both ``i`` and ``j`` are selected.  The paper's
evaluation uses 40 instances with 100 items each, following the
Billionnet-Soutif benchmark family (weights 1..50, profits 1..100, capacity
uniform in ``[50, sum_i w_i]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO, to_inequality_qubo
from repro.problems.base import CombinatorialProblem


@dataclass
class QuadraticKnapsackProblem(CombinatorialProblem):
    """A QKP instance.

    Parameters
    ----------
    profits:
        Symmetric ``n x n`` profit matrix.  ``profits[i, i]`` is the linear
        profit of item ``i``; ``profits[i, j]`` (``i != j``) the pairwise
        profit counted *once* in the objective.
    weights:
        Item weights ``w_i`` (positive).
    capacity:
        Knapsack capacity ``C``.
    name:
        Instance label (used in experiment reports).
    """

    profits: np.ndarray
    weights: np.ndarray
    capacity: float
    name: str = "qkp"

    problem_class = "Quadratic Knapsack"
    is_maximization = True

    def __post_init__(self) -> None:
        p = np.asarray(self.profits, dtype=float)
        w = np.asarray(self.weights, dtype=float)
        if p.ndim != 2 or p.shape[0] != p.shape[1]:
            raise ValueError(f"profit matrix must be square, got {p.shape}")
        if not np.allclose(p, p.T):
            raise ValueError("profit matrix must be symmetric")
        if w.ndim != 1 or w.shape[0] != p.shape[0]:
            raise ValueError("weights length must match profit matrix dimension")
        if np.any(w <= 0):
            raise ValueError("item weights must be positive")
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        self.profits = p
        self.weights = w
        self.capacity = float(self.capacity)

    # ------------------------------------------------------------------ #
    # CombinatorialProblem interface
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return self.weights.shape[0]

    @property
    def num_items(self) -> int:
        """Alias for :attr:`num_variables` using knapsack terminology."""
        return self.num_variables

    def objective(self, x: Iterable[float]) -> float:
        """Total profit of the selection ``x`` (pairwise profits counted once)."""
        vec = self._validate(x)
        linear = float(np.diag(self.profits) @ vec)
        pairwise = float(vec @ np.triu(self.profits, k=1) @ vec)
        return linear + pairwise

    def total_weight(self, x: Iterable[float]) -> float:
        """Total selected weight ``w . x``."""
        vec = self._validate(x)
        return float(self.weights @ vec)

    def is_feasible(self, x: Iterable[float]) -> bool:
        return self.total_weight(x) <= self.capacity + 1e-9

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised capacity check: one weighted sum covers all replicas."""
        batch = self._validate_batch(configurations)
        return (batch @ self.weights) <= self.capacity + 1e-9

    def constraint(self) -> InequalityConstraint:
        """The capacity constraint as a standalone object."""
        return InequalityConstraint(self.weights, self.capacity, name=f"{self.name}-capacity")

    def linear_feasibility_constraints(self) -> tuple:
        """Feasibility is exactly the capacity inequality."""
        return (self.constraint(),)

    def to_qubo(self) -> QUBOModel:
        """Objective-only QUBO: ``Q = -P_upper`` so minimisation maximises profit.

        Note the constraint is *not* embedded -- use
        :meth:`to_inequality_qubo` (HyCiM) or
        :func:`repro.core.dqubo.to_dqubo` (baseline) to make it solvable by an
        unconstrained annealer.
        """
        p_upper = np.diag(np.diag(self.profits)) + np.triu(self.profits, k=1)
        return QUBOModel(-p_upper)

    def to_inequality_qubo(self) -> InequalityQUBO:
        """Paper Eq. (6): ``E(x) = [w.x <= C] * x^T Q x`` with ``Q = -P``."""
        p_upper = np.diag(np.diag(self.profits)) + np.triu(self.profits, k=1)
        symmetric = (p_upper + p_upper.T) / 2.0
        # to_inequality_qubo folds the symmetric matrix back into the upper
        # triangle, so pairwise profits are still counted once.
        return to_inequality_qubo(symmetric, self.constraint(), maximize=True)

    # ------------------------------------------------------------------ #
    # Sampling helpers used by the Monte-Carlo experiments (Fig. 8, Fig. 10)
    # ------------------------------------------------------------------ #
    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Constructive feasible sample: greedily add random items while they fit."""
        order = rng.permutation(self.num_items)
        x = np.zeros(self.num_items)
        remaining = self.capacity
        for idx in order:
            if self.weights[idx] <= remaining and rng.random() < 0.5:
                x[idx] = 1.0
                remaining -= self.weights[idx]
        return x

    def random_infeasible_configuration(self, rng: np.random.Generator,
                                        max_tries: int = 10_000) -> np.ndarray:
        """Sample a configuration that violates the capacity constraint."""
        for _ in range(max_tries):
            # Bias towards dense selections so the capacity is exceeded.
            prob = rng.uniform(0.5, 1.0)
            x = (rng.random(self.num_items) < prob).astype(float)
            if not self.is_feasible(x):
                return x
        raise RuntimeError(
            "failed to sample an infeasible configuration; capacity may exceed total weight"
        )

    def density(self) -> float:
        """Fraction of non-zero pairwise profits (the benchmark 'density' knob)."""
        n = self.num_items
        if n < 2:
            return 0.0
        pairs = n * (n - 1) // 2
        nonzero = int(np.count_nonzero(np.triu(self.profits, k=1)))
        return nonzero / pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuadraticKnapsackProblem(name={self.name!r}, n={self.num_items}, "
            f"C={self.capacity:g}, density={self.density():.2f})"
        )

"""The uniform problem-family contract: every COP end-to-end through HyCiM.

The paper's pipeline (inequality-QUBO transformation + FeFET filter +
crossbar + campaigns) was exercised almost exclusively on the knapsack
family.  This module makes "a problem family" a first-class, registered
object so *every* family runs through the same paper-grade path and is
gated by the same conformance suite (``tests/conformance/``):

* :class:`ProblemFamily` bundles what the runtime, the analysis studies and
  the conformance harness need: a generator, a small conformance instance,
  family-appropriate solver parameters (move generator + schedule), the
  energy↔objective identity of its QUBO transformation, and an exact
  reference solution for small instances.
* :func:`register_family` / :func:`get_family` / :func:`family_names` /
  :func:`family_of` form the registry; the six paper families (knapsack,
  QKP, MD-QKP, Max-Cut, graph coloring, TSP, bin packing, SK spin glass)
  are registered on import.
* :func:`stream_instances` turns any registered family into a lazy,
  seed-deterministic instance stream for campaign-scale workloads.

Feasibility semantics per family (the penalty-vs-filter split):

========== ============================== ================================
family     hardware filter (inequalities) move generator / penalty
========== ============================== ================================
knapsack   ``w.x <= C``                   --
qkp        ``w.x <= C``                   --
mdqkp      ``W x <= C`` (one per row)     --
maxcut     -- (unconstrained)             --
coloring   --                             one-hot per vertex (moves)
tsp        --                             permutation one-hot (moves)
binpacking ``s.x_b <= C`` (one per bin)   item one-hot + usage (moves)
spin_glass -- (unconstrained)             --
========== ============================== ================================

Conformance instances are deliberately *integer-valued* (integer profits,
weights, distances, couplings and sizes): integer QUBO data is the
precondition for bitwise serial↔vectorized parity and for exact hardware
evaluation (ARCHITECTURE.md "Parity guarantees").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.problems.base import CombinatorialProblem
from repro.problems.bin_packing import BinPackingProblem
from repro.problems.generators import (
    generate_bin_packing_instance,
    generate_coloring_instance,
    generate_knapsack_instance,
    generate_maxcut_instance,
    generate_qkp_instance,
    generate_sk_instance,
    generate_tsp_instance,
)
from repro.problems.graph_coloring import GraphColoringProblem
from repro.problems.knapsack import KnapsackProblem
from repro.problems.maxcut import MaxCutProblem
from repro.problems.multidim_knapsack import (
    MultiDimensionalKnapsackProblem,
    generate_mdqkp_instance,
)
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.problems.spin_glass import SherringtonKirkpatrickProblem
from repro.problems.tsp import TravelingSalesmanProblem


def _geometric_schedule(scale: float) -> Dict[str, Any]:
    """The instance-scaled schedule protocol used throughout ``analysis``:
    start at 20x the dominant objective coefficient (dict form so solver
    params stay picklable and store-key canonical)."""
    scale = float(scale) or 1.0
    return {"kind": "geometric", "start_temperature": 20.0 * scale,
            "end_temperature": max(0.02 * scale, 1e-3)}


@dataclass(frozen=True)
class ProblemFamily:
    """One registered COP family: everything needed to run it end-to-end.

    Attributes
    ----------
    name:
        Registry key (``"knapsack"``, ``"tsp"``, ...).
    problem_type:
        The concrete :class:`CombinatorialProblem` subclass;
        :func:`family_of` matches instances by exact type.
    description:
        One-line description for reports.
    transformation:
        Human-readable summary of the QUBO/filter transformation
        (the ARCHITECTURE.md "Problems layer" table).
    filtered_constraints:
        Which constraints are screened by the FeFET inequality filter
        (``"--"`` for none).
    move_constraints:
        Which constraints the move generator keeps satisfied by
        construction (``"--"`` for none).
    generate:
        Keyword-argument instance generator (must accept ``seed=`` and
        ``name=``); :func:`stream_instances` drives it.
    conformance_instance:
        ``seed -> problem``: a small integer-valued instance the
        conformance suite can solve exactly and run on hardware.
    solver_params:
        ``problem -> params``: family-appropriate HyCiM/SA parameters
        (move generator + schedule) as a picklable dict, mergeable with
        caller overrides.
    expected_energy:
        ``(problem, x) -> float``: the QUBO energy that
        ``to_inequality_qubo().qubo`` must assign to a *feasible* ``x``,
        expressed through the native objective — the per-family
        energy↔objective identity the conformance suite asserts.
    reference_solution:
        ``problem -> (x, value)``: exact optimum of a conformance-sized
        instance (brute force / exhaustive decoding).
    """

    name: str
    problem_type: type
    description: str
    transformation: str
    filtered_constraints: str
    move_constraints: str
    generate: Callable[..., CombinatorialProblem]
    conformance_instance: Callable[[int], CombinatorialProblem]
    solver_params: Callable[[CombinatorialProblem], Dict[str, Any]]
    expected_energy: Callable[[CombinatorialProblem, np.ndarray], float]
    reference_solution: Callable[[CombinatorialProblem], Tuple[np.ndarray, float]]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("family name must be non-empty")
        if not issubclass(self.problem_type, CombinatorialProblem):
            raise TypeError("problem_type must subclass CombinatorialProblem")


_FAMILIES: Dict[str, ProblemFamily] = {}


def register_family(family: ProblemFamily, *, overwrite: bool = False) -> None:
    """Register a family under ``family.name``.

    Registration is what plugs a family into ``run_trials`` idiom helpers,
    the per-family analysis study and the conformance gate — a new family
    only has to pass the same suite.
    """
    if family.name in _FAMILIES and not overwrite:
        raise KeyError(
            f"family {family.name!r} is already registered (pass overwrite=True)")
    _FAMILIES[family.name] = family


def get_family(name: str) -> ProblemFamily:
    """Look up a registered family; raises ``KeyError`` with the catalogue."""
    try:
        return _FAMILIES[name]
    except KeyError as error:
        raise KeyError(
            f"unknown problem family {name!r}; available: {family_names()}"
        ) from error


def family_names() -> Tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_FAMILIES))


def family_of(problem: CombinatorialProblem) -> Optional[ProblemFamily]:
    """The registered family whose ``problem_type`` is exactly
    ``type(problem)``, or ``None`` for unregistered problem classes."""
    for family in _FAMILIES.values():
        if type(problem) is family.problem_type:
            return family
    return None


def stream_instances(name: str, count: Optional[int] = None, *, seed: int = 0,
                     **kwargs: Any) -> Iterator[CombinatorialProblem]:
    """Lazily generate instances of a registered family.

    Instance ``i`` is seeded from child ``i`` of ``SeedSequence(seed)``, so
    the stream is deterministic, instances are independent, and consuming
    the first ``k`` instances is independent of ``count`` — a campaign can
    extend a previous stream by asking for more.  ``count=None`` streams
    forever (feed it to ``itertools.islice``).
    """
    family = get_family(name)
    if count is not None and count < 0:
        raise ValueError("count must be non-negative (or None for unbounded)")
    indices = itertools.count() if count is None else range(count)
    for i in indices:
        child = np.random.SeedSequence(seed, spawn_key=(i,))
        instance_seed = int(child.generate_state(1)[0])
        yield family.generate(seed=instance_seed,
                              name=f"{name}_stream_s{seed}_{i:05d}", **kwargs)


# --------------------------------------------------------------------- #
# Reference solutions (exact; conformance-sized instances only)
# --------------------------------------------------------------------- #
def _brute_force_reference(problem: CombinatorialProblem) -> Tuple[np.ndarray, float]:
    return problem.brute_force_best()


def _tsp_reference(problem: TravelingSalesmanProblem) -> Tuple[np.ndarray, float]:
    """Exhaustive tour enumeration with city 0 pinned to position 0."""
    n = problem.num_cities
    best_tour, best_length = None, np.inf
    for rest in itertools.permutations(range(1, n)):
        tour = (0,) + rest
        length = problem.tour_length(tour)
        if length < best_length:
            best_tour, best_length = tour, length
    return problem.encode_tour(best_tour), float(best_length)


def _coloring_reference(problem: GraphColoringProblem) -> Tuple[np.ndarray, float]:
    """Exhaustive enumeration of one-hot assignments (``k^V`` of them)."""
    best_x, best_conflicts = None, np.inf
    for assignment in itertools.product(range(problem.num_colors),
                                        repeat=problem.num_nodes):
        x = problem.encode(assignment)
        conflicts = problem.objective(x)
        if conflicts < best_conflicts:
            best_x, best_conflicts = x, conflicts
            if best_conflicts == 0:
                break
    return best_x, float(best_conflicts)


def _bin_packing_reference(problem: BinPackingProblem) -> Tuple[np.ndarray, float]:
    """Exhaustive enumeration of item→bin assignments (``m^n`` of them)."""
    best_x, best_bins = None, np.inf
    for assignment in itertools.product(range(problem.num_bins),
                                        repeat=problem.num_items):
        x = problem.encode(assignment)
        if not problem.is_feasible(x):
            continue
        bins_used = problem.objective(x)
        if bins_used < best_bins:
            best_x, best_bins = x, bins_used
    if best_x is None:
        raise RuntimeError("conformance bin-packing instance has no feasible packing")
    return best_x, float(best_bins)


# --------------------------------------------------------------------- #
# Per-family solver parameters
# --------------------------------------------------------------------- #
def _knapsack_params(problem: KnapsackProblem) -> Dict[str, Any]:
    return {"move_generator": "knapsack",
            "schedule": _geometric_schedule(np.max(np.abs(problem.profits)))}


def _maxcut_params(problem: MaxCutProblem) -> Dict[str, Any]:
    return {"move_generator": "single_flip",
            "schedule": _geometric_schedule(np.max(np.abs(problem.adjacency)))}


def _sk_params(problem: SherringtonKirkpatrickProblem) -> Dict[str, Any]:
    return {"move_generator": "single_flip",
            "schedule": _geometric_schedule(np.max(np.abs(problem.couplings)))}


def _tsp_params(problem: TravelingSalesmanProblem) -> Dict[str, Any]:
    n = problem.num_cities
    return {"move_generator": {"kind": "permutation_swap",
                               "num_groups": n, "group_size": n},
            "schedule": _geometric_schedule(np.max(problem.distances))}


def _coloring_params(problem: GraphColoringProblem) -> Dict[str, Any]:
    return {"move_generator": {"kind": "one_hot",
                               "group_sizes": [problem.num_colors] * problem.num_nodes},
            "schedule": _geometric_schedule(problem.penalty_conflict)}


def _bin_packing_params(problem: BinPackingProblem) -> Dict[str, Any]:
    return {"move_generator": {"kind": "bin_packing",
                               "num_items": problem.num_items,
                               "num_bins": problem.num_bins},
            "schedule": _geometric_schedule(problem.penalty_assign)}


# --------------------------------------------------------------------- #
# Energy ↔ objective identities (asserted on feasible states)
# --------------------------------------------------------------------- #
def _negated_objective(problem: CombinatorialProblem, x: np.ndarray) -> float:
    return -problem.objective(x)


def _native_objective(problem: CombinatorialProblem, x: np.ndarray) -> float:
    return float(problem.objective(x))


def _coloring_energy(problem: GraphColoringProblem, x: np.ndarray) -> float:
    return problem.penalty_conflict * problem.objective(x)


# --------------------------------------------------------------------- #
# The built-in catalogue
# --------------------------------------------------------------------- #
register_family(ProblemFamily(
    name="knapsack",
    problem_type=KnapsackProblem,
    description="Linear 0/1 knapsack (one capacity constraint).",
    transformation="diagonal QUBO Q = -diag(p); capacity detached",
    filtered_constraints="w.x <= C (hardware filter)",
    move_constraints="--",
    generate=generate_knapsack_instance,
    conformance_instance=lambda seed: generate_knapsack_instance(
        num_items=10, seed=seed, name=f"conf_knapsack_s{seed}"),
    solver_params=_knapsack_params,
    expected_energy=_negated_objective,
    reference_solution=_brute_force_reference,
))

register_family(ProblemFamily(
    name="qkp",
    problem_type=QuadraticKnapsackProblem,
    description="Quadratic knapsack, the paper's representative workload.",
    transformation="QUBO Q = -P_upper (Eq. (4)); capacity detached (Eq. (6))",
    filtered_constraints="w.x <= C (hardware filter)",
    move_constraints="--",
    generate=generate_qkp_instance,
    conformance_instance=lambda seed: generate_qkp_instance(
        num_items=10, density=0.5, seed=seed, name=f"conf_qkp_s{seed}"),
    solver_params=_knapsack_params,
    expected_energy=_negated_objective,
    reference_solution=_brute_force_reference,
))

register_family(ProblemFamily(
    name="mdqkp",
    problem_type=MultiDimensionalKnapsackProblem,
    description="Multi-dimensional quadratic knapsack (m capacity constraints).",
    transformation="QUBO Q = -P_upper; one detached inequality per resource",
    filtered_constraints="W x <= C, one hardware filter per row",
    move_constraints="--",
    generate=generate_mdqkp_instance,
    conformance_instance=lambda seed: generate_mdqkp_instance(
        num_items=8, num_constraints=2, seed=seed, name=f"conf_mdqkp_s{seed}"),
    solver_params=_knapsack_params,
    expected_energy=_negated_objective,
    reference_solution=_brute_force_reference,
))

register_family(ProblemFamily(
    name="maxcut",
    problem_type=MaxCutProblem,
    description="Max-Cut, the canonical unconstrained COP.",
    transformation="QUBO sum w_ij (2 x_i x_j - x_i - x_j); min = -max cut",
    filtered_constraints="--",
    move_constraints="--",
    generate=generate_maxcut_instance,
    conformance_instance=lambda seed: generate_maxcut_instance(
        num_nodes=8, seed=seed, name=f"conf_maxcut_s{seed}"),
    solver_params=_maxcut_params,
    expected_energy=_negated_objective,
    reference_solution=_brute_force_reference,
))

register_family(ProblemFamily(
    name="coloring",
    problem_type=GraphColoringProblem,
    description="Graph k-coloring (minimise monochromatic edges).",
    transformation="conflict QUBO; one-hot equalities detached",
    filtered_constraints="--",
    move_constraints="one colour per vertex (one-hot group moves)",
    generate=generate_coloring_instance,
    conformance_instance=lambda seed: generate_coloring_instance(
        num_nodes=6, edge_probability=0.5, num_colors=3, seed=seed,
        name=f"conf_coloring_s{seed}"),
    solver_params=_coloring_params,
    expected_energy=_coloring_energy,
    reference_solution=_coloring_reference,
))

register_family(ProblemFamily(
    name="tsp",
    problem_type=TravelingSalesmanProblem,
    description="Symmetric TSP in the permutation-matrix encoding.",
    transformation="distance QUBO; row/column one-hot equalities detached",
    filtered_constraints="--",
    move_constraints="permutation validity (swap moves)",
    generate=generate_tsp_instance,
    conformance_instance=lambda seed: generate_tsp_instance(
        num_cities=4, integer_distances=True, seed=seed,
        name=f"conf_tsp_s{seed}"),
    solver_params=_tsp_params,
    expected_energy=_native_objective,
    reference_solution=_tsp_reference,
))

register_family(ProblemFamily(
    name="binpacking",
    problem_type=BinPackingProblem,
    description="Bin packing (minimise bins used, per-bin capacities).",
    transformation="usage QUBO; per-bin capacity inequalities detached",
    filtered_constraints="s.x_b <= C, one hardware filter per bin",
    move_constraints="item one-hot + usage-bit consistency (relocate moves)",
    generate=generate_bin_packing_instance,
    conformance_instance=lambda seed: generate_bin_packing_instance(
        num_items=4, num_bins=3, capacity=10.0, max_size_fraction=0.5,
        seed=seed, name=f"conf_binpacking_s{seed}"),
    solver_params=_bin_packing_params,
    expected_energy=_native_objective,
    reference_solution=_bin_packing_reference,
))

register_family(ProblemFamily(
    name="spin_glass",
    problem_type=SherringtonKirkpatrickProblem,
    description="Sherrington-Kirkpatrick spin glass (unconstrained).",
    transformation="exact Ising-to-QUBO variable change sigma = 1 - 2x",
    filtered_constraints="--",
    move_constraints="--",
    generate=generate_sk_instance,
    conformance_instance=lambda seed: generate_sk_instance(
        num_spins=8, discrete=True, seed=seed, name=f"conf_sk_s{seed}"),
    solver_params=_sk_params,
    expected_energy=_native_objective,
    reference_solution=_brute_force_reference,
))

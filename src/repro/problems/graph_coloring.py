"""Graph coloring as a QUBO problem (Table 1 "Graph Coloring" row).

Decision version: can graph ``G`` be coloured with ``k`` colours so that no
edge is monochromatic?  The standard QUBO encoding uses one-hot variables
``x_{v,c} = 1`` iff vertex ``v`` gets colour ``c``:

    H = A * sum_v (1 - sum_c x_{v,c})^2  +  B * sum_{(u,v) in E} sum_c x_{u,c} x_{v,c}

The one-hot penalty is an *equality* constraint, which the paper classes as a
special case of inequality constraints (Sec. 3.2); the HyCiM solver handles
it through its move generator (colour swaps preserve one-hot validity).

Variable layout: ``x[v * k + c]`` is vertex ``v`` / colour ``c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import networkx as nx
import numpy as np

from repro.core.constraints import EqualityConstraint
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO
from repro.problems.base import CombinatorialProblem


@dataclass
class GraphColoringProblem(CombinatorialProblem):
    """k-coloring of an undirected graph as a constraint-satisfaction QUBO."""

    adjacency: np.ndarray
    num_colors: int
    penalty_onehot: float = 4.0
    penalty_conflict: float = 1.0
    name: str = "coloring"

    problem_class = "Graph Coloring"
    is_maximization = False

    def __post_init__(self) -> None:
        a = np.asarray(self.adjacency, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"adjacency matrix must be square, got {a.shape}")
        if not np.allclose(a, a.T):
            raise ValueError("adjacency matrix must be symmetric")
        if self.num_colors < 1:
            raise ValueError("num_colors must be at least 1")
        self.adjacency = a

    @classmethod
    def from_graph(cls, graph: nx.Graph, num_colors: int,
                   name: str = "coloring") -> "GraphColoringProblem":
        """Build from a ``networkx`` graph."""
        nodes = sorted(graph.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        a = np.zeros((n, n))
        for u, v in graph.edges():
            a[index[u], index[v]] = 1.0
            a[index[v], index[u]] = 1.0
        return cls(adjacency=a, num_colors=num_colors, name=name)

    @property
    def num_nodes(self) -> int:
        """Number of graph vertices."""
        return self.adjacency.shape[0]

    @property
    def num_variables(self) -> int:
        return self.num_nodes * self.num_colors

    # ------------------------------------------------------------------ #
    # Encoding helpers
    # ------------------------------------------------------------------ #
    def variable_index(self, vertex: int, color: int) -> int:
        """Flat index of the one-hot variable for ``(vertex, color)``."""
        if not 0 <= vertex < self.num_nodes or not 0 <= color < self.num_colors:
            raise IndexError("vertex or color out of range")
        return vertex * self.num_colors + color

    def decode(self, x: Iterable[float]) -> List[int]:
        """Colour assignment per vertex (-1 when a vertex has no colour set)."""
        vec = self._validate(x)
        assignment: List[int] = []
        for v in range(self.num_nodes):
            block = vec[v * self.num_colors:(v + 1) * self.num_colors]
            chosen = np.flatnonzero(block == 1)
            assignment.append(int(chosen[0]) if chosen.size == 1 else -1)
        return assignment

    def encode(self, assignment: Iterable[int]) -> np.ndarray:
        """One-hot encode a per-vertex colour assignment."""
        colors = list(assignment)
        if len(colors) != self.num_nodes:
            raise ValueError("assignment length must equal the number of vertices")
        x = np.zeros(self.num_variables)
        for v, c in enumerate(colors):
            if not 0 <= c < self.num_colors:
                raise ValueError(f"colour {c} out of range for vertex {v}")
            x[self.variable_index(v, c)] = 1.0
        return x

    # ------------------------------------------------------------------ #
    # CombinatorialProblem interface
    # ------------------------------------------------------------------ #
    def conflicts(self, x: Iterable[float]) -> int:
        """Number of monochromatic edges under the (decoded) assignment."""
        vec = self._validate(x)
        count = 0
        for u in range(self.num_nodes):
            for v in range(u + 1, self.num_nodes):
                if self.adjacency[u, v] == 0:
                    continue
                for c in range(self.num_colors):
                    if vec[self.variable_index(u, c)] == 1 and vec[self.variable_index(v, c)] == 1:
                        count += 1
        return count

    def objective(self, x: Iterable[float]) -> float:
        """Number of conflicts (to be minimised; 0 means a proper colouring)."""
        return float(self.conflicts(x))

    def is_feasible(self, x: Iterable[float]) -> bool:
        """Feasible means every vertex has exactly one colour."""
        vec = self._validate(x)
        for v in range(self.num_nodes):
            block = vec[v * self.num_colors:(v + 1) * self.num_colors]
            if block.sum() != 1:
                return False
        return True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised one-hot check over an ``(M, V*k)`` batch.

        A replica is feasible iff every vertex's colour block sums to exactly
        one — the same test :meth:`is_feasible` applies per vertex.
        """
        batch = self._validate_batch(configurations)
        blocks = batch.reshape(batch.shape[0], self.num_nodes, self.num_colors)
        return (blocks.sum(axis=2) == 1).all(axis=1)

    def is_proper_coloring(self, x: Iterable[float]) -> bool:
        """Feasible and conflict-free."""
        return self.is_feasible(x) and self.conflicts(x) == 0

    def onehot_constraints(self) -> Tuple[EqualityConstraint, ...]:
        """One equality constraint ``sum_c x_{v,c} == 1`` per vertex."""
        constraints = []
        for v in range(self.num_nodes):
            weights = np.zeros(self.num_variables)
            weights[v * self.num_colors:(v + 1) * self.num_colors] = 1.0
            constraints.append(EqualityConstraint(weights, 1.0, name=f"onehot-v{v}"))
        return tuple(constraints)

    def conflict_qubo(self) -> QUBOModel:
        """QUBO of the conflict term only (no one-hot penalty)."""
        n = self.num_variables
        q = np.zeros((n, n))
        for u in range(self.num_nodes):
            for v in range(u + 1, self.num_nodes):
                if self.adjacency[u, v] == 0:
                    continue
                for c in range(self.num_colors):
                    a = self.variable_index(u, c)
                    b = self.variable_index(v, c)
                    q[min(a, b), max(a, b)] += self.penalty_conflict
        return QUBOModel(q)

    def to_qubo(self) -> QUBOModel:
        """Full penalty QUBO: one-hot penalty + conflict penalty."""
        n = self.num_variables
        q = self.conflict_qubo().matrix.copy()
        offset = 0.0
        a_pen = self.penalty_onehot
        for v in range(self.num_nodes):
            indices = [self.variable_index(v, c) for c in range(self.num_colors)]
            # A * (1 - sum_c x)^2 = A * (1 - 2 sum_c x + sum_c x + 2 sum_{c<d} x_c x_d)
            offset += a_pen
            for idx in indices:
                q[idx, idx] += -a_pen
            for i, a in enumerate(indices):
                for b in indices[i + 1:]:
                    q[a, b] += 2.0 * a_pen
        return QUBOModel(q, offset=offset)

    def to_inequality_qubo(self) -> InequalityQUBO:
        """Conflict QUBO with detached one-hot equality constraints."""
        return InequalityQUBO(qubo=self.conflict_qubo(), constraints=self.onehot_constraints())

    def random_feasible_configuration(self, rng: np.random.Generator,
                                      max_tries: int = 10_000) -> np.ndarray:
        """Uniformly random proper one-hot assignment (colours may conflict)."""
        assignment = rng.integers(0, self.num_colors, size=self.num_nodes)
        return self.encode(assignment)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphColoringProblem(name={self.name!r}, nodes={self.num_nodes}, "
            f"colors={self.num_colors})"
        )

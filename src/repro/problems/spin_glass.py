"""Sherrington-Kirkpatrick (SK) spin glass (Table 1 "Spin Glass" row).

The SK model is a fully-connected Ising model with Gaussian couplings and no
external fields:

    H(sigma) = sum_{i<j} J_ij sigma_i sigma_j,   J_ij ~ N(0, 1/N)

It is the canonical unconstrained hard instance used to stress Ising
machines; here it exercises the plain-QUBO path of the annealers (no
inequality filter involved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.ising import IsingModel
from repro.core.qubo import QUBOModel
from repro.problems.base import CombinatorialProblem


@dataclass
class SherringtonKirkpatrickProblem(CombinatorialProblem):
    """SK spin glass defined by a symmetric coupling matrix with zero diagonal."""

    couplings: np.ndarray
    name: str = "sk"

    problem_class = "Spin Glass"
    is_maximization = False

    def __post_init__(self) -> None:
        j = np.asarray(self.couplings, dtype=float)
        if j.ndim != 2 or j.shape[0] != j.shape[1]:
            raise ValueError(f"coupling matrix must be square, got {j.shape}")
        if not np.allclose(j, j.T):
            raise ValueError("coupling matrix must be symmetric")
        if np.any(np.diag(j) != 0):
            raise ValueError("coupling matrix diagonal must be zero")
        self.couplings = j

    @property
    def num_spins(self) -> int:
        """Number of spins ``N``."""
        return self.couplings.shape[0]

    @property
    def num_variables(self) -> int:
        return self.num_spins

    def spin_energy(self, sigma: Iterable[float]) -> float:
        """Hamiltonian value for a +/-1 spin vector."""
        return self.to_ising().energy(sigma)

    def objective(self, x: Iterable[float]) -> float:
        """Hamiltonian value with binary encoding ``sigma = 1 - 2x``."""
        vec = self._validate(x)
        sigma = 1.0 - 2.0 * vec
        return self.spin_energy(sigma)

    def is_feasible(self, x: Iterable[float]) -> bool:
        """Every spin configuration is feasible."""
        self._validate(x)
        return True

    def is_feasible_batch(self, configurations: np.ndarray) -> np.ndarray:
        """Every replica is feasible: the SK model is unconstrained."""
        batch = self._validate_batch(configurations)
        return np.ones(batch.shape[0], dtype=bool)

    def linear_feasibility_constraints(self) -> tuple:
        """Unconstrained: the empty conjunction."""
        return ()

    def to_ising(self) -> IsingModel:
        """The underlying Ising model (zero external fields)."""
        return IsingModel(couplings=np.triu(self.couplings, k=1),
                          fields=np.zeros(self.num_spins))

    def to_qubo(self) -> QUBOModel:
        """Exact QUBO via the Ising-to-QUBO variable change."""
        return self.to_ising().to_qubo()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SherringtonKirkpatrickProblem(name={self.name!r}, N={self.num_spins})"

"""Experiment harness: metrics, per-figure experiment runners and reporting.

Every table and figure of the paper's evaluation section has a corresponding
runner in :mod:`repro.analysis.experiments`; the benchmark suite under
``benchmarks/`` is a thin wrapper around these runners, so the same code can
be driven at reduced scale (CI) or at paper scale (overnight run).

Repeated-trial execution is delegated to :mod:`repro.runtime`: the runners
that score success rates over many SA descents accept a ``backend`` argument
(``"serial"`` / ``"process"``) and inherit the runtime's deterministic
``SeedSequence``-spawned per-trial seeding.
"""

from repro.analysis.metrics import (
    normalized_values,
    search_space_reduction_bits,
    success_rate,
)
from repro.analysis.reporting import format_table, render_markdown_table
from repro.analysis.sweeps import (
    SweepPoint,
    sweep_exchange_interval,
    sweep_filter_noise,
    sweep_sa_budget,
)
from repro.analysis.experiments import (
    EnergyEvolutionResult,
    FamilyStudyResult,
    FamilyStudyRow,
    FilterValidationResult,
    HardwareOverheadRecord,
    SolverSummaryRow,
    SolvingEfficiencyResult,
    run_crossbar_linearity,
    run_energy_evolution,
    run_family_study,
    run_filter_validation,
    run_hardware_overhead_study,
    run_solver_summary,
    run_solving_efficiency_study,
)

__all__ = [
    "success_rate",
    "normalized_values",
    "search_space_reduction_bits",
    "format_table",
    "render_markdown_table",
    "SweepPoint",
    "sweep_sa_budget",
    "sweep_exchange_interval",
    "sweep_filter_noise",
    "FilterValidationResult",
    "HardwareOverheadRecord",
    "SolvingEfficiencyResult",
    "EnergyEvolutionResult",
    "SolverSummaryRow",
    "FamilyStudyRow",
    "FamilyStudyResult",
    "run_filter_validation",
    "run_hardware_overhead_study",
    "run_solving_efficiency_study",
    "run_energy_evolution",
    "run_crossbar_linearity",
    "run_solver_summary",
    "run_family_study",
]

"""Per-figure / per-table experiment runners (paper Sec. 4).

Each runner reproduces one evaluation artefact of the paper and returns a
structured result object; the benchmark harnesses under ``benchmarks/`` call
these with scaled-down parameters and assert the qualitative shape of the
result, while ``examples/`` and EXPERIMENTS.md use the same code to print the
full rows/series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import (
    classification_metrics,
    mean_success_rate,
    success_rate,
)
from repro.annealing.moves import (
    KnapsackNeighborhoodMove,
    MoveGenerator,
    OneHotGroupMove,
    PermutationSwapMove,
    SingleFlipMove,
)
from repro.annealing.schedule import GeometricSchedule
from repro.cim.cost_model import (
    CostModelParameters,
    dqubo_hardware_cost,
    hardware_size_saving,
    hycim_hardware_cost,
)
from repro.cim.crossbar import CrossbarConfig, FeFETCrossbar
from repro.cim.inequality_filter import InequalityFilter
from repro.core.dqubo import SlackEncoding, predict_dqubo_dimension, predict_dqubo_qmax
from repro.core.quantization import QuantizationReport, quantization_report
from repro.exact.brute_force import solve_brute_force
from repro.exact.dp_knapsack import solve_knapsack_dp
from repro.exact.local_search import reference_qkp_value
from repro.fefet.variability import VariabilityModel
from repro.problems.generators import (
    generate_coloring_instance,
    generate_knapsack_instance,
    generate_maxcut_instance,
    generate_qkp_instance,
    generate_sk_instance,
    generate_tsp_instance,
)
from repro.problems.families import family_names, get_family
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.runtime import aggregate_trials, meets_success_bar, run_trials


# --------------------------------------------------------------------- #
# Fig. 8 -- inequality filter validation
# --------------------------------------------------------------------- #
@dataclass
class FilterValidationResult:
    """Outcome of the Monte-Carlo filter validation (Fig. 8).

    Attributes
    ----------
    normalized_voltages:
        Working-matchline voltage divided by replica voltage, one entry per
        evaluated configuration (the Fig. 8 y-axis).
    ground_truth_feasible:
        Exact feasibility of each configuration.
    filter_decisions:
        The comparator decision for each configuration.
    metrics:
        Accuracy / false-positive / false-negative summary.
    """

    normalized_voltages: np.ndarray
    ground_truth_feasible: np.ndarray
    filter_decisions: np.ndarray
    metrics: Dict[str, float]

    @property
    def num_cases(self) -> int:
        return int(self.normalized_voltages.shape[0])


def run_filter_validation(
    problems: Sequence[QuadraticKnapsackProblem],
    samples_per_instance: int = 20,
    filter_rows: int = 16,
    variability: Optional[VariabilityModel] = None,
    matchline_noise_sigma: float = 0.0,
    seed: int = 0,
) -> FilterValidationResult:
    """Classify Monte-Carlo sampled configurations with the CiM filter.

    The paper draws 20 configurations per instance (10 feasible, 10
    infeasible) for 40 instances, 800 cases in total.
    """
    if samples_per_instance < 2 or samples_per_instance % 2:
        raise ValueError("samples_per_instance must be a positive even number")
    rng = np.random.default_rng(seed)
    voltages: List[float] = []
    truths: List[bool] = []
    decisions: List[bool] = []
    half = samples_per_instance // 2
    for problem in problems:
        cim_filter = InequalityFilter(
            problem.constraint(),
            num_rows=filter_rows,
            variability=variability,
            matchline_noise_sigma=matchline_noise_sigma,
        )
        samples = [problem.random_feasible_configuration(rng) for _ in range(half)]
        samples += [problem.random_infeasible_configuration(rng) for _ in range(half)]
        for configuration in samples:
            decision = cim_filter.evaluate(configuration, rng=rng)
            voltages.append(decision.normalized_voltage)
            truths.append(problem.is_feasible(configuration))
            decisions.append(decision.feasible)
    return FilterValidationResult(
        normalized_voltages=np.array(voltages),
        ground_truth_feasible=np.array(truths, dtype=bool),
        filter_decisions=np.array(decisions, dtype=bool),
        metrics=classification_metrics(decisions, truths),
    )


# --------------------------------------------------------------------- #
# Fig. 9 -- hardware overhead study
# --------------------------------------------------------------------- #
@dataclass
class HardwareOverheadRecord:
    """Per-instance hardware comparison (one row of Fig. 9(a,b,c)).

    Attributes
    ----------
    instance_name:
        QKP instance label.
    hycim_report / dqubo_report:
        Quantization summaries (dimension, Q_max, bits).
    search_space_reduction_bits:
        ``(n + C) - n`` -- the exponent of the search-space shrink factor.
    bit_reduction:
        Fractional reduction of per-element bits (Fig. 9(a) annotation).
    hardware_saving:
        Fractional area saving of HyCiM over D-QUBO (Fig. 9(c)).
    """

    instance_name: str
    hycim_report: QuantizationReport
    dqubo_report: QuantizationReport
    search_space_reduction_bits: int
    bit_reduction: float
    hardware_saving: float


def run_hardware_overhead_study(
    problems: Sequence[QuadraticKnapsackProblem],
    alpha: float = 2.0,
    beta: float = 2.0,
    filter_rows: int = 16,
    cost_parameters: CostModelParameters = CostModelParameters(),
) -> List[HardwareOverheadRecord]:
    """Compute the Fig. 9 quantities for every QKP instance.

    The D-QUBO side is characterised analytically (dimension and ``Q_max``
    follow closed forms of ``n``, ``C`` and the penalty weights), so the study
    runs at the paper's full scale in milliseconds.
    """
    records: List[HardwareOverheadRecord] = []
    for problem in problems:
        hycim_model = problem.to_inequality_qubo()
        hycim_report = quantization_report(hycim_model)

        capacity = problem.capacity
        dqubo_dimension = predict_dqubo_dimension(problem.num_items, capacity,
                                                  SlackEncoding.ONE_HOT)
        dqubo_qmax = predict_dqubo_qmax(
            objective_qmax=hycim_report.max_abs_coefficient,
            max_weight=float(problem.weights.max()),
            capacity=capacity,
            alpha=alpha,
            beta=beta,
            encoding=SlackEncoding.ONE_HOT,
        )
        dqubo_bits = max(1, int(math.ceil(math.log2(dqubo_qmax))))
        dqubo_report = QuantizationReport(
            num_variables=dqubo_dimension,
            max_abs_coefficient=dqubo_qmax,
            bits_per_element=dqubo_bits,
            crossbar_cells=dqubo_dimension * dqubo_dimension * dqubo_bits,
            search_space_bits=dqubo_dimension,
        )

        hycim_cost = hycim_hardware_cost(hycim_report, filter_rows=filter_rows,
                                         params=cost_parameters)
        dqubo_cost = dqubo_hardware_cost(dqubo_report, params=cost_parameters)
        records.append(
            HardwareOverheadRecord(
                instance_name=problem.name,
                hycim_report=hycim_report,
                dqubo_report=dqubo_report,
                search_space_reduction_bits=dqubo_dimension - hycim_report.num_variables,
                bit_reduction=hycim_report.bit_reduction_vs(dqubo_report),
                hardware_saving=hardware_size_saving(hycim_cost, dqubo_cost),
            )
        )
    return records


# --------------------------------------------------------------------- #
# Fig. 10 -- problem solving efficiency
# --------------------------------------------------------------------- #
@dataclass
class SolvingEfficiencyResult:
    """Outcome of the HyCiM vs D-QUBO solving-efficiency comparison (Fig. 10).

    Attributes
    ----------
    hycim_normalized / dqubo_normalized:
        Per-run QKP value normalised by the instance reference value,
        concatenated over all instances and initial states.
    hycim_success_rates / dqubo_success_rates:
        Per-instance success rates.
    hycim_mean_success / dqubo_mean_success:
        Average success rate over instances (the headline numbers).
    instance_names:
        Instance labels, aligned with the per-instance rates.
    """

    hycim_normalized: np.ndarray
    dqubo_normalized: np.ndarray
    hycim_success_rates: List[float]
    dqubo_success_rates: List[float]
    instance_names: List[str]

    @property
    def hycim_mean_success(self) -> float:
        return mean_success_rate(self.hycim_success_rates)

    @property
    def dqubo_mean_success(self) -> float:
        return mean_success_rate(self.dqubo_success_rates)


def run_solving_efficiency_study(
    problems: Sequence[QuadraticKnapsackProblem],
    num_initial_states: int = 20,
    sa_iterations: int = 1000,
    moves_per_iteration: Optional[int] = None,
    success_threshold: float = 0.95,
    use_hardware: bool = False,
    seed: int = 0,
    backend: str = "vectorized",
    store: Optional[Any] = None,
) -> SolvingEfficiencyResult:
    """Run the Fig. 10 protocol: many SA descents per instance for both solvers.

    Initial configurations are Monte-Carlo sampled feasible selections, the
    same starting points being handed to both solvers (the D-QUBO solver
    additionally seeds its slack bits consistently); each descent runs
    ``sa_iterations`` iterations of ``moves_per_iteration`` proposals
    (one sweep of the problem variables by default).  A run is successful
    when it reaches ``success_threshold`` of the instance's reference
    (best-known) value.

    The repeated descents are executed by :func:`repro.runtime.run_trials`
    on the vectorised replica backend by default -- all of an instance's
    descents advance in lock-step, with per-seed results identical to the
    serial backend for *both* solvers (``dqubo`` included: its batched
    engine anneals the combined penalty QUBO with batched energy
    evaluation).  Pass ``backend="process"`` to fan the
    descents out over cores instead; per-trial seeds are spawned
    deterministically from ``seed`` and both solvers receive the same trial
    seeds and the same initial states on every backend.

    With a ``store`` (:class:`repro.store.CampaignStore`) every descent is
    checkpointed as it completes -- each (instance x solver) pair is one
    persisted run keyed by its params, instance content hash, seed and
    initial states -- so the paper-scale Fig. 10 protocol resumes from where
    an interrupted run stopped instead of re-burning finished descents.
    """
    rng = np.random.default_rng(seed)
    hycim_norm: List[float] = []
    dqubo_norm: List[float] = []
    hycim_rates: List[float] = []
    dqubo_rates: List[float] = []
    names: List[str] = []

    for problem in problems:
        reference = reference_qkp_value(problem, seed=seed)
        initials = [problem.random_feasible_configuration(rng)
                    for _ in range(num_initial_states)]
        sweep = moves_per_iteration or problem.num_items
        # No explicit schedule: the runtime's instance-scaled default (20x
        # the largest objective coefficient) keeps uphill swaps possible
        # early in the anneal, identically for both solvers.
        shared = {"num_iterations": sa_iterations, "moves_per_iteration": sweep}

        hycim_batch = run_trials(
            problem, solver="hycim", num_trials=num_initial_states,
            params={**shared, "move_generator": "knapsack",
                    "use_hardware": use_hardware},
            backend=backend, master_seed=seed, initial_states=initials,
            store=store)
        dqubo_batch = run_trials(
            problem, solver="dqubo", num_trials=num_initial_states,
            params=shared, backend=backend, master_seed=seed,
            initial_states=initials, store=store)

        hycim_values = [result.best_objective or 0.0
                        for result in hycim_batch.results]
        dqubo_values = [result.best_objective or 0.0
                        for result in dqubo_batch.results]

        hycim_norm.extend(np.asarray(hycim_values) / reference)
        dqubo_norm.extend(np.asarray(dqubo_values) / reference)
        hycim_rates.append(success_rate(hycim_values, reference, success_threshold))
        dqubo_rates.append(success_rate(dqubo_values, reference, success_threshold))
        names.append(problem.name)

    return SolvingEfficiencyResult(
        hycim_normalized=np.array(hycim_norm),
        dqubo_normalized=np.array(dqubo_norm),
        hycim_success_rates=hycim_rates,
        dqubo_success_rates=dqubo_rates,
        instance_names=names,
    )


# --------------------------------------------------------------------- #
# Fig. 7(f) -- energy evolution on the chip-demo problem
# --------------------------------------------------------------------- #
@dataclass
class EnergyEvolutionResult:
    """Energy-vs-iteration curves of repeated HyCiM runs (Fig. 7(f)).

    Attributes
    ----------
    histories:
        One incumbent-energy trace per run.
    optimal_energy:
        The true minimum of the inequality-QUBO objective (brute force).
    runs_reaching_optimum:
        How many runs ended at the optimal energy.
    """

    histories: List[List[float]]
    optimal_energy: float
    runs_reaching_optimum: int

    @property
    def num_runs(self) -> int:
        return len(self.histories)


def run_energy_evolution(
    problem: QuadraticKnapsackProblem,
    num_runs: int = 9,
    sa_iterations: int = 100,
    use_hardware: bool = True,
    variability: Optional[VariabilityModel] = None,
    seed: int = 0,
    tolerance: float = 1e-6,
) -> EnergyEvolutionResult:
    """Repeat the chip measurement of Fig. 7(f): program, anneal, record energy.

    Each run reprograms the (simulated) crossbar -- device variability is
    re-sampled per trial, each trial occupying one chip slice of the
    device axis -- and records the incumbent energy after every iteration
    (one sweep of the problem variables per iteration).  Every run starts
    from the empty selection, mirroring the erased state of the chip before
    each measurement.  The runs advance in lock-step on the vectorised
    backend, ``variability`` included (batch-of-chips, no scalar fallback).
    """
    model = problem.to_inequality_qubo()
    _, optimal_energy = model.brute_force_minimum()
    batch = run_trials(
        problem,
        solver="hycim",
        backend="vectorized",
        num_trials=num_runs,
        params={
            "use_hardware": use_hardware,
            "num_iterations": sa_iterations,
            "moves_per_iteration": problem.num_items,
            "move_generator": "knapsack",
            "variability": variability,
            "record_history": True,
            "initial": "zeros",
        },
        master_seed=seed,
    )
    histories: List[List[float]] = []
    reached = 0
    for result in batch.results:
        histories.append(result.energy_history)
        exact_best = model.energy(result.best_configuration)
        if abs(exact_best - optimal_energy) <= tolerance + 1e-9 * abs(optimal_energy):
            reached += 1
    return EnergyEvolutionResult(
        histories=histories,
        optimal_energy=float(optimal_energy),
        runs_reaching_optimum=reached,
    )


# --------------------------------------------------------------------- #
# Fig. 7(d) -- crossbar linearity
# --------------------------------------------------------------------- #
def run_crossbar_linearity(
    array_size: int = 32,
    counts: Optional[Sequence[int]] = None,
    on_current_variation_sigma: float = 0.05,
    current_noise_sigma: float = 0.01,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Column current vs number of activated cells on an ``array_size`` crossbar.

    Returns the sweep counts, the measured currents and the Pearson r^2 of a
    linear fit (the paper's chip shows visually linear behaviour up to 24
    activated cells).
    """
    if counts is None:
        counts = list(range(0, min(array_size, 24) + 1, 2))
    from repro.core.qubo import QUBOModel

    qubo = QUBOModel(np.ones((array_size, array_size)))
    crossbar = FeFETCrossbar.from_qubo(
        qubo,
        config=CrossbarConfig(
            weight_bits=1,
            on_current_variation_sigma=on_current_variation_sigma,
            current_noise_sigma=current_noise_sigma,
            seed=seed,
        ),
    )
    counts_arr, currents = crossbar.linearity_sweep(counts)
    if len(counts_arr) > 1 and np.std(currents) > 0:
        correlation = np.corrcoef(counts_arr, currents)[0, 1]
        r_squared = float(correlation ** 2)
    else:
        r_squared = 1.0
    return counts_arr, currents, r_squared


# --------------------------------------------------------------------- #
# Table 1 -- solver summary over COP classes
# --------------------------------------------------------------------- #
@dataclass
class SolverSummaryRow:
    """One row of the Table 1 reproduction.

    Attributes
    ----------
    problem_class:
        COP family name.
    constraint_type:
        "-" (unconstrained), "Equality" or "Inequality".
    search_space_reduction:
        Whether the HyCiM transformation shrinks the search space for this
        problem class (only constrained problems benefit).
    problem_size:
        Number of decision variables of the evaluated instance.
    success_rate:
        Fraction of runs reaching the success criterion.
    """

    problem_class: str
    constraint_type: str
    search_space_reduction: bool
    problem_size: int
    success_rate: float


def _run_success_rate(problem, reference_value: float, maximize: bool,
                      num_runs: int, sa_iterations: int,
                      move_generator: Optional[MoveGenerator],
                      threshold: float, seed: int,
                      schedule: Optional[GeometricSchedule] = None) -> float:
    """Run HyCiM repeatedly via the runtime (vectorised replicas) and score
    against a reference value."""
    batch = run_trials(
        problem,
        solver="hycim",
        num_trials=num_runs,
        params={
            "num_iterations": sa_iterations,
            "use_hardware": False,
            "move_generator": move_generator or SingleFlipMove(),
            "schedule": schedule or GeometricSchedule(),
        },
        backend="vectorized",
        master_seed=seed,
    )
    successes = sum(
        1 for result in batch.results
        if result.feasible and result.best_objective is not None
        and meets_success_bar(result.best_objective, reference_value,
                              threshold, maximize)
    )
    return successes / num_runs


def run_solver_summary(
    num_runs: int = 10,
    sa_iterations: int = 2000,
    threshold: float = 0.95,
    seed: int = 11,
) -> List[SolverSummaryRow]:
    """Reproduce the structure of Table 1: one COP class per row, solved by HyCiM.

    Each row uses a small instance whose reference optimum is computable
    exactly (brute force or DP), so the reported success rates are grounded.
    """
    rows: List[SolverSummaryRow] = []

    maxcut = generate_maxcut_instance(num_nodes=12, edge_probability=0.5, seed=seed)
    maxcut_opt = solve_brute_force(maxcut, max_variables=16).best_value
    rows.append(SolverSummaryRow(
        problem_class=maxcut.problem_class,
        constraint_type="-",
        search_space_reduction=False,
        problem_size=maxcut.num_variables,
        success_rate=_run_success_rate(maxcut, maxcut_opt, True, num_runs,
                                       sa_iterations, None, threshold, seed),
    ))

    sk = generate_sk_instance(num_spins=12, seed=seed)
    sk_opt = solve_brute_force(sk, max_variables=16).best_value
    rows.append(SolverSummaryRow(
        problem_class=sk.problem_class,
        constraint_type="-",
        search_space_reduction=False,
        problem_size=sk.num_variables,
        success_rate=_run_success_rate(sk, sk_opt, False, num_runs,
                                       sa_iterations, None, threshold, seed),
    ))

    tsp = generate_tsp_instance(num_cities=4, seed=seed)
    tsp_opt = solve_brute_force(tsp, max_variables=16).best_value
    tsp_moves = PermutationSwapMove(num_groups=tsp.num_cities, group_size=tsp.num_cities)
    rows.append(SolverSummaryRow(
        problem_class=tsp.problem_class,
        constraint_type="Equality",
        search_space_reduction=True,
        problem_size=tsp.num_variables,
        success_rate=_run_success_rate(tsp, tsp_opt, False, num_runs,
                                       sa_iterations, tsp_moves, threshold, seed),
    ))

    coloring = generate_coloring_instance(num_nodes=6, edge_probability=0.4,
                                          num_colors=3, seed=seed)
    coloring_opt = solve_brute_force(coloring, max_variables=20).best_value
    coloring_moves = OneHotGroupMove(group_sizes=[coloring.num_colors] * coloring.num_nodes)
    rows.append(SolverSummaryRow(
        problem_class=coloring.problem_class,
        constraint_type="Equality",
        search_space_reduction=True,
        problem_size=coloring.num_variables,
        success_rate=_run_success_rate(coloring, coloring_opt, False, num_runs,
                                       sa_iterations, coloring_moves, threshold, seed),
    ))

    knapsack = generate_knapsack_instance(num_items=15, seed=seed)
    knapsack_opt = solve_knapsack_dp(knapsack).best_value
    knapsack_schedule = GeometricSchedule(20.0 * float(knapsack.profits.max()), 1.0)
    rows.append(SolverSummaryRow(
        problem_class=knapsack.problem_class,
        constraint_type="Inequality",
        search_space_reduction=True,
        problem_size=knapsack.num_variables,
        success_rate=_run_success_rate(knapsack, knapsack_opt, True, num_runs,
                                       sa_iterations, KnapsackNeighborhoodMove(),
                                       threshold, seed, schedule=knapsack_schedule),
    ))

    qkp = generate_qkp_instance(num_items=15, density=0.5, seed=seed)
    qkp_opt = solve_brute_force(qkp, max_variables=16).best_value
    qkp_schedule = GeometricSchedule(20.0 * float(np.max(np.abs(qkp.profits))), 1.0)
    rows.append(SolverSummaryRow(
        problem_class=qkp.problem_class,
        constraint_type="Inequality",
        search_space_reduction=True,
        problem_size=qkp.num_variables,
        success_rate=_run_success_rate(qkp, qkp_opt, True, num_runs,
                                       sa_iterations, KnapsackNeighborhoodMove(),
                                       threshold, seed, schedule=qkp_schedule),
    ))

    return rows


# --------------------------------------------------------------------- #
# Cross-family study -- every registered family through HyCiM
# --------------------------------------------------------------------- #
@dataclass
class FamilyStudyRow:
    """One registered problem family solved end-to-end through HyCiM.

    Attributes
    ----------
    family:
        Registry name (:func:`repro.problems.family_names`).
    instance_name / problem_size:
        The conformance-sized instance the study solves.
    transformation:
        The family's QUBO/filter transformation summary.
    reference_value:
        Exact optimum of the instance (the family's reference solver).
    best_objective:
        Best native objective over the feasible trials (``None`` if no
        trial ended feasible).
    success_rate / feasible_fraction:
        Fraction of trials reaching the paper's success bar / ending on a
        feasible state.
    num_loaded_from_store:
        Trials served from the campaign store instead of re-executed
        (0 on a cold run; equal to ``num_trials`` on a warm re-run).
    """

    family: str
    instance_name: str
    problem_size: int
    transformation: str
    reference_value: float
    best_objective: Optional[float]
    success_rate: Optional[float]
    feasible_fraction: float
    num_trials: int
    num_loaded_from_store: int


@dataclass
class FamilyStudyResult:
    """Rows of :func:`run_family_study`, one per registered family."""

    rows: List[FamilyStudyRow] = field(default_factory=list)

    def row(self, family: str) -> FamilyStudyRow:
        for candidate in self.rows:
            if candidate.family == family:
                return candidate
        raise KeyError(f"no study row for family {family!r}")

    @property
    def families(self) -> List[str]:
        return [row.family for row in self.rows]


def run_family_study(
    families: Optional[Sequence[str]] = None,
    num_trials: int = 8,
    sa_iterations: int = 300,
    threshold: float = 0.95,
    seed: int = 11,
    backend: str = "vectorized",
    store=None,
) -> FamilyStudyResult:
    """Solve every registered problem family end-to-end through HyCiM.

    The cross-family generalisation of the Table 1 runner: each family's
    registered parameters (move generator, schedule, filter split) drive
    ``run_trials`` on its conformance instance, scored against the family's
    exact reference solution.  Passing a :class:`repro.store.CampaignStore`
    makes the study resumable -- re-running with the same arguments loads
    every persisted trial instead of re-executing it.
    """
    result = FamilyStudyResult()
    for name in families if families is not None else family_names():
        family = get_family(name)
        problem = family.conformance_instance(seed)
        _, reference_value = family.reference_solution(problem)
        params = dict(family.solver_params(problem))
        params.update({"use_hardware": False, "num_iterations": sa_iterations})
        batch = run_trials(problem, ("hycim", params), num_trials=num_trials,
                           backend=backend, master_seed=seed, store=store)
        stats = aggregate_trials(batch, reference=reference_value,
                                 threshold=threshold,
                                 maximize=problem.is_maximization)
        result.rows.append(FamilyStudyRow(
            family=name,
            instance_name=problem.name,
            problem_size=problem.num_variables,
            transformation=family.transformation,
            reference_value=float(reference_value),
            best_objective=stats.best_objective,
            success_rate=stats.success_rate_value,
            feasible_fraction=stats.num_feasible / max(stats.num_trials, 1),
            num_trials=stats.num_trials,
            num_loaded_from_store=batch.num_loaded_from_store,
        ))
    return result

"""Plain-text and markdown table rendering for experiment reports.

The benchmark harnesses print the same rows the paper's tables/figures report
(per-instance Q_max, dimensions, savings, success rates); these helpers keep
that output consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with column alignment."""
    header_cells = [str(h) for h in headers]
    body: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError("every row must have one cell per header")
    widths = [len(cell) for cell in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(header_cells), separator]
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def render_markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    header_cells = [str(h) for h in headers]
    body = [[_stringify(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError("every row must have one cell per header")
    lines = ["| " + " | ".join(header_cells) + " |",
             "| " + " | ".join("---" for _ in header_cells) + " |"]
    lines.extend("| " + " | ".join(row) + " |" for row in body)
    return "\n".join(lines)

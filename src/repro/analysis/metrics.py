"""Evaluation metrics used throughout the paper reproduction."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def normalized_values(values: Iterable[float], reference: float) -> np.ndarray:
    """Solver outputs normalised by a reference value (Fig. 10 y-axis).

    ``reference`` is typically the best-known QKP value of the instance; a
    normalised value of 1.0 means the solver matched it.
    """
    if reference <= 0:
        raise ValueError("reference value must be positive")
    return np.asarray(list(values), dtype=float) / reference


def success_rate(values: Iterable[float], reference: float,
                 threshold: float = 0.95) -> float:
    """Fraction of runs reaching at least ``threshold * reference``.

    The paper defines the "optimal QKP value" as 95% of the true optimum
    (Sec. 4.3); a run is a success when its output meets that bar.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("success_rate needs at least one value")
    if reference <= 0:
        raise ValueError("reference value must be positive")
    return float(np.mean(arr >= threshold * reference))


def search_space_reduction_bits(hycim_dimension: int, dqubo_dimension: int) -> int:
    """Search-space reduction in powers of two (Fig. 9(b) / abstract).

    D-QUBO explores ``2^(n+C)`` configurations while HyCiM explores ``2^n``;
    the reduction factor is ``2^(dqubo_dimension - hycim_dimension)``; this
    helper returns the exponent.
    """
    if hycim_dimension < 0 or dqubo_dimension < 0:
        raise ValueError("dimensions must be non-negative")
    return dqubo_dimension - hycim_dimension


def mean_success_rate(per_instance_rates: Sequence[float]) -> float:
    """Average of per-instance success rates (the headline 98.54% / 10.75%)."""
    arr = np.asarray(list(per_instance_rates), dtype=float)
    if arr.size == 0:
        raise ValueError("at least one instance rate is required")
    if np.any((arr < 0) | (arr > 1)):
        raise ValueError("success rates must be within [0, 1]")
    return float(arr.mean())


def classification_metrics(predictions: Sequence[bool],
                           truths: Sequence[bool]) -> dict:
    """Accuracy / false-positive / false-negative rates of filter decisions.

    "Positive" means *feasible*.  Used by the Fig. 8 validation and the
    filter-noise ablation.
    """
    pred = np.asarray(list(predictions), dtype=bool)
    truth = np.asarray(list(truths), dtype=bool)
    if pred.shape != truth.shape or pred.size == 0:
        raise ValueError("predictions and truths must be non-empty and aligned")
    accuracy = float(np.mean(pred == truth))
    positives = truth
    negatives = ~truth
    false_negative_rate = (
        float(np.mean(~pred[positives])) if positives.any() else 0.0
    )
    false_positive_rate = (
        float(np.mean(pred[negatives])) if negatives.any() else 0.0
    )
    return {
        "accuracy": accuracy,
        "false_positive_rate": false_positive_rate,
        "false_negative_rate": false_negative_rate,
        "num_cases": int(pred.size),
    }

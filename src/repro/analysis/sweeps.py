"""Parameter-sweep utilities for solver studies.

The paper fixes the SA budget at 1000 iterations; practitioners adopting the
library will want to know how success rate trades off against the annealing
budget and against hardware non-idealities.  These helpers run such sweeps
with a consistent protocol and return plain records that the benchmarks and
examples can print or assert on.

The repeated-trial loop itself lives in :mod:`repro.runtime`: each sweep
point is one :func:`repro.runtime.run_trials` batch, so sweeps inherit the
runtime's deterministic per-trial seeding.  Sweep points run on the
vectorised replica backend by default (identical per-seed results at an
order-of-magnitude better throughput).  Per-trial device variability runs on
the engine's batch-of-chips device axis -- every trial of a sweep point is
one freshly sampled simulated chip, all chips advancing in lock-step (see
:func:`sweep_device_variability` and ARCHITECTURE.md); pass
``backend="process"`` to fan out over cores instead.

Every sweep accepts a ``store=`` (a :class:`repro.store.CampaignStore`):
sweep points then persist their trials as they complete, and re-running an
interrupted sweep with the same arguments resumes from the checkpoint
instead of restarting -- each (sweep point x parameter value) is its own
deterministic store run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import success_rate
from repro.dynamics import ParallelTempering
from repro.exact.local_search import reference_qkp_value
from repro.fefet.variability import VariabilityModel
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.runtime import run_trials


@dataclass(frozen=True)
class SweepPoint:
    """One point of a sweep: the swept value and the resulting metrics."""

    parameter: float
    success_rate: float
    mean_normalized_value: float
    num_runs: int


def _solve_batch(problem: QuadraticKnapsackProblem, sa_iterations: int,
                 num_runs: int, seed: int,
                 use_hardware: bool = False,
                 variability: Optional[VariabilityModel] = None,
                 matchline_noise_sigma: float = 0.0,
                 backend: str = "vectorized",
                 store: Optional[Any] = None) -> List[float]:
    """Run ``num_runs`` HyCiM trials via the runtime and return the QKP values."""
    batch = run_trials(
        problem,
        solver="hycim",
        num_trials=num_runs,
        params={
            "num_iterations": sa_iterations,
            "moves_per_iteration": problem.num_items,
            "move_generator": "knapsack",
            "use_hardware": use_hardware,
            "variability": variability,
            "matchline_noise_sigma": matchline_noise_sigma,
        },
        backend=backend,
        master_seed=seed,
        store=store,
    )
    return [result.best_objective or 0.0 for result in batch.results]


def sweep_sa_budget(
    problem: QuadraticKnapsackProblem,
    budgets: Sequence[int] = (10, 25, 50, 100, 200),
    num_runs: int = 5,
    threshold: float = 0.95,
    seed: int = 0,
    backend: str = "vectorized",
    store: Optional[Any] = None,
) -> List[SweepPoint]:
    """Success rate versus the number of SA iterations (sweeps).

    The reference value is computed once per problem; each budget point runs
    ``num_runs`` independent descents from random feasible initial states.
    """
    if num_runs < 1:
        raise ValueError("num_runs must be positive")
    reference = reference_qkp_value(problem, seed=seed)
    points = []
    for budget in budgets:
        if budget < 1:
            raise ValueError("SA budgets must be positive")
        values = _solve_batch(problem, sa_iterations=int(budget), num_runs=num_runs,
                              seed=seed, backend=backend, store=store)
        points.append(SweepPoint(
            parameter=float(budget),
            success_rate=success_rate(values, reference, threshold),
            mean_normalized_value=float(np.mean(values) / reference),
            num_runs=num_runs,
        ))
    return points


def sweep_exchange_interval(
    problem: QuadraticKnapsackProblem,
    intervals: Sequence[int] = (1, 5, 10, 25),
    num_replicas: int = 16,
    sa_iterations: int = 60,
    hottest: float = 8.0,
    threshold: float = 0.95,
    seed: int = 0,
    backend: str = "vectorized",
    store: Optional[Any] = None,
) -> List[SweepPoint]:
    """Success rate versus the parallel-tempering exchange interval.

    Each sweep point runs the instance's ``num_replicas`` HyCiM trials as
    *one* tempered ladder (:class:`repro.dynamics.ParallelTempering`):
    rung 0 anneals at the instance-scaled schedule, the hottest rung at
    ``hottest`` times it, with even-odd replica exchange every ``interval``
    iterations across the lock-step batch.  The sweep budget per point is
    identical to ``num_replicas`` independent trials -- exchange only
    re-routes configurations between rungs -- so the points are directly
    comparable to a no-exchange baseline at the same budget.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be positive")
    if sa_iterations < 1:
        raise ValueError("sa_iterations must be positive")
    reference = reference_qkp_value(problem, seed=seed)
    points = []
    for interval in intervals:
        if interval < 1:
            raise ValueError("exchange intervals must be positive")
        batch = run_trials(
            problem,
            solver="hycim",
            num_trials=num_replicas,
            params={
                "num_iterations": int(sa_iterations),
                "moves_per_iteration": problem.num_items,
                "move_generator": "knapsack",
                "use_hardware": False,
            },
            backend=backend,
            master_seed=seed,
            dynamics=ParallelTempering(hottest=float(hottest),
                                       exchange_interval=int(interval)),
            store=store,
        )
        values = [result.best_objective or 0.0 for result in batch.results]
        points.append(SweepPoint(
            parameter=float(interval),
            success_rate=success_rate(values, reference, threshold),
            mean_normalized_value=float(np.mean(values) / reference),
            num_runs=num_replicas,
        ))
    return points


def sweep_device_variability(
    problem: QuadraticKnapsackProblem,
    threshold_sigmas: Sequence[float] = (0.0, 0.01, 0.03, 0.1),
    on_current_sigma: float = 0.15,
    chips: int = 16,
    sa_iterations: int = 60,
    threshold: float = 0.95,
    seed: int = 0,
    backend: str = "vectorized",
    store: Optional[Any] = None,
) -> List[SweepPoint]:
    """Success rate versus FeFET threshold-voltage spread (Fig. 2(b) study).

    The paper's central non-ideality: each programmed level's threshold
    voltage spreads across devices, so filter cells can mis-count marginal
    weights.  Every sweep point is a Monte-Carlo over ``chips`` freshly
    sampled simulated chips -- one HyCiM trial per chip, all chips advanced
    as one device-axis batch on the vectorized backend (per-seed identical
    to, and several times faster than, rebuilding scalar hardware per
    trial).  The 1FeFET1R clamp absorbs the ON-current spread, so
    ``on_current_sigma`` is held fixed while the threshold spread sweeps.
    """
    if chips < 1:
        raise ValueError("chips must be positive")
    if any(sigma < 0 for sigma in threshold_sigmas):
        raise ValueError("threshold sigmas must be non-negative")
    reference = reference_qkp_value(problem, seed=seed)
    points = []
    for sigma in threshold_sigmas:
        values = _solve_batch(
            problem, sa_iterations=sa_iterations, num_runs=chips, seed=seed,
            use_hardware=True,
            variability={"threshold_sigma": float(sigma),
                         "on_current_sigma": float(on_current_sigma)},
            backend=backend, store=store)
        points.append(SweepPoint(
            parameter=float(sigma),
            success_rate=success_rate(values, reference, threshold),
            mean_normalized_value=float(np.mean(values) / reference),
            num_runs=chips,
        ))
    return points


def sweep_filter_noise(
    problem: QuadraticKnapsackProblem,
    noise_levels: Sequence[float] = (0.0, 0.005, 0.02, 0.1),
    sa_iterations: int = 60,
    num_runs: int = 4,
    threshold: float = 0.95,
    seed: int = 0,
    backend: str = "vectorized",
    store: Optional[Any] = None,
) -> List[SweepPoint]:
    """Success rate versus matchline readout noise with the hardware filter.

    Quantifies how analog filter errors (occasional mis-classifications near
    the capacity boundary) propagate to end-to-end solution quality.  The
    per-trial device variability rides on the batch-of-chips device axis, so
    the whole sweep point stays one vectorised batch.
    """
    if num_runs < 1:
        raise ValueError("num_runs must be positive")
    reference = reference_qkp_value(problem, seed=seed)
    variability = VariabilityModel(threshold_sigma=0.02, on_current_sigma=0.1, seed=seed)
    points = []
    for noise in noise_levels:
        if noise < 0:
            raise ValueError("noise levels must be non-negative")
        values = _solve_batch(problem, sa_iterations=sa_iterations, num_runs=num_runs,
                              seed=seed, use_hardware=True, variability=variability,
                              matchline_noise_sigma=float(noise), backend=backend,
                              store=store)
        points.append(SweepPoint(
            parameter=float(noise),
            success_rate=success_rate(values, reference, threshold),
            mean_normalized_value=float(np.mean(values) / reference),
            num_runs=num_runs,
        ))
    return points

"""Benchmark trajectory analysis: load ``BENCH_history.jsonl``, diff runs.

The benchmark suite's :func:`reporting.emit` (``benchmarks/reporting.py``)
writes one ``BENCH_<name>.json`` snapshot per metric *and* appends the same
payload -- stamped with provenance
(:func:`repro.store.schema.run_provenance`) and a timestamp -- to an
append-only ``BENCH_history.jsonl`` in the report directory
(``benchmarks/history.py``).  This module is the read side: it loads that
trajectory and turns ``python -m repro.telemetry bench-compare`` into a
regression gate -- the latest entry of every metric is diffed against a
baseline entry with a tolerance band, honouring each report's declared
``higher_is_better`` direction and pinned ``floor``.

It lives under :mod:`repro.telemetry` (not ``benchmarks/``) so operator
tooling can compare trajectories without the benchmark suite on the path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

#: File the benchmark reporter appends every emission to, next to the
#: per-metric ``BENCH_<name>.json`` snapshots.
HISTORY_FILENAME = "BENCH_history.jsonl"

#: Comparison outcomes, ordered worst-first for exit-code decisions.
_BAD_STATUSES = ("below-floor", "regressed")

__all__ = ["HISTORY_FILENAME", "load_history", "history_by_name",
           "compare_entries", "compare_history", "format_comparison",
           "has_regression"]


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a ``BENCH_history.jsonl`` (torn final line tolerated).

    Accepts either the history file itself or the report directory holding
    it; a missing file is an empty trajectory, never an error.
    """
    path = Path(path)
    if path.is_dir():
        path = path / HISTORY_FILENAME
    if not path.exists():
        return []
    content = path.read_text(encoding="utf-8")
    lines = content.splitlines()
    unterminated = bool(content) and not content.endswith("\n")
    entries: List[Dict[str, Any]] = []
    for number, line in enumerate(lines):
        if not line.strip():
            continue
        if number == len(lines) - 1 and unterminated:
            break
        payload = json.loads(line)
        if not isinstance(payload, dict):
            raise ValueError(f"{path}:{number + 1}: expected a JSON object")
        entries.append(payload)
    return entries


def history_by_name(entries: Sequence[Mapping[str, Any]]
                    ) -> Dict[str, List[Mapping[str, Any]]]:
    """Group trajectory entries per report name, append order preserved."""
    grouped: Dict[str, List[Mapping[str, Any]]] = {}
    for entry in entries:
        name = entry.get("name")
        if name is not None:
            grouped.setdefault(str(name), []).append(entry)
    return grouped


def compare_entries(latest: Mapping[str, Any],
                    baseline: Optional[Mapping[str, Any]],
                    tolerance: float = 0.05) -> Dict[str, Any]:
    """Diff one metric's latest entry against its baseline.

    The tolerance band is relative: a change is a regression only when the
    latest value moves *against* the metric's ``higher_is_better`` direction
    by more than ``tolerance`` of the baseline's magnitude (improvements
    beyond the band report as ``improved``, anything inside as ``ok``).  A
    declared ``floor`` is absolute and stricter than any band: violating it
    is ``below-floor`` regardless of the baseline.  With no baseline the
    entry is ``new`` -- nothing to regress against, but the floor still
    applies.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    value = float(latest["value"])
    higher = bool(latest.get("higher_is_better", True))
    floor = latest.get("floor")
    row: Dict[str, Any] = {
        "name": latest.get("name"),
        "value": value,
        "units": latest.get("units"),
        "higher_is_better": higher,
        "floor": None if floor is None else float(floor),
        "baseline": None,
        "delta": None,
        "pct": None,
    }
    if floor is not None and (value < float(floor) if higher
                              else value > float(floor)):
        row["status"] = "below-floor"
        return row
    if baseline is None:
        row["status"] = "new"
        return row
    base = float(baseline["value"])
    row["baseline"] = base
    delta = value - base
    row["delta"] = delta
    row["pct"] = delta / abs(base) if base else None
    worse = -delta if higher else delta
    band = tolerance * abs(base)
    if worse > band:
        row["status"] = "regressed"
    elif -worse > band:
        row["status"] = "improved"
    else:
        row["status"] = "ok"
    return row


def compare_history(entries: Sequence[Mapping[str, Any]],
                    tolerance: float = 0.05,
                    names: Optional[Sequence[str]] = None,
                    baseline: str = "previous") -> List[Dict[str, Any]]:
    """Diff every metric's latest trajectory entry against its baseline.

    ``baseline`` selects what "before" means: ``"previous"`` (the entry
    appended immediately before the latest -- the PR-versus-main diff) or
    ``"first"`` (the oldest entry on record -- the long-run drift check).
    ``names`` restricts the comparison to those report names.
    """
    if baseline not in ("previous", "first"):
        raise ValueError(f"unknown baseline {baseline!r}; "
                         "choose 'previous' or 'first'")
    grouped = history_by_name(entries)
    if names:
        missing = sorted(set(names) - set(grouped))
        if missing:
            raise KeyError(f"no history entries for {', '.join(missing)}")
        grouped = {name: grouped[name] for name in names}
    rows = []
    for name in sorted(grouped):
        trajectory = grouped[name]
        latest = trajectory[-1]
        base = None
        if len(trajectory) > 1:
            base = trajectory[0] if baseline == "first" else trajectory[-2]
        rows.append(compare_entries(latest, base, tolerance))
    return rows


def has_regression(rows: Sequence[Mapping[str, Any]]) -> bool:
    """True when any compared metric regressed or broke its floor."""
    return any(row.get("status") in _BAD_STATUSES for row in rows)


def format_comparison(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render comparison rows as an aligned text table."""
    from repro.analysis.reporting import format_table

    if not rows:
        return "(no benchmark history entries)"
    headers = ["name", "status", "value", "baseline", "delta", "pct",
               "floor", "dir"]
    body = []
    for row in rows:
        body.append([
            row.get("name"),
            row.get("status"),
            _num(row.get("value")),
            _num(row.get("baseline")),
            _num(row.get("delta")),
            "" if row.get("pct") is None else f"{row['pct']:+.1%}",
            _num(row.get("floor")),
            "higher" if row.get("higher_is_better") else "lower",
        ])
    return format_table(headers, body)


def _num(value: Optional[float]) -> str:
    return "" if value is None else f"{value:.6g}"

"""Recorders: the event sinks behind the telemetry layer.

A *recorder* receives structured events -- spans, counters, probes -- from
instrumented call sites across the solver stack and either drops them
(:class:`NullRecorder`, the default), buffers them
(:class:`InMemoryRecorder`) or appends them to a JSONL file
(:class:`JsonlRecorder`, the store sidecar format).

Zero overhead when off
----------------------
Telemetry must not tax the hot loops it observes.  Every per-iteration call
site therefore guards on a single precomputed flag::

    probe_every = recorder.probe_interval if recorder.enabled else 0
    ...
    if probe_every and (iteration + 1) % probe_every == 0:
        recorder.probe(...)

so a disabled recorder costs one integer test per iteration -- pinned below
3% on the vectorized QKP benchmark by
``benchmarks/test_bench_telemetry_overhead.py``.  Spans are the exception:
they *always* time (two ``perf_counter`` calls), because they replaced the
runtime's ad-hoc timing math as the single timing code path -- they emit
events only when the recorder is enabled.

Determinism
-----------
Recorders never consume solver RNG streams and never feed solver state, so
running with any recorder -- live or null -- produces bit-identical
trajectories, results and store fingerprints.  The ambient recorder travels
*outside* solver params for the same reason: a recorder inside the params
would perturb the store's content-addressed run keys.

Ambient recorder
----------------
Instrumented code fetches the process-wide current recorder via
:func:`current_recorder`; :func:`use_recorder` swaps it for the duration of
a ``with`` block (the executor does this around every run).

Cross-process recording
-----------------------
Live recorder *handles* never cross a process boundary (a JSONL shard must
have exactly one writer), so the executor ships workers of the
``"process"`` backend a :class:`RecorderSpec` instead -- a picklable recipe
from which each worker builds its *own* :class:`JsonlRecorder` appending to
a per-worker sidecar shard next to the parent's
(``telemetry/<run_key>.w<pid>.jsonl``).  Worker events carry a ``worker``
tag and their ``worker_chunk`` spans carry chunk/trial provenance plus the
parent recorder's session id, which is what the shard merge
(:mod:`repro.telemetry.shards`) joins the timelines on.  Recorders without
a on-disk identity (:class:`InMemoryRecorder`, :class:`NullRecorder`)
return ``None`` from :meth:`~NullRecorder.worker_spec`, and their workers
record nothing -- exactly the pre-shard behaviour.

Event schema
------------
Every event is one JSON-serializable dict carrying ``kind`` (``span_start``,
``span_end``, ``counter`` or ``probe``), ``name``, a per-recorder monotonic
``seq`` and a wall-clock ``t`` (``time.time()``).  Span events add ``span``
(id) / ``parent``; ``span_end`` adds ``elapsed`` seconds plus any attrs the
span owner :meth:`~Span.annotate`-d mid-span (facts only known once the
work ran, e.g. the resolved kernel backend).  Counter events
add ``value`` and the cumulative ``total``.  Probe events add ``iteration``
and a ``values`` mapping whose per-replica entries are ``(M,)`` lists,
matching the axis contract of the batched engines (``M = 1`` for scalar
solvers).
"""

from __future__ import annotations

import itertools
import json
import os
import platform
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

#: Iterations between sweep probes when the caller does not override it.
DEFAULT_PROBE_INTERVAL = 100


class TelemetryError(RuntimeError):
    """A persisted telemetry sidecar is malformed."""


# --------------------------------------------------------------------- #
# Worker context: which process/task is emitting
# --------------------------------------------------------------------- #
#: Worker label of this process ("main" in the parent / serial backends; the
#: shard id, e.g. "w12345", inside a process-backend pool worker).
_worker_id: Optional[str] = None
#: Index of the chunk/task currently executing in this process, if any.
_task_index: Optional[int] = None
_hostname: Optional[str] = None


def worker_attrs() -> Dict[str, Any]:
    """Identity of the emitting process: pid, hostname, worker label, task.

    Stamped onto ``trial`` / ``trial_group`` / ``worker_chunk`` spans on
    *every* backend, so a merged multi-process timeline and a serial one
    carry the same attribution schema (``task`` is the executor chunk index
    and is present only while a chunk is executing).
    """
    global _hostname
    if _hostname is None:
        _hostname = platform.node() or "localhost"
    attrs: Dict[str, Any] = {"pid": os.getpid(), "hostname": _hostname,
                             "worker": _worker_id or "main"}
    if _task_index is not None:
        attrs["task"] = _task_index
    return attrs


@contextmanager
def task_scope(task: Optional[int],
               worker: Optional[str] = None) -> Iterator[None]:
    """Mark the current process as executing chunk ``task``.

    The executor wraps every chunk execution -- in-process or inside a pool
    worker -- in this scope, so :func:`worker_attrs` (and therefore the
    span attribution) knows the chunk provenance without threading it
    through every solver call signature.
    """
    global _task_index, _worker_id
    previous_task, previous_worker = _task_index, _worker_id
    _task_index = task if task is None else int(task)
    if worker is not None:
        _worker_id = worker
    try:
        yield
    finally:
        _task_index, _worker_id = previous_task, previous_worker


def worker_shard_path(main_path: Union[str, Path], worker_id: str) -> Path:
    """The per-worker sidecar shard next to a main sidecar path.

    ``telemetry/<run_key>.jsonl`` -> ``telemetry/<run_key>.<worker_id>.jsonl``
    (worker ids look like ``w12345``: the worker's pid, or a task label).
    """
    main_path = Path(main_path)
    stem = main_path.name
    if stem.endswith(".jsonl"):
        stem = stem[:-len(".jsonl")]
    return main_path.with_name(f"{stem}.{worker_id}.jsonl")


def worker_shard_paths(main_path: Union[str, Path]) -> List[Path]:
    """Every existing worker shard belonging to a main sidecar path."""
    main_path = Path(main_path)
    stem = main_path.name
    if stem.endswith(".jsonl"):
        stem = stem[:-len(".jsonl")]
    if not main_path.parent.is_dir():
        return []
    return sorted(main_path.parent.glob(f"{stem}.w*.jsonl"))


@dataclass(frozen=True)
class RecorderSpec:
    """Picklable recipe for a worker-side recorder (never a live handle).

    The executor derives one from the parent's :class:`JsonlRecorder` via
    :meth:`~NullRecorder.worker_spec` and ships it inside each process-
    backend chunk payload; the worker builds its own single-writer
    :class:`JsonlRecorder` from it, appending to the worker shard named
    after its pid.  ``parent_session`` records the parent recorder's
    session id so the shard merge can join worker chunks onto the right
    parent session's chunk spans.
    """

    path: str
    probe_interval: int = DEFAULT_PROBE_INTERVAL
    parent_session: Optional[str] = None

    def shard_path(self, worker_id: str) -> Path:
        return worker_shard_path(self.path, worker_id)

    def build(self, worker_id: Optional[str] = None) -> "JsonlRecorder":
        """Open this worker's shard recorder (repairs its torn tail)."""
        worker_id = worker_id or f"w{os.getpid()}"
        recorder = JsonlRecorder(self.shard_path(worker_id),
                                 probe_interval=self.probe_interval)
        recorder.worker = worker_id
        return recorder


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and nested containers) to JSON types."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    tolist = getattr(value, "tolist", None)
    if tolist is not None:  # numpy arrays and scalars
        return _jsonable(tolist())
    item = getattr(value, "item", None)
    if item is not None:
        return item()
    return repr(value)


class Span:
    """A hierarchical timer: always times, emits only when recording.

    Spans are the runtime's *single* timing code path -- ``run_trials``, the
    batched trial functions and the scalar trial functions all read their
    wall time from ``span.elapsed`` after the ``with`` block exits -- so the
    two ``perf_counter`` calls happen for every recorder, null included.
    Event emission (``span_start`` / ``span_end`` with parent links) is
    skipped entirely on a disabled recorder.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "elapsed",
                 "_recorder", "_started", "_late_attrs")

    def __init__(self, recorder: "NullRecorder", name: str,
                 attrs: Mapping[str, Any]) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.elapsed: Optional[float] = None
        self._late_attrs: Optional[Dict[str, Any]] = None

    def annotate(self, **attrs: Any) -> None:
        """Attach attrs discovered *inside* the span (emitted on its end).

        ``span_start`` fires before the work runs, so attributes only known
        afterwards -- e.g. which backend ``kernel="auto"`` actually resolved
        to -- are merged into the ``span_end`` event instead.  No-op on a
        disabled recorder.  Later calls override earlier keys.
        """
        if not self._recorder.enabled:
            return
        if self._late_attrs is None:
            self._late_attrs = {}
        self._late_attrs.update(attrs)

    def __enter__(self) -> "Span":
        recorder = self._recorder
        if recorder.enabled:
            self.span_id = recorder._next_span_id()
            stack = recorder._span_stack
            self.parent_id = stack[-1] if stack else None
            stack.append(self.span_id)
            recorder.emit({"kind": "span_start", "name": self.name,
                           "span": self.span_id, "parent": self.parent_id,
                           **_jsonable(dict(self.attrs))})
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = time.perf_counter() - self._started
        recorder = self._recorder
        if recorder.enabled and self.span_id is not None:
            stack = recorder._span_stack
            if stack and stack[-1] == self.span_id:
                stack.pop()
            event = {"kind": "span_end", "name": self.name,
                     "span": self.span_id, "parent": self.parent_id,
                     "elapsed": self.elapsed}
            if self._late_attrs:
                event.update(_jsonable(self._late_attrs))
            recorder.emit(event)
        return False


class NullRecorder:
    """The default recorder: drops everything, costs one ``if`` per site.

    Also the base class of the real recorders -- subclasses flip
    ``enabled`` and implement :meth:`_write`.  ``subscribe`` on a null
    recorder returns a working unsubscribe handle but the callback never
    fires (nothing is emitted).
    """

    enabled = False

    def __init__(self, probe_interval: int = DEFAULT_PROBE_INTERVAL) -> None:
        if probe_interval < 1:
            raise ValueError("probe_interval must be positive")
        self.probe_interval = int(probe_interval)
        self._seq = 0
        self._span_ids = 0
        self._span_stack: List[int] = []
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._totals: Dict[str, Union[int, float]] = {}

    # -- emission ------------------------------------------------------- #
    def _next_span_id(self) -> int:
        self._span_ids += 1
        return self._span_ids

    def _write(self, event: Dict[str, Any]) -> None:
        pass

    def emit(self, event: Mapping[str, Any]) -> None:
        """Stamp ``seq``/``t`` on one event, sink it, notify subscribers."""
        if not self.enabled:
            return
        payload = dict(event)
        payload["seq"] = self._seq
        self._seq += 1
        payload["t"] = time.time()
        self._write(payload)
        for callback in tuple(self._subscribers):
            callback(payload)

    # -- instruments ---------------------------------------------------- #
    def span(self, name: str, **attrs: Any) -> Span:
        """A hierarchical timer (see :class:`Span`); use as ``with`` block."""
        return Span(self, name, attrs)

    def counter(self, name: str, value: Union[int, float] = 1,
                **attrs: Any) -> None:
        """Add ``value`` to the named cumulative counter and emit the event."""
        if not self.enabled:
            return
        total = self._totals.get(name, 0) + value
        self._totals[name] = total
        self.emit({"kind": "counter", "name": name,
                   "value": _jsonable(value), "total": _jsonable(total),
                   **_jsonable(dict(attrs))})

    def probe(self, name: str, iteration: Optional[int] = None,
              values: Optional[Mapping[str, Any]] = None,
              **attrs: Any) -> None:
        """Emit one sampled measurement (per-replica values as lists)."""
        if not self.enabled:
            return
        self.emit({"kind": "probe", "name": name,
                   "iteration": None if iteration is None else int(iteration),
                   "values": _jsonable(dict(values or {})),
                   **_jsonable(dict(attrs))})

    @property
    def totals(self) -> Dict[str, Union[int, float]]:
        """Cumulative counter totals seen so far."""
        return dict(self._totals)

    def worker_spec(self) -> Optional[RecorderSpec]:
        """A picklable spec for building worker-side recorders, or ``None``.

        ``None`` (the default, inherited by :class:`InMemoryRecorder`) means
        "this recorder cannot be mirrored across a process boundary":
        process-backend workers then record nothing, as before.
        :class:`JsonlRecorder` overrides this with its sidecar identity.
        """
        return None

    # -- event bus ------------------------------------------------------ #
    def subscribe(self, callback: Callable[[Dict[str, Any]], None]
                  ) -> Callable[[], None]:
        """Call ``callback(event)`` on every emitted event.

        Returns an unsubscribe function.  This is the hook a streaming
        consumer (e.g. a future async solve service) attaches to -- events
        arrive in ``seq`` order, synchronously with the emitting call site.
        """
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe


class InMemoryRecorder(NullRecorder):
    """Buffers every event in ``self.events`` (tests, notebooks, tuning)."""

    enabled = True

    def __init__(self, probe_interval: int = DEFAULT_PROBE_INTERVAL) -> None:
        super().__init__(probe_interval)
        self.events: List[Dict[str, Any]] = []

    def _write(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def events_of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == kind]

    def probes(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["kind"] == "probe"
                and (name is None or e["name"] == name)]


class JsonlRecorder(NullRecorder):
    """Appends one JSON line per event: the store-sidecar format.

    Follows the same durability discipline as the campaign store's shards
    (append one complete line, flush; see :mod:`repro.store.store`): a crash
    can tear at most the final line, which :func:`load_events` drops and
    which opening the file for appending truncates away *before* the first
    new write -- so events from a killed run and its resumed successor
    coexist in one well-formed file.

    Each recorder instance stamps its events with a ``session`` id (start
    time + pid + per-process counter), so a resumed run's events are
    distinguishable from the interrupted session's -- including back-to-back
    sessions inside one process; ``seq`` is monotonic per session.  A
    recorder built from a :class:`RecorderSpec` inside a pool worker
    additionally stamps every event with its ``worker`` id, so shard lines
    stay attributable even when copied between stores.
    """

    enabled = True

    _session_counter = itertools.count()

    def __init__(self, path: Union[str, Path],
                 probe_interval: int = DEFAULT_PROBE_INTERVAL) -> None:
        super().__init__(probe_interval)
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _repair_torn_tail(self.path)
        self.session = (f"{int(time.time() * 1000):x}-{os.getpid()}"
                        f"-{next(self._session_counter)}")
        #: Worker id stamped on every event (None outside pool workers).
        self.worker: Optional[str] = None
        self._handle = self.path.open("a", encoding="utf-8")

    def _write(self, event: Dict[str, Any]) -> None:
        event["session"] = self.session
        if self.worker is not None:
            event["worker"] = self.worker
        self._handle.write(json.dumps(event, sort_keys=True,
                                      separators=(",", ":"),
                                      allow_nan=True) + "\n")
        self._handle.flush()

    def worker_spec(self) -> Optional[RecorderSpec]:
        """The spec a process-backend worker mirrors this recorder from."""
        return RecorderSpec(path=str(self.path),
                            probe_interval=self.probe_interval,
                            parent_session=self.session)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def load(self) -> List[Dict[str, Any]]:
        """Re-read every committed event from disk (torn tail dropped)."""
        self._handle.flush()
        return load_events(self.path)


def _repair_torn_tail(path: Path) -> None:
    """Truncate an unterminated final line before appending behind it.

    Mirrors the store's active-shard repair: writing after a torn tail
    would weld two records into one corrupt mid-file line that no later
    read could recover from.
    """
    if not path.exists():
        return
    raw = path.read_bytes()
    if raw and not raw.endswith(b"\n"):
        keep = raw.rfind(b"\n") + 1
        with path.open("rb+") as handle:
            handle.truncate(keep)


def load_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a telemetry JSONL sidecar, forgiving a torn final line.

    A record only counts as committed once its terminating newline is on
    disk (the store's rule), so an unterminated final line is dropped even
    when its prefix parses; a malformed line anywhere else is real
    corruption and raises :class:`TelemetryError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    content = path.read_text(encoding="utf-8")
    lines = content.splitlines()
    unterminated = bool(content) and not content.endswith("\n")
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines):
        last = number == len(lines) - 1
        if not line.strip():
            continue
        if last and unterminated:
            break
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise TelemetryError(f"{path}:{number + 1}: corrupt line") from error
        if not isinstance(payload, dict):
            raise TelemetryError(f"{path}:{number + 1}: expected a JSON object")
        events.append(payload)
    return events


#: The process-wide default: telemetry off.
NULL_RECORDER = NullRecorder()

_current: NullRecorder = NULL_RECORDER


def current_recorder() -> NullRecorder:
    """The ambient recorder instrumented call sites report to."""
    return _current


def set_recorder(recorder: Optional[NullRecorder]) -> NullRecorder:
    """Install ``recorder`` (``None`` = the null default); returns the old one."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous


@contextmanager
def use_recorder(recorder: Optional[NullRecorder]) -> Iterator[NullRecorder]:
    """Make ``recorder`` ambient for the duration of the ``with`` block."""
    previous = set_recorder(recorder)
    try:
        yield current_recorder()
    finally:
        set_recorder(previous)

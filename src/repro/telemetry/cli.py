"""``python -m repro.telemetry`` -- the operator view over telemetry sidecars.

Subcommands::

    summarize TARGET [RUN_KEY]    # span timings, counter totals, probe stats
    timeline  TARGET [RUN_KEY]    # indented span tree with probe leaves
    export-csv TARGET [RUN_KEY] [-o OUT]   # probes as CSV (default stdout)

``TARGET`` is either a telemetry JSONL file directly, or a campaign-store
directory -- in which case ``RUN_KEY`` (an unambiguous prefix is enough)
selects which run's sidecar to read.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.analyze import (build_timeline, counter_totals,
                                     probe_rows, probe_summary, span_summary)
from repro.telemetry.recorder import TelemetryError, load_events


def _resolve_events(target: str,
                    run_key: Optional[str]) -> List[Dict[str, Any]]:
    path = Path(target)
    if path.is_dir():
        from repro.store.store import CampaignStore

        store = CampaignStore(path, create=False)
        if run_key is None:
            raise SystemExit(
                f"{target} is a store directory; a run key is required "
                "(see `python -m repro.store list`)")
        manifest = store.get_manifest(run_key)
        sidecar = store.telemetry_path(manifest.run_key)
        if not sidecar.exists():
            raise SystemExit(f"run {manifest.run_key[:12]} has no telemetry "
                             f"sidecar in {target}")
        return load_events(sidecar)
    if not path.exists():
        raise SystemExit(f"{target}: no such file or store directory")
    return load_events(path)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize, render and export telemetry sidecars.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("summarize", "span timings, counter totals and probe statistics"),
            ("timeline", "indented span tree with probe leaves"),
            ("export-csv", "flatten probes to CSV rows")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("target",
                         help="telemetry JSONL file or store directory")
        cmd.add_argument("run_key", nargs="?",
                         help="run key when TARGET is a store (prefix ok)")
        if name == "export-csv":
            cmd.add_argument("-o", "--output", default=None,
                             help="output CSV path (default: stdout)")
    return parser


def _fmt(value: Any) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cmd_summarize(events: List[Dict[str, Any]],
                   args: argparse.Namespace) -> int:
    print(f"{len(events)} event(s)")
    spans = span_summary(events)
    if spans:
        print("spans:")
        for name, row in sorted(spans.items(),
                                key=lambda item: -item[1]["total"]):
            print(f"  {name:<14} count={row['count']:<6} "
                  f"total={row['total']:.3f}s mean={row['mean']:.4f}s")
    counters = counter_totals(events)
    if counters:
        print("counters:")
        for name, total in sorted(counters.items()):
            print(f"  {name:<26} {_fmt(total)}")
    probes = probe_summary(events)
    if probes:
        print("probes:")
        for name, row in sorted(probes.items()):
            print(f"  {name}: {row['count']} sample(s), "
                  f"last iteration {_fmt(row['last_iteration'])}, "
                  f"best energy {_fmt(row['best_energy'])}")
            for key in ("accept_rate", "filter_reject_rate", "exchange_rate"):
                mean = row.get(f"mean_{key}")
                if mean is not None:
                    print(f"    mean {key:<20} {mean:.3f}")
    return 0


def _cmd_timeline(events: List[Dict[str, Any]],
                  args: argparse.Namespace) -> int:
    lines = build_timeline(events)
    if not lines:
        print("no span or probe events recorded")
        return 0
    for line in lines:
        print(line)
    return 0


def _cmd_export(events: List[Dict[str, Any]],
                args: argparse.Namespace) -> int:
    header, rows = probe_rows(events)
    if args.output is None:
        writer = csv.writer(sys.stdout)
        writer.writerow(header)
        writer.writerows(rows)
    else:
        with open(args.output, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        print(f"wrote {len(rows)} probe row(s) to {args.output}")
    return 0


_COMMANDS = {
    "summarize": _cmd_summarize,
    "timeline": _cmd_timeline,
    "export-csv": _cmd_export,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None)
    try:
        events = _resolve_events(args.target, args.run_key)
        return _COMMANDS[args.command](events, args)
    except KeyError as error:
        print(error.args[0])
        return 1
    except TelemetryError as error:
        print(f"telemetry error: {error}")
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal, not an error.
        sys.stderr.close()
        return 0

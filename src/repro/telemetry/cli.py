"""``python -m repro.telemetry`` -- the operator view over telemetry sidecars.

Subcommands::

    summarize TARGET [RUN_KEY]    # span timings, counter totals, probe stats
    timeline  TARGET [RUN_KEY]    # indented span tree with probe leaves
    export-csv TARGET [RUN_KEY] [-o OUT]   # probes as CSV (default stdout)
    watch TARGET [RUN_KEY] [--once] [--interval S] [--stall-after S]
    bench-compare [DIR] [-n NAME ...] [--tolerance T] [--baseline WHICH]

``TARGET`` is either a telemetry JSONL file directly, or a campaign-store
directory -- in which case ``RUN_KEY`` (an unambiguous prefix is enough)
selects which run's sidecar to read.  Runs with per-worker shards (process
backend) are transparently loaded as one causally merged timeline
(:mod:`repro.telemetry.shards`); ``watch`` tails the same shard set live
(torn-tail tolerant, follow mode unless ``--once``).  ``bench-compare``
reads the benchmark trajectory (``BENCH_history.jsonl``, see
``benchmarks/history.py``) instead of a sidecar and exits nonzero when any
metric regressed beyond its tolerance band or broke its pinned floor.
"""

from __future__ import annotations

import argparse
import csv
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.analyze import (build_timeline, counter_totals,
                                     probe_rows, probe_summary, span_summary)
from repro.telemetry.recorder import TelemetryError
from repro.telemetry.shards import load_run_events


def _resolve_sidecar(target: str, run_key: Optional[str],
                     must_exist: bool = True) -> Path:
    """The main sidecar path a target/run-key pair addresses.

    With a store-directory target, a registered run whose shard set is
    entirely absent fails loudly (`must_exist`) -- an empty summary over a
    run that simply never recorded telemetry is indistinguishable from a
    broken pipeline, and silence is how PR 6's blind spot went unnoticed.
    """
    path = Path(target)
    if path.is_dir():
        from repro.store.store import CampaignStore

        store = CampaignStore(path, create=False)
        if run_key is None:
            raise SystemExit(
                f"{target} is a store directory; a run key is required "
                "(see `python -m repro.store list`)")
        manifest = store.get_manifest(run_key)
        sidecar = store.telemetry_path(manifest.run_key)
        if must_exist and not sidecar.exists() and \
                not store.telemetry_shard_paths(manifest.run_key):
            raise SystemExit(
                f"run {manifest.run_key[:12]} has no telemetry sidecar in "
                f"{target} (the run was executed without telemetry=True)")
        return sidecar
    if not path.exists():
        raise SystemExit(f"{target}: no such file or store directory")
    return path


def _resolve_events(target: str,
                    run_key: Optional[str]) -> List[Dict[str, Any]]:
    path = Path(target)
    is_store = path.is_dir()
    sidecar = _resolve_sidecar(target, run_key)
    events = load_run_events(sidecar)
    if is_store and not events:
        raise SystemExit(
            f"run {run_key} has no telemetry events committed in {target} "
            "(empty or fully torn shard set)")
    return events


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Summarize, render, export, watch and regression-gate "
                    "telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, help_text in (
            ("summarize", "span timings, counter totals and probe statistics"),
            ("timeline", "indented span tree with probe leaves"),
            ("export-csv", "flatten probes to CSV rows"),
            ("watch", "live per-worker status table over a shard set")):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("target",
                         help="telemetry JSONL file or store directory")
        cmd.add_argument("run_key", nargs="?",
                         help="run key when TARGET is a store (prefix ok)")
        if name == "export-csv":
            cmd.add_argument("-o", "--output", default=None,
                             help="output CSV path (default: stdout)")
        if name == "watch":
            cmd.add_argument("--once", action="store_true",
                             help="render a single frame and exit")
            cmd.add_argument("--interval", type=float, default=1.0,
                             help="seconds between polls (default: 1)")
            cmd.add_argument("--stall-after", type=float, default=10.0,
                             help="heartbeat age marking a stream STALLED "
                                  "(default: 10s)")
            cmd.add_argument("--max-polls", type=int, default=None,
                             help=argparse.SUPPRESS)
    bench = sub.add_parser(
        "bench-compare",
        help="diff the latest benchmark trajectory entries against a "
             "baseline")
    bench.add_argument("dir", nargs="?", default=None,
                       help="report directory holding BENCH_history.jsonl "
                            "(default: $REPRO_BENCH_DIR or "
                            "benchmarks/reports)")
    bench.add_argument("-n", "--name", action="append", default=None,
                       help="restrict to this report name (repeatable)")
    bench.add_argument("--tolerance", type=float, default=0.05,
                       help="relative regression band (default: 0.05)")
    bench.add_argument("--baseline", choices=("previous", "first"),
                       default="previous",
                       help="what to diff the latest entry against")
    return parser


def _fmt(value: Any) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = _resolve_events(args.target, args.run_key)
    print(f"{len(events)} event(s)")
    shards = sorted({e["shard"] for e in events if "shard" in e})
    if shards:
        print(f"shards: {' '.join(shards)}")
    spans = span_summary(events)
    if spans:
        print("spans:")
        for name, row in sorted(spans.items(),
                                key=lambda item: -item[1]["total"]):
            print(f"  {name:<14} count={row['count']:<6} "
                  f"total={row['total']:.3f}s mean={row['mean']:.4f}s")
    counters = counter_totals(events)
    if counters:
        print("counters:")
        for name, total in sorted(counters.items()):
            print(f"  {name:<26} {_fmt(total)}")
    probes = probe_summary(events)
    if probes:
        print("probes:")
        for name, row in sorted(probes.items()):
            print(f"  {name}: {row['count']} sample(s), "
                  f"last iteration {_fmt(row['last_iteration'])}, "
                  f"best energy {_fmt(row['best_energy'])}")
            for key in ("accept_rate", "filter_reject_rate", "exchange_rate"):
                mean = row.get(f"mean_{key}")
                if mean is not None:
                    print(f"    mean {key:<20} {mean:.3f}")
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    events = _resolve_events(args.target, args.run_key)
    lines = build_timeline(events)
    if not lines:
        print("no span or probe events recorded")
        return 0
    for line in lines:
        print(line)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    events = _resolve_events(args.target, args.run_key)
    header, rows = probe_rows(events)
    if args.output is None:
        writer = csv.writer(sys.stdout)
        writer.writerow(header)
        writer.writerows(rows)
    else:
        with open(args.output, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(header)
            writer.writerows(rows)
        print(f"wrote {len(rows)} probe row(s) to {args.output}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.telemetry.watch import watch_loop

    # An in-flight run may not have flushed its first event yet, so the
    # sidecar is allowed to be absent: the watcher renders "silent" rows
    # and picks the files up as they appear.
    sidecar = _resolve_sidecar(args.target, args.run_key, must_exist=False)
    watch_loop(sidecar, interval=args.interval,
               stall_after=args.stall_after, once=args.once,
               max_polls=args.max_polls)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.telemetry.bench import (compare_history, format_comparison,
                                       has_regression, load_history)

    directory = args.dir or os.environ.get("REPRO_BENCH_DIR") \
        or "benchmarks/reports"
    entries = load_history(directory)
    if not entries:
        raise SystemExit(f"{directory}: no benchmark history entries "
                         "(run a benchmark module to record some)")
    rows = compare_history(entries, tolerance=args.tolerance,
                           names=args.name, baseline=args.baseline)
    print(format_comparison(rows))
    if has_regression(rows):
        bad = [row["name"] for row in rows
               if row["status"] in ("regressed", "below-floor")]
        print(f"REGRESSION: {', '.join(bad)}")
        return 3
    return 0


_COMMANDS = {
    "summarize": _cmd_summarize,
    "timeline": _cmd_timeline,
    "export-csv": _cmd_export,
    "watch": _cmd_watch,
    "bench-compare": _cmd_bench_compare,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(
        list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except KeyError as error:
        print(error.args[0])
        return 1
    except TelemetryError as error:
        print(f"telemetry error: {error}")
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: normal, not an error.
        sys.stderr.close()
        return 0

"""Sweep-level probe helpers shared by the scalar annealing loops.

The batched engines probe through :class:`repro.dynamics.driver.LoopDriver`
(which owns the replica axis and the exchange counters); the scalar loops in
``repro.annealing`` -- :class:`SimulatedAnnealer`, :class:`HyCiMSolver` and
the D-QUBO crossbar path -- share this :class:`SweepProbe` instead.  Both
emit the same ``"sweep"`` probe schema with ``(M,)``-shaped value lists
(``M = 1`` here), so downstream analysis never needs to know which engine
produced a sidecar.

Rates are *windowed*: each probe reports the acceptance / filter-rejection
fraction over the iterations since the previous probe (deltas of the loop's
cumulative counters), not a lifetime average -- a collapsing acceptance rate
late in a schedule is the signal operators look for.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.recorder import NullRecorder, Span


class SweepProbe:
    """Per-iteration probe cadence for one scalar annealing loop.

    Cost when telemetry is off: ``self.every`` is ``0`` and every call site
    guards with ``if probe.every:``, so the loop pays one attribute load and
    one integer test per iteration.  When on, the probe also brackets the
    iterations between samples in ``sweep_block`` spans, giving the timeline
    view per-window timing without per-iteration span overhead.
    """

    __slots__ = ("every", "_recorder", "_solver", "_num_iterations",
                 "_last_iteration", "_block",
                 "_seen_feasible", "_seen_skipped", "_seen_accepted")

    def __init__(self, recorder: NullRecorder, solver: str,
                 num_iterations: int) -> None:
        self._recorder = recorder
        self._solver = solver
        self._num_iterations = int(num_iterations)
        self.every = int(recorder.probe_interval) if recorder.enabled else 0
        self._last_iteration = -1
        self._seen_feasible = 0
        self._seen_skipped = 0
        self._seen_accepted = 0
        self._block: Optional[Span] = None
        if self.every:
            self._block = recorder.span("sweep_block", solver=solver)
            self._block.__enter__()

    def maybe(self, iteration: int, *, temperature: float, energy: float,
              best_energy: float, num_feasible: int, num_skipped: int,
              num_accepted: int, feasible: Optional[bool] = None) -> None:
        """Sample if ``iteration`` (0-based) ends a probe window.

        The counter arguments are the loop's cumulative tallies; the probe
        publishes deltas against its previous snapshot.  The final iteration
        always probes so short runs still leave a record.
        """
        done = iteration + 1 == self._num_iterations
        if not (done or (iteration + 1) % self.every == 0):
            return
        if iteration == self._last_iteration:
            return
        self._last_iteration = iteration
        if self._block is not None:
            self._block.__exit__(None, None, None)
        delta_feasible = num_feasible - self._seen_feasible
        delta_skipped = num_skipped - self._seen_skipped
        delta_accepted = num_accepted - self._seen_accepted
        proposals = delta_feasible + delta_skipped
        values = {
            "temperature": [float(temperature)],
            "energy": [float(energy)],
            "best_energy": [float(best_energy)],
            "mean_energy": float(energy),
            "accept_rate": [delta_accepted / max(delta_feasible, 1)],
            "filter_reject_rate": [delta_skipped / max(proposals, 1)],
            "proposals_total": [num_feasible + num_skipped],
            "accepted_total": [num_accepted],
            "rejected_total": [num_feasible - num_accepted],
        }
        if feasible is not None:
            values["feasible_replicas"] = int(feasible)
        self._recorder.probe("sweep", iteration=iteration + 1,
                             solver=self._solver, engine="scalar",
                             replicas=1, values=values)
        self._seen_feasible = num_feasible
        self._seen_skipped = num_skipped
        self._seen_accepted = num_accepted
        if done:
            self._block = None
        else:
            self._block = self._recorder.span("sweep_block",
                                              solver=self._solver)
            self._block.__enter__()

    def finish(self) -> None:
        """Close a dangling sweep block (loop exited before the last probe)."""
        if self._block is not None:
            self._block.__exit__(None, None, None)
            self._block = None

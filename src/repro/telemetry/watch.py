"""Live view over an in-flight run's telemetry shard set.

``python -m repro.telemetry watch <store> <run_key>`` tails the run's main
sidecar plus every per-worker shard as they are appended, folds the events
into per-stream status (progress, accept / filter-reject / exchange rates,
best energy, heartbeat age) and renders a refreshing table -- the operator
surface a future solve-service daemon streams from via
:func:`~repro.telemetry.recorder.NullRecorder.subscribe`.

The tailing is *torn-tail tolerant*: a line only counts once its
terminating newline is on disk (the same commit rule as
:func:`~repro.telemetry.recorder.load_events`), a partial tail is buffered
until the writer finishes it, and a shard that shrinks underfoot (the
resuming parent repaired a torn tail) resets its reader instead of
erroring.  New worker shards appearing mid-watch are picked up on the next
poll.  Watching is read-only and out-of-process, so it can never perturb
the run it observes.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.telemetry.recorder import worker_shard_paths
from repro.telemetry.shards import MAIN_SHARD, shard_id_for

__all__ = ["ShardTailer", "RunWatch", "WorkerStatus", "watch_loop"]


def _fmt_rate(value: Optional[float]) -> str:
    return "" if value is None else f"{value:.2f}"


class ShardTailer:
    """Incremental reader of one JSONL shard: committed lines only.

    Each :meth:`poll` returns the events whose terminating newline landed
    since the previous poll.  The byte offset only ever advances past
    complete lines, so a torn tail is re-read (cheaply -- it is the file's
    last few bytes) until the writer commits or a repair truncates it; a
    file that shrank below the offset rereads from the start, deduplication
    being unnecessary because repairs only ever *remove* an uncommitted
    tail.  A malformed committed line is skipped rather than fatal: a live
    view must keep rendering even over a shard a concurrent writer is
    actively appending to.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._offset = 0

    def poll(self) -> List[Dict[str, Any]]:
        try:
            size = self.path.stat().st_size
        except OSError:
            return []
        if size < self._offset:
            self._offset = 0
        if size == self._offset:
            return []
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            raw = handle.read(size - self._offset)
        committed = raw.rfind(b"\n") + 1
        if committed == 0:
            return []
        self._offset += committed
        events: List[Dict[str, Any]] = []
        for line in raw[:committed].splitlines():
            if not line.strip():
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                continue
            if isinstance(payload, dict):
                events.append(payload)
        return events


class WorkerStatus:
    """Rolling status of one event stream (the parent or one worker)."""

    __slots__ = ("shard", "worker", "pid", "task", "trials_done", "probes",
                 "last_iteration", "accept_rate", "filter_reject_rate",
                 "exchange_rate", "best_energy", "last_event_t", "open_spans",
                 "sessions")

    def __init__(self, shard: str) -> None:
        self.shard = shard
        self.worker: Optional[str] = None
        self.pid: Optional[int] = None
        self.task: Optional[Any] = None
        self.trials_done = 0
        self.probes = 0
        self.last_iteration: Optional[int] = None
        self.accept_rate: Optional[float] = None
        self.filter_reject_rate: Optional[float] = None
        self.exchange_rate: Optional[float] = None
        self.best_energy: Optional[float] = None
        self.last_event_t: Optional[float] = None
        self.open_spans = 0
        self.sessions: List[Any] = []

    # -- folding ------------------------------------------------------- #
    def apply(self, event: Mapping[str, Any]) -> None:
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.last_event_t = float(t)
        session = event.get("session")
        if session is not None and session not in self.sessions:
            self.sessions.append(session)
            self.open_spans = 0  # a new session implies the old one died
        if event.get("worker") is not None:
            self.worker = event["worker"]
        if event.get("pid") is not None:
            self.pid = event["pid"]
        kind = event.get("kind")
        if kind == "span_start":
            self.open_spans += 1
            if event.get("name") in ("worker_chunk", "chunk"):
                self.task = event.get("chunk", event.get("index"))
        elif kind == "span_end":
            self.open_spans = max(0, self.open_spans - 1)
        elif kind == "counter":
            if event.get("name") == "trials_completed":
                self.trials_done += int(event.get("value") or 0)
        elif kind == "probe":
            self.probes += 1
            if event.get("iteration") is not None:
                self.last_iteration = int(event["iteration"])
            values = event.get("values") or {}
            for attr in ("accept_rate", "filter_reject_rate",
                         "exchange_rate"):
                mean = _mean_of(values.get(attr))
                if mean is not None:
                    setattr(self, attr, mean)
            best = values.get("best_energy")
            if isinstance(best, list) and best:
                low = min(float(b) for b in best)
                if self.best_energy is None or low < self.best_energy:
                    self.best_energy = low

    # -- rendering ------------------------------------------------------ #
    def heartbeat_age(self, now: float) -> Optional[float]:
        if self.last_event_t is None:
            return None
        return max(0.0, now - self.last_event_t)

    def state(self, now: float, stall_after: float) -> str:
        age = self.heartbeat_age(now)
        if age is None:
            return "silent"
        if self.open_spans == 0:
            return "idle"
        if age > stall_after:
            return "STALLED"
        return "running"


def _mean_of(value: Any) -> Optional[float]:
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, list) and value:
        flat = [float(v) for v in value if isinstance(v, (int, float))]
        return sum(flat) / len(flat) if flat else None
    return None


class RunWatch:
    """Tail a run's shard set and fold it into per-worker status rows.

    ``poll()`` drains every tailer (discovering newly appeared worker
    shards first) and updates the per-stream :class:`WorkerStatus` folds;
    ``render()`` turns them into the status table.  The watcher keys
    streams by shard id, so a worker's resumed sessions fold into one row
    -- exactly the operator's mental model of "that worker".
    """

    def __init__(self, main_path: Union[str, Path],
                 stall_after: float = 10.0) -> None:
        if stall_after <= 0:
            raise ValueError("stall_after must be positive")
        self.main_path = Path(main_path)
        self.stall_after = float(stall_after)
        self._tailers: Dict[str, ShardTailer] = {}
        self._status: Dict[str, WorkerStatus] = {}
        self.events_seen = 0

    def _discover(self) -> None:
        if MAIN_SHARD not in self._tailers:
            self._tailers[MAIN_SHARD] = ShardTailer(self.main_path)
        for path in worker_shard_paths(self.main_path):
            shard = shard_id_for(path)
            if shard not in self._tailers:
                self._tailers[shard] = ShardTailer(path)

    def poll(self) -> int:
        """Drain all shards once; returns how many new events were folded."""
        self._discover()
        new = 0
        for shard, tailer in sorted(self._tailers.items()):
            events = tailer.poll()
            if not events:
                continue
            status = self._status.get(shard)
            if status is None:
                status = self._status[shard] = WorkerStatus(shard)
            for event in events:
                status.apply(event)
            new += len(events)
        self.events_seen += new
        return new

    def statuses(self) -> List[WorkerStatus]:
        """Current per-stream folds, main first then workers sorted."""
        return [self._status[shard]
                for shard in sorted(self._status,
                                    key=lambda s: (s != MAIN_SHARD, s))]

    def render(self, now: Optional[float] = None) -> str:
        """The status table (one row per stream) as aligned text."""
        from repro.analysis.reporting import format_table

        if now is None:
            now = time.time()
        headers = ["stream", "state", "pid", "task", "trials", "probes",
                   "iter", "accept", "reject", "exch", "best", "beat"]
        rows: List[List[Any]] = []
        for status in self.statuses():
            age = status.heartbeat_age(now)
            rows.append([
                status.shard,
                status.state(now, self.stall_after),
                "" if status.pid is None else status.pid,
                "" if status.task is None else status.task,
                status.trials_done,
                status.probes,
                "" if status.last_iteration is None else status.last_iteration,
                _fmt_rate(status.accept_rate),
                _fmt_rate(status.filter_reject_rate),
                _fmt_rate(status.exchange_rate),
                "" if status.best_energy is None
                else f"{status.best_energy:.6g}",
                "" if age is None else f"{age:.1f}s",
            ])
        if not rows:
            return "(no telemetry events yet)"
        return format_table(headers, rows)

    def stalled(self, now: Optional[float] = None) -> List[str]:
        """Shard ids currently in the STALLED state."""
        if now is None:
            now = time.time()
        return [status.shard for status in self.statuses()
                if status.state(now, self.stall_after) == "STALLED"]


def watch_loop(main_path: Union[str, Path], *, interval: float = 1.0,
               stall_after: float = 10.0, once: bool = False,
               max_polls: Optional[int] = None,
               clock=time.time, sleep=time.sleep,
               emit=print) -> RunWatch:
    """Follow a shard set, re-rendering the table after every poll.

    ``once`` polls and renders a single frame (the CI smoke mode);
    otherwise the loop re-renders every ``interval`` seconds until
    interrupted (or ``max_polls`` frames, mainly for tests).  Returns the
    watcher so callers can inspect the final fold.
    """
    watch = RunWatch(main_path, stall_after=stall_after)
    polls = 0
    while True:
        watch.poll()
        now = clock()
        emit(f"-- watch {watch.main_path.name} "
             f"events={watch.events_seen} --")
        emit(watch.render(now))
        polls += 1
        if once or (max_polls is not None and polls >= max_polls):
            return watch
        try:
            sleep(interval)
        except KeyboardInterrupt:
            return watch

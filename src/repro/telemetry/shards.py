"""Multi-process telemetry shards: discovery, loading and causal merge.

A process-backend run with a persistent recorder leaves a *shard set*:

    telemetry/<run_key>.jsonl            # parent: run/chunk spans, counters
    telemetry/<run_key>.w<pid>.jsonl     # one shard per pool worker

Each shard is a single-writer JSONL sidecar with the usual torn-tail
discipline, so any shard of a killed run loses at most its final line.
This module folds a shard set back into **one causally ordered timeline**:

- every loaded event is tagged with its ``shard`` id (``"main"`` or the
  worker id, e.g. ``"w12345"``) whenever more than one shard exists;
- each worker shard is partitioned into *chunk blocks* delimited by its
  top-level ``worker_chunk`` spans, which carry the executor chunk index
  and the parent recorder's session id;
- the parent's ``chunk`` spans are the join points: a worker block is
  spliced into the parent stream just before the matching chunk span
  closes (the worker's events really happened inside that parent wait),
  with the block's top-level spans re-parented onto the chunk span via a
  ``merge_parent`` key that :func:`repro.telemetry.analyze.build_timeline`
  understands;
- per-shard ``seq`` order is never perturbed (streams are only
  interleaved, never reordered), blocks competing for one join point
  order by their first timestamp, and orphan blocks -- a worker whose
  parent died before logging the chunk's end -- append after the parent
  stream under the torn chunk span when one was started, or at the end.

The merge is pure (no I/O beyond the loaders) and deterministic for a
given shard set, so ``summarize`` / ``timeline`` / ``export-csv`` output
over a merged run is stable across invocations.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.telemetry.recorder import load_events, worker_shard_paths

#: Shard id of the parent (single-writer) sidecar in a shard-set mapping.
MAIN_SHARD = "main"

__all__ = ["MAIN_SHARD", "load_run_shards", "load_run_events",
           "merge_run_events", "shard_id_for"]


def shard_id_for(path: Union[str, Path]) -> str:
    """The shard id a sidecar file carries in a merged timeline.

    ``<run_key>.w123.jsonl`` -> ``"w123"``; anything else is the main
    sidecar.
    """
    name = Path(path).name
    if name.endswith(".jsonl"):
        name = name[:-len(".jsonl")]
    suffix = name.rsplit(".", 1)[-1]
    if "." in name and suffix.startswith("w") and suffix[1:]:
        return suffix
    return MAIN_SHARD


def load_run_shards(main_path: Union[str, Path]
                    ) -> Dict[str, List[Dict[str, Any]]]:
    """Load a run's full shard set, keyed by shard id.

    The main sidecar loads under :data:`MAIN_SHARD` (present even when the
    file is missing but worker shards exist -- a parent killed before its
    first flush still has observable workers).  When more than one shard
    exists, every event is tagged with its ``"shard"`` id; a run with only
    the main sidecar loads untagged, byte-identical to
    :func:`repro.telemetry.load_events`, so single-writer consumers see no
    change.
    """
    main_path = Path(main_path)
    shards: Dict[str, List[Dict[str, Any]]] = {}
    worker_paths = worker_shard_paths(main_path)
    if main_path.exists() or worker_paths:
        shards[MAIN_SHARD] = load_events(main_path)
    for path in worker_paths:
        shards[shard_id_for(path)] = load_events(path)
    if len(shards) > 1:
        for shard, events in shards.items():
            for event in events:
                event["shard"] = shard
    return shards


def load_run_events(main_path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load and causally merge a run's full shard set into one timeline."""
    return merge_run_events(load_run_shards(main_path))


# --------------------------------------------------------------------- #
# Merge
# --------------------------------------------------------------------- #
class _Block:
    """One worker shard's events for one executor chunk (or a preamble)."""

    __slots__ = ("shard", "chunk", "parent_session", "events", "t0")

    def __init__(self, shard: str, chunk: Optional[int],
                 parent_session: Optional[str],
                 events: List[Dict[str, Any]]) -> None:
        self.shard = shard
        self.chunk = chunk
        self.parent_session = parent_session
        self.events = events
        self.t0 = float(events[0].get("t") or 0.0) if events else 0.0


def _partition_worker_shard(shard: str,
                            events: List[Dict[str, Any]]) -> List[_Block]:
    """Split one worker shard into chunk blocks at its worker_chunk spans."""
    blocks: List[_Block] = []
    pending: List[Dict[str, Any]] = []
    current: Optional[_Block] = None
    for event in events:
        is_chunk_root = (event.get("kind") == "span_start"
                         and event.get("name") == "worker_chunk"
                         and event.get("parent") is None)
        if is_chunk_root:
            chunk = event.get("chunk")
            current = _Block(shard,
                             None if chunk is None else int(chunk),
                             event.get("parent_session"),
                             pending + [event])
            pending = []
            blocks.append(current)
        elif current is None:
            pending.append(event)
        else:
            current.events.append(event)
    if pending:
        # A shard that never reached its first worker_chunk span (or stray
        # trailing events): keep them as an unjoined block so nothing is
        # silently dropped from the merged timeline.
        blocks.append(_Block(shard, None, None, pending))
    return blocks


def _reparented(block: _Block,
                parent_key: Optional[Tuple[Any, Any, Any]]
                ) -> List[Dict[str, Any]]:
    """The block's events, with top-level spans re-parented onto the join.

    ``parent_key`` is the ``(shard, session, span)`` triple of the parent
    chunk span the block joins under; top-level worker spans get it as
    ``merge_parent`` (on a copy -- merging never mutates loaded events
    beyond the shard tag).
    """
    if parent_key is None:
        return list(block.events)
    out = []
    for event in block.events:
        if event.get("kind") == "span_start" and event.get("parent") is None:
            event = dict(event, merge_parent=list(parent_key))
        out.append(event)
    return out


def merge_run_events(shards: Mapping[str, List[Dict[str, Any]]]
                     ) -> List[Dict[str, Any]]:
    """Fold a shard set into one causally ordered event list.

    See the module docstring for the ordering rules.  A mapping with only
    the main shard (or a single worker shard) passes through unchanged.
    """
    if not shards:
        return []
    if len(shards) == 1:
        return list(next(iter(shards.values())))
    parent = list(shards.get(MAIN_SHARD, []))
    blocks: List[_Block] = []
    for shard in sorted(shards):
        if shard == MAIN_SHARD:
            continue
        blocks.extend(_partition_worker_shard(shard, shards[shard]))

    parent_sessions = {e.get("session") for e in parent if "session" in e}
    only_session = (next(iter(parent_sessions))
                    if len(parent_sessions) == 1 else None)
    by_join: Dict[Tuple[Any, Any], List[_Block]] = {}
    for block in blocks:
        if block.chunk is None:
            continue
        session = block.parent_session
        if session is None:
            session = only_session
        by_join.setdefault((session, block.chunk), []).append(block)
    for joined in by_join.values():
        joined.sort(key=lambda b: (b.t0, b.shard))

    merged: List[Dict[str, Any]] = []
    spliced: set = set()
    #: (session, chunk index) -> (shard, session, span) of the chunk span,
    #: for joining orphan blocks whose parent chunk never closed.
    chunk_keys: Dict[Tuple[Any, Any], Tuple[Any, Any, Any]] = {}
    for event in parent:
        kind, name = event.get("kind"), event.get("name")
        if kind == "span_start" and name == "chunk":
            index = event.get("index")
            chunk_keys[(event.get("session"), index)] = (
                MAIN_SHARD, event.get("session"), event.get("span"))
            merged.append(event)
            continue
        if kind == "span_end" and name == "chunk":
            session = event.get("session")
            join = next((key for key, triple in chunk_keys.items()
                         if triple[1] == session
                         and triple[2] == event.get("span")), None)
            if join is not None:
                for block in by_join.get(join, []):
                    merged.extend(_reparented(block, chunk_keys[join]))
                    spliced.add(id(block))
            merged.append(event)
            continue
        merged.append(event)

    # Orphans: a worker whose parent chunk span never closed (killed
    # parent), or blocks with no chunk provenance at all.  Append them in
    # (session, chunk, time) order so the tail of a torn run still reads
    # causally; re-parent onto the torn chunk span when one was started.
    leftovers = [b for b in blocks if id(b) not in spliced]
    leftovers.sort(key=lambda b: (b.parent_session or "",
                                  -1 if b.chunk is None else b.chunk,
                                  b.t0, b.shard))
    for block in leftovers:
        session = block.parent_session
        if session is None:
            session = only_session
        parent_key = chunk_keys.get((session, block.chunk))
        merged.extend(_reparented(block, parent_key))
    return merged

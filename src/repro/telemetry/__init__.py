"""repro.telemetry -- zero-overhead-when-off observability for the solver stack.

Three instruments, one event stream:

- **spans** -- hierarchical timers (run -> chunk -> trial -> sweep-block);
  the single timing code path for the runtime (``TrialBatch.wall_time`` and
  ``SolveResult.wall_time`` are read off span elapsed times).
- **counters** -- cumulative tallies (trials completed, cells finished).
- **probes** -- sweep-level samples every ``probe_interval`` iterations:
  acceptance rate, per-rung exchange rate, the paper's filter rejection
  rate, best/mean energy, temperature, feasible-replica count -- shaped
  ``(M,)`` per the axis contract.

The default sink is :data:`NULL_RECORDER` (telemetry off; call sites reduce
to one ``if``).  Turn it on by passing a recorder to the runtime entry
points (``run_trials(..., telemetry=InMemoryRecorder())``), installing one
ambiently (:func:`use_recorder`), or letting a campaign store persist a
JSONL sidecar per run (``run_trials(..., store=store, telemetry=True)``,
inspected with ``python -m repro.telemetry``).

Recording crosses process boundaries by *sharding*, never by sharing: each
process-backend pool worker rebuilds a recorder from a picklable
:class:`RecorderSpec` and appends to its own ``<run_key>.w<pid>.jsonl``
shard, and the analysis layer (:mod:`repro.telemetry.shards`) folds the
shard set back into one causally ordered timeline.  ``python -m
repro.telemetry watch`` tails that shard set live, and ``bench-compare``
regression-gates the benchmark trajectory (:mod:`repro.telemetry.bench`).
"""

from repro.telemetry.analyze import (build_timeline, counter_totals,
                                     probe_rows, probe_summary, span_summary)
from repro.telemetry.probes import SweepProbe
from repro.telemetry.recorder import (DEFAULT_PROBE_INTERVAL, InMemoryRecorder,
                                      JsonlRecorder, NullRecorder,
                                      NULL_RECORDER, RecorderSpec, Span,
                                      TelemetryError, current_recorder,
                                      load_events, set_recorder, task_scope,
                                      use_recorder, worker_attrs,
                                      worker_shard_path, worker_shard_paths)
from repro.telemetry.shards import (MAIN_SHARD, load_run_events,
                                    load_run_shards, merge_run_events)
from repro.telemetry.watch import RunWatch, ShardTailer, watch_loop

__all__ = [
    "DEFAULT_PROBE_INTERVAL",
    "InMemoryRecorder",
    "JsonlRecorder",
    "MAIN_SHARD",
    "NullRecorder",
    "NULL_RECORDER",
    "RecorderSpec",
    "RunWatch",
    "ShardTailer",
    "Span",
    "SweepProbe",
    "TelemetryError",
    "build_timeline",
    "counter_totals",
    "current_recorder",
    "load_events",
    "load_run_events",
    "load_run_shards",
    "merge_run_events",
    "probe_rows",
    "probe_summary",
    "set_recorder",
    "span_summary",
    "task_scope",
    "use_recorder",
    "watch_loop",
    "worker_attrs",
    "worker_shard_path",
    "worker_shard_paths",
]

"""repro.telemetry -- zero-overhead-when-off observability for the solver stack.

Three instruments, one event stream:

- **spans** -- hierarchical timers (run -> chunk -> trial -> sweep-block);
  the single timing code path for the runtime (``TrialBatch.wall_time`` and
  ``SolveResult.wall_time`` are read off span elapsed times).
- **counters** -- cumulative tallies (trials completed, cells finished).
- **probes** -- sweep-level samples every ``probe_interval`` iterations:
  acceptance rate, per-rung exchange rate, the paper's filter rejection
  rate, best/mean energy, temperature, feasible-replica count -- shaped
  ``(M,)`` per the axis contract.

The default sink is :data:`NULL_RECORDER` (telemetry off; call sites reduce
to one ``if``).  Turn it on by passing a recorder to the runtime entry
points (``run_trials(..., telemetry=InMemoryRecorder())``), installing one
ambiently (:func:`use_recorder`), or letting a campaign store persist a
JSONL sidecar per run (``run_trials(..., store=store, telemetry=True)``,
inspected with ``python -m repro.telemetry``).
"""

from repro.telemetry.analyze import (build_timeline, counter_totals,
                                     probe_rows, probe_summary, span_summary)
from repro.telemetry.probes import SweepProbe
from repro.telemetry.recorder import (DEFAULT_PROBE_INTERVAL, InMemoryRecorder,
                                      JsonlRecorder, NullRecorder,
                                      NULL_RECORDER, Span, TelemetryError,
                                      current_recorder, load_events,
                                      set_recorder, use_recorder)

__all__ = [
    "DEFAULT_PROBE_INTERVAL",
    "InMemoryRecorder",
    "JsonlRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Span",
    "SweepProbe",
    "TelemetryError",
    "build_timeline",
    "counter_totals",
    "current_recorder",
    "load_events",
    "probe_rows",
    "probe_summary",
    "set_recorder",
    "span_summary",
    "use_recorder",
]

"""Pure functions over telemetry event streams (no I/O, no solver imports).

These back both ``python -m repro.telemetry`` and programmatic consumers:
given the list of event dicts a recorder produced (or
:func:`repro.telemetry.load_events` read back), they fold spans into timing
summaries, counters into totals, and probes into per-name statistics or
flat CSV rows.

They are *multi-writer aware*: a causally merged shard set
(:mod:`repro.telemetry.shards`) interleaves events from several recorder
streams -- the parent sidecar plus per-worker shards, each possibly holding
several sessions.  A stream is identified by its ``(shard, session)`` pair
(both absent on in-memory events, which form a single stream exactly as
before); span identity is ``(shard, session, span)``, counter totals sum
each stream's final cumulative value, and a worker span spliced under a
parent chunk carries the chunk's key as ``merge_parent``, which the
timeline renderer nests by.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def span_summary(events: Sequence[Mapping[str, Any]]
                 ) -> Dict[str, Dict[str, float]]:
    """Per span name: ``count``, ``total`` and ``mean`` elapsed seconds."""
    summary: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("kind") != "span_end":
            continue
        row = summary.setdefault(event["name"],
                                 {"count": 0, "total": 0.0, "mean": 0.0})
        row["count"] += 1
        row["total"] += float(event.get("elapsed") or 0.0)
    for row in summary.values():
        row["mean"] = row["total"] / row["count"]
    return summary


def counter_totals(events: Sequence[Mapping[str, Any]]) -> Dict[str, float]:
    """Final cumulative total per counter name, summed across streams.

    Every recorder instance restarts its cumulative totals at zero, so a
    merged shard set (or a sidecar holding several sessions) contributes one
    final total per ``(name, shard, session)`` stream; the per-name result
    is their sum.  Events within one stream are seq-ordered, so "final"
    means the last counter event of that stream.
    """
    finals: Dict[Any, float] = {}
    for event in events:
        if event.get("kind") == "counter":
            stream = (event["name"], event.get("shard"), event.get("session"))
            finals[stream] = event.get("total", 0)
    totals: Dict[str, float] = {}
    for (name, _, _), final in finals.items():
        totals[name] = totals.get(name, 0) + final
    return totals


def _replica_mean(value: Any) -> Optional[float]:
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, list) and value:
        flat: List[float] = []
        for entry in value:
            entry = _replica_mean(entry)
            if entry is not None:
                flat.append(entry)
        return _mean(flat)
    return None


def probe_summary(events: Sequence[Mapping[str, Any]]
                  ) -> Dict[str, Dict[str, Any]]:
    """Per probe name: sample count, last iteration, mean rates, best energy."""
    summary: Dict[str, Dict[str, Any]] = {}
    tracked = ("accept_rate", "filter_reject_rate", "exchange_rate")
    samples: Dict[str, Dict[str, List[float]]] = {}
    for event in events:
        if event.get("kind") != "probe":
            continue
        name = event["name"]
        row = summary.setdefault(name, {"count": 0, "last_iteration": None,
                                        "best_energy": None})
        rates = samples.setdefault(name, {key: [] for key in tracked})
        row["count"] += 1
        if event.get("iteration") is not None:
            row["last_iteration"] = event["iteration"]
        values = event.get("values") or {}
        for key in tracked:
            mean = _replica_mean(values.get(key))
            if mean is not None:
                rates[key].append(mean)
        best = values.get("best_energy")
        if isinstance(best, list) and best:
            low = min(float(b) for b in best)
            if row["best_energy"] is None or low < row["best_energy"]:
                row["best_energy"] = low
    for name, row in summary.items():
        for key in tracked:
            row[f"mean_{key}"] = _mean(samples[name][key])
    return summary


#: Span-start keys that are identity/transport, not displayable attributes.
_SPAN_META = ("kind", "name", "span", "parent", "seq", "t", "session",
              "shard", "merge_parent")


def build_timeline(events: Sequence[Mapping[str, Any]]) -> List[str]:
    """Render the span tree (with probe leaves) as indented text lines.

    Spans from multiple sessions of one sidecar render sequentially; a span
    whose ``span_end`` never landed (killed run) shows as ``[torn]``.  In a
    merged shard set, a worker span carrying a ``merge_parent`` nests under
    the parent chunk span it was spliced into, and probes nest under the
    innermost open span *of their own stream*, so interleaved workers never
    steal each other's leaves.
    """
    def span_key(event: Mapping[str, Any]) -> Tuple[Any, Any, Any]:
        return (event.get("shard"), event.get("session"), event.get("span"))

    elapsed: Dict[Tuple[Any, Any, Any], float] = {}
    late_attrs: Dict[Tuple[Any, Any, Any], Dict[str, Any]] = {}
    for event in events:
        if event.get("kind") == "span_end":
            key = span_key(event)
            elapsed[key] = float(event.get("elapsed") or 0.0)
            # Attrs annotated mid-span ride on span_end; surface them on
            # the rendered span line next to the span_start attrs.
            extra = {name: value for name, value in event.items()
                     if name not in _SPAN_META and name != "elapsed"}
            if extra:
                late_attrs[key] = extra
    lines: List[str] = []
    depth: Dict[Tuple[Any, Any, Any], int] = {}
    open_by_stream: Dict[Tuple[Any, Any], List[Tuple[Any, Any, Any]]] = {}
    sessions_seen: List[Any] = []
    for event in events:
        kind = event.get("kind")
        shard = event.get("shard")
        session = event.get("session")
        stream = (shard, session)
        # Session separators mark the parent stream's resume boundaries;
        # worker shards interleave mid-stream and carry their identity as
        # span attributes instead.
        if shard in (None, "main") and session not in sessions_seen:
            sessions_seen.append(session)
            if len(sessions_seen) > 1:
                lines.append(f"-- session {session or '?'} --")
        if kind == "span_start":
            key = span_key(event)
            merge_parent = event.get("merge_parent")
            if merge_parent is not None:
                parent = tuple(merge_parent)
            else:
                parent = (shard, session, event.get("parent"))
            level = depth.get(parent, -1) + 1
            depth[key] = level
            open_by_stream.setdefault(stream, []).append(key)
            attrs = {name: value for name, value in event.items()
                     if name not in _SPAN_META}
            attrs.update(late_attrs.get(key, {}))
            note = (" " + " ".join(f"{n}={v}" for n, v in sorted(attrs.items()))
                    if attrs else "")
            duration = elapsed.get(key)
            stamp = "[torn]" if duration is None else f"{duration:.3f}s"
            lines.append(f"{'  ' * level}{event['name']}{note}  {stamp}")
        elif kind == "span_end":
            key = span_key(event)
            open_spans = open_by_stream.get(stream, [])
            if key in open_spans:
                open_spans.remove(key)
        elif kind == "probe":
            open_spans = open_by_stream.get(stream, [])
            parent = open_spans[-1] if open_spans else None
            level = depth.get(parent, -1) + 1
            values = event.get("values") or {}
            best = _replica_mean(values.get("best_energy"))
            accept = _replica_mean(values.get("accept_rate"))
            reject = _replica_mean(values.get("filter_reject_rate"))
            bits = [f"probe {event['name']} iter={event.get('iteration')}"]
            if best is not None:
                bits.append(f"best={best:.6g}")
            if accept is not None:
                bits.append(f"accept={accept:.2f}")
            if reject is not None:
                bits.append(f"reject={reject:.2f}")
            lines.append("  " * level + " ".join(bits))
    return lines


def probe_rows(events: Sequence[Mapping[str, Any]]
               ) -> Tuple[List[str], List[List[Any]]]:
    """Flatten probes to CSV-able rows: one row per (probe event, replica).

    Vector values (``(M,)`` lists) contribute the replica's entry; scalar
    values repeat on every replica row of their event.  The ``worker``
    column attributes each row's emitting process in a merged shard set
    (empty on single-writer sidecars and in-memory captures).
    """
    vector_keys: List[str] = []
    scalar_keys: List[str] = []
    probes = [e for e in events if e.get("kind") == "probe"]
    for event in probes:
        for key, value in (event.get("values") or {}).items():
            bucket = vector_keys if isinstance(value, list) else scalar_keys
            if key not in bucket:
                bucket.append(key)
    header = (["seq", "t", "name", "worker", "solver", "engine", "iteration",
               "replica"] + sorted(vector_keys) + sorted(scalar_keys))
    rows: List[List[Any]] = []
    for event in probes:
        values = event.get("values") or {}
        replicas = max([len(v) for v in values.values()
                        if isinstance(v, list)] or [1])
        for replica in range(replicas):
            row: List[Any] = [event.get("seq"), event.get("t"),
                              event.get("name"), event.get("worker"),
                              event.get("solver"),
                              event.get("engine"), event.get("iteration"),
                              replica]
            for key in sorted(vector_keys):
                value = values.get(key)
                row.append(value[replica]
                           if isinstance(value, list) and replica < len(value)
                           else None)
            for key in sorted(scalar_keys):
                row.append(values.get(key))
            rows.append(row)
    return header, rows

"""HyCiM reproduction: a hybrid computing-in-memory QUBO solver framework.

This package reproduces "HyCiM: A Hybrid Computing-in-Memory QUBO Solver for
General Combinatorial Optimization Problems with Inequality Constraints"
(Qian et al., DAC 2024) as a pure-Python library:

* :mod:`repro.core` -- QUBO/Ising models, the inequality-QUBO transformation
  and the D-QUBO baseline transformation.
* :mod:`repro.problems` -- COP definitions and instance generators.
* :mod:`repro.exact` -- exact / reference solvers.
* :mod:`repro.fefet` -- behavioural FeFET device and 1FeFET1R cell models.
* :mod:`repro.cim` -- CiM inequality filter, crossbar and cost model.
* :mod:`repro.dynamics` -- pluggable annealing dynamics: temperature
  schedules (precomputed tables) and per-replica ladders, move proposals,
  batched acceptance rules, and replica exchange across the lock-step batch
  (``run_trials(..., dynamics=ParallelTempering())`` turns M independent
  trials into one tempered ladder at the same sweep budget; the
  chip-faithful ``rng_mode="shared"`` runs all replicas on one stream).
* :mod:`repro.annealing` -- SA engines, the HyCiM solver and the D-QUBO
  baseline annealer (their control loops drive through the dynamics layer).
* :mod:`repro.runtime` -- the parallel solver runtime: a registry of solver
  names -> picklable factory specs, a trial executor fanning replica seeds
  out over a process pool (``run_trials``, bitwise reproducible across
  backends via ``SeedSequence.spawn`` seeding), batched campaigns over
  (instance x solver x params) grids with early stopping, portfolio racing,
  and best-of / success-rate / time-to-solution aggregation.
* :mod:`repro.batched` -- the vectorised multi-replica annealing engine
  behind ``run_trials(backend="vectorized")``: M lock-step replicas per
  instance with batched energy/filter evaluation and per-replica RNG
  streams, per-seed identical to scalar trials in software mode.
* :mod:`repro.store` -- the checkpointed campaign store: every completed
  trial persists as an append-only JSONL record under a deterministic,
  content-addressed run key, so interrupted sweeps resume
  (``run_trials(..., store=CampaignStore(dir))``) with aggregates identical
  to an uninterrupted run; ``python -m repro.store`` is the results CLI.
* :mod:`repro.telemetry` -- zero-overhead-when-off observability: span
  tracing, counters and sweep-level probes across the whole solver stack.
  Off by default (the ambient :class:`~repro.telemetry.NullRecorder` keeps
  results bit-identical and call sites behind a single ``if``); pass
  ``run_trials(..., telemetry=InMemoryRecorder())`` to capture a run or
  ``telemetry=True`` with a store to persist a JSONL sidecar that
  ``python -m repro.telemetry`` summarizes and replays.
* :mod:`repro.analysis` -- experiment runners for every table and figure,
  built on the runtime.

Running solvers at scale goes through the runtime::

    from repro import generate_qkp_instance, run_trials

    problem = generate_qkp_instance(num_items=100, density=0.5, seed=1)
    batch = run_trials(problem, solver="hycim", num_trials=100,
                       params={"move_generator": "knapsack"},
                       backend="process")
    print(batch.best_result.summary())
"""

from repro.core import InequalityQUBO, IsingModel, QUBOModel, to_dqubo, to_inequality_qubo
from repro.problems import QuadraticKnapsackProblem, generate_qkp_instance
from repro.annealing import DQUBOAnnealer, HyCiMSolver, SimulatedAnnealer
from repro.dynamics import Dynamics, ParallelTempering, TemperatureLadder
from repro.runtime import (
    SolverSpec,
    TrialBatch,
    available_solvers,
    run_campaign,
    run_portfolio,
    run_trials,
)
from repro.store import CampaignStore
from repro.telemetry import (
    InMemoryRecorder,
    JsonlRecorder,
    NullRecorder,
    current_recorder,
    set_recorder,
    use_recorder,
)

__version__ = "1.3.0"

__all__ = [
    "QUBOModel",
    "IsingModel",
    "InequalityQUBO",
    "to_inequality_qubo",
    "to_dqubo",
    "QuadraticKnapsackProblem",
    "generate_qkp_instance",
    "HyCiMSolver",
    "DQUBOAnnealer",
    "SimulatedAnnealer",
    "Dynamics",
    "ParallelTempering",
    "TemperatureLadder",
    "CampaignStore",
    "NullRecorder",
    "InMemoryRecorder",
    "JsonlRecorder",
    "current_recorder",
    "set_recorder",
    "use_recorder",
    "SolverSpec",
    "TrialBatch",
    "available_solvers",
    "run_trials",
    "run_campaign",
    "run_portfolio",
    "__version__",
]

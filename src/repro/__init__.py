"""HyCiM reproduction: a hybrid computing-in-memory QUBO solver framework.

This package reproduces "HyCiM: A Hybrid Computing-in-Memory QUBO Solver for
General Combinatorial Optimization Problems with Inequality Constraints"
(Qian et al., DAC 2024) as a pure-Python library:

* :mod:`repro.core` -- QUBO/Ising models, the inequality-QUBO transformation
  and the D-QUBO baseline transformation.
* :mod:`repro.problems` -- COP definitions and instance generators.
* :mod:`repro.exact` -- exact / reference solvers.
* :mod:`repro.fefet` -- behavioural FeFET device and 1FeFET1R cell models.
* :mod:`repro.cim` -- CiM inequality filter, crossbar and cost model.
* :mod:`repro.annealing` -- SA engines, the HyCiM solver and the D-QUBO
  baseline annealer.
* :mod:`repro.analysis` -- experiment runners for every table and figure.
"""

from repro.core import InequalityQUBO, IsingModel, QUBOModel, to_dqubo, to_inequality_qubo
from repro.problems import QuadraticKnapsackProblem, generate_qkp_instance
from repro.annealing import DQUBOAnnealer, HyCiMSolver, SimulatedAnnealer

__version__ = "1.0.0"

__all__ = [
    "QUBOModel",
    "IsingModel",
    "InequalityQUBO",
    "to_inequality_qubo",
    "to_dqubo",
    "QuadraticKnapsackProblem",
    "generate_qkp_instance",
    "HyCiMSolver",
    "DQUBOAnnealer",
    "SimulatedAnnealer",
    "__version__",
]

"""Exact and reference heuristic solvers.

The success-rate metric of the paper (Fig. 10, Table 1) is defined relative
to the "optimal QKP value" (95% of the true optimum counts as a success).
On 100-item QKP instances the true optimum is not tractable exactly, so --
matching common practice for this benchmark family -- a strong
greedy + local-search reference (:func:`repro.exact.greedy.solve_qkp_greedy`
followed by :func:`repro.exact.local_search.improve_qkp_local_search`) stands
in for the best-known value.  Small instances used in tests are verified
against exhaustive search (:mod:`repro.exact.brute_force`) and, for linear
knapsack, dynamic programming (:mod:`repro.exact.dp_knapsack`).
"""

from repro.exact.brute_force import solve_brute_force
from repro.exact.dp_knapsack import solve_knapsack_dp
from repro.exact.greedy import solve_qkp_greedy
from repro.exact.local_search import improve_qkp_local_search, reference_qkp_value

__all__ = [
    "solve_brute_force",
    "solve_knapsack_dp",
    "solve_qkp_greedy",
    "improve_qkp_local_search",
    "reference_qkp_value",
]

"""Dynamic programming for the linear 0/1 knapsack problem.

Exact in pseudo-polynomial time ``O(n * C)`` for integer weights; used as the
reference optimum for the "Knapsack" row of the Table 1 reproduction and as a
cross-check of the annealers on linear instances.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.knapsack import KnapsackProblem


@dataclass(frozen=True)
class DPResult:
    """Exact knapsack solution.

    Attributes
    ----------
    best_configuration:
        Optimal selection vector.
    best_value:
        Optimal total profit.
    total_weight:
        Weight of the optimal selection.
    """

    best_configuration: np.ndarray
    best_value: float
    total_weight: float


def solve_knapsack_dp(problem: KnapsackProblem) -> DPResult:
    """Solve a 0/1 knapsack exactly with the classic weight-indexed DP table.

    Weights and capacity must be integers (the benchmark instances are);
    raises ``ValueError`` otherwise.
    """
    weights = problem.weights
    profits = problem.profits
    capacity = problem.capacity
    if np.any(np.abs(weights - np.round(weights)) > 1e-9):
        raise ValueError("dynamic programming requires integer weights")
    if abs(capacity - round(capacity)) > 1e-9:
        raise ValueError("dynamic programming requires an integer capacity")
    w = np.round(weights).astype(int)
    c = int(round(capacity))
    n = problem.num_items

    # table[i][r] = best profit using items 0..i-1 with remaining capacity r
    table = np.zeros((n + 1, c + 1))
    for i in range(1, n + 1):
        wi = w[i - 1]
        pi = profits[i - 1]
        table[i, :] = table[i - 1, :]
        if wi <= c:
            take = table[i - 1, : c + 1 - wi] + pi
            keep = table[i - 1, wi:]
            table[i, wi:] = np.maximum(keep, take)

    # Backtrack to recover the selection.
    selection = np.zeros(n)
    remaining = c
    for i in range(n, 0, -1):
        if table[i, remaining] != table[i - 1, remaining]:
            selection[i - 1] = 1.0
            remaining -= w[i - 1]
    total_weight = float(w @ selection)
    return DPResult(
        best_configuration=selection,
        best_value=float(table[n, c]),
        total_weight=total_weight,
    )

"""Exhaustive search over all binary configurations of a small COP.

Used as ground truth in unit tests and for the small chip-demo problems
(Fig. 7(e,f)).  Refuses to run above 22 variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.problems.base import CombinatorialProblem


@dataclass(frozen=True)
class BruteForceResult:
    """Result of an exhaustive search.

    Attributes
    ----------
    best_configuration:
        The optimal feasible binary vector.
    best_value:
        Its native objective value.
    num_feasible:
        How many of the ``2^n`` configurations were feasible.
    num_evaluated:
        Total configurations enumerated (``2^n``).
    """

    best_configuration: np.ndarray
    best_value: float
    num_feasible: int
    num_evaluated: int


def solve_brute_force(problem: CombinatorialProblem,
                      max_variables: int = 22) -> BruteForceResult:
    """Enumerate every configuration of ``problem`` and return the best feasible one.

    Parameters
    ----------
    problem:
        Any COP implementing the common interface.
    max_variables:
        Safety limit; raises ``ValueError`` when exceeded.
    """
    n = problem.num_variables
    if n > max_variables:
        raise ValueError(f"brute force limited to {max_variables} variables, problem has {n}")
    best_value: Optional[float] = None
    best_x = np.zeros(n)
    num_feasible = 0
    maximize = problem.is_maximization
    for bits in range(1 << n):
        x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
        if not problem.is_feasible(x):
            continue
        num_feasible += 1
        value = problem.objective(x)
        if best_value is None or (value > best_value if maximize else value < best_value):
            best_value = value
            best_x = x
    if best_value is None:
        raise RuntimeError("problem has no feasible configuration")
    return BruteForceResult(
        best_configuration=best_x,
        best_value=float(best_value),
        num_feasible=num_feasible,
        num_evaluated=1 << n,
    )


def enumerate_feasible(problem: CombinatorialProblem,
                       max_variables: int = 22) -> Tuple[np.ndarray, np.ndarray]:
    """Return all feasible configurations and their objective values.

    Useful for validating the inequality filter against ground truth on toy
    instances (Fig. 5(f) reproduces the 8-configuration example this way).
    """
    n = problem.num_variables
    if n > max_variables:
        raise ValueError(f"enumeration limited to {max_variables} variables, problem has {n}")
    configurations = []
    values = []
    for bits in range(1 << n):
        x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
        if problem.is_feasible(x):
            configurations.append(x)
            values.append(problem.objective(x))
    return np.array(configurations), np.array(values)

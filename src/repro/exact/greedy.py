"""Greedy construction heuristic for the quadratic knapsack problem.

Items are added one at a time, always picking the item with the best ratio of
*marginal* profit (its individual profit plus pairwise profits with the items
already selected) to weight, as long as it fits.  This is the standard
constructive heuristic for QKP and, combined with the local search in
:mod:`repro.exact.local_search`, gives the best-known reference values used by
the success-rate metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.qkp import QuadraticKnapsackProblem


@dataclass(frozen=True)
class GreedyResult:
    """Greedy construction output.

    Attributes
    ----------
    configuration:
        Selected-item indicator vector (always feasible).
    value:
        Total QKP profit of the selection.
    total_weight:
        Total weight used.
    """

    configuration: np.ndarray
    value: float
    total_weight: float


def _marginal_profit(problem: QuadraticKnapsackProblem, selection: np.ndarray,
                     candidate: int) -> float:
    """Profit gained by adding ``candidate`` to the current selection."""
    profits = problem.profits
    gain = profits[candidate, candidate]
    gain += float(profits[candidate, :] @ selection) - profits[candidate, candidate] * selection[candidate]
    return float(gain)


def solve_qkp_greedy(problem: QuadraticKnapsackProblem) -> GreedyResult:
    """Greedy best-ratio construction of a feasible QKP selection."""
    n = problem.num_items
    selection = np.zeros(n)
    remaining = problem.capacity
    available = set(range(n))
    while available:
        best_item = -1
        best_ratio = -np.inf
        for item in available:
            if problem.weights[item] > remaining:
                continue
            gain = _marginal_profit(problem, selection, item)
            ratio = gain / problem.weights[item]
            if ratio > best_ratio:
                best_ratio = ratio
                best_item = item
        if best_item < 0 or best_ratio <= 0:
            break
        selection[best_item] = 1.0
        remaining -= problem.weights[best_item]
        available.remove(best_item)
    return GreedyResult(
        configuration=selection,
        value=problem.objective(selection),
        total_weight=problem.total_weight(selection),
    )

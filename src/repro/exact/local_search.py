"""Local search improvement for QKP and the best-known reference value.

:func:`improve_qkp_local_search` runs first-improvement passes over three
neighbourhoods (drop, add, swap) until no improving feasible move exists.
:func:`reference_qkp_value` chains greedy construction and local search and is
the value the success-rate metric (Fig. 10, Table 1) compares against:
a solver run counts as a success when it reaches at least
``success_threshold`` (default 0.95, per the paper) of this reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exact.greedy import solve_qkp_greedy
from repro.problems.qkp import QuadraticKnapsackProblem


@dataclass(frozen=True)
class LocalSearchResult:
    """Local search output.

    Attributes
    ----------
    configuration:
        The locally optimal feasible selection.
    value:
        Its QKP profit.
    iterations:
        Number of improving moves applied.
    """

    configuration: np.ndarray
    value: float
    iterations: int


def improve_qkp_local_search(problem: QuadraticKnapsackProblem,
                             start: np.ndarray,
                             max_passes: int = 50) -> LocalSearchResult:
    """First-improvement local search over add / drop / swap moves.

    Parameters
    ----------
    problem:
        The QKP instance.
    start:
        A feasible starting selection (raises if infeasible).
    max_passes:
        Upper bound on full neighbourhood sweeps (safety valve).
    """
    x = np.asarray(start, dtype=float).copy()
    if not problem.is_feasible(x):
        raise ValueError("local search requires a feasible starting configuration")
    n = problem.num_items
    value = problem.objective(x)
    iterations = 0

    for _ in range(max_passes):
        improved = False

        # Add moves.
        for item in range(n):
            if x[item] == 1:
                continue
            x[item] = 1.0
            if problem.is_feasible(x):
                new_value = problem.objective(x)
                if new_value > value + 1e-12:
                    value = new_value
                    improved = True
                    iterations += 1
                    continue
            x[item] = 0.0

        # Swap moves (selected -> unselected).
        for out_item in range(n):
            if x[out_item] == 0:
                continue
            for in_item in range(n):
                if x[in_item] == 1:
                    continue
                x[out_item], x[in_item] = 0.0, 1.0
                if problem.is_feasible(x):
                    new_value = problem.objective(x)
                    if new_value > value + 1e-12:
                        value = new_value
                        improved = True
                        iterations += 1
                        break
                x[out_item], x[in_item] = 1.0, 0.0
            else:
                continue
            break

        # Drop moves (only useful when profits can be negative; kept for
        # completeness and for lifted problems).
        for item in range(n):
            if x[item] == 0:
                continue
            x[item] = 0.0
            new_value = problem.objective(x)
            if new_value > value + 1e-12:
                value = new_value
                improved = True
                iterations += 1
            else:
                x[item] = 1.0

        if not improved:
            break

    return LocalSearchResult(configuration=x, value=float(value), iterations=iterations)


def reference_qkp_value(problem: QuadraticKnapsackProblem,
                        num_restarts: int = 3,
                        seed: int = 0) -> float:
    """Best-known QKP value: greedy + local search with a few random restarts.

    The first start is the greedy solution; additional starts are random
    feasible configurations.  The maximum over all locally-optimal values is
    returned.
    """
    greedy = solve_qkp_greedy(problem)
    best = improve_qkp_local_search(problem, greedy.configuration).value
    rng = np.random.default_rng(seed)
    for _ in range(max(0, num_restarts - 1)):
        start = problem.random_feasible_configuration(rng)
        candidate = improve_qkp_local_search(problem, start).value
        best = max(best, candidate)
    return float(best)

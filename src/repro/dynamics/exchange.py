"""Inter-replica exchange policies (replica exchange / parallel tempering).

The lock-step engines in :mod:`repro.batched` synchronise all ``M`` replicas
of an instance at every iteration boundary, which makes those boundaries free
synchronisation points for *replica exchange*: pairs of replicas annealing at
neighbouring temperatures swap configurations with the detailed-balance
probability ``min(1, exp((1/T_i - 1/T_j) * (E_i - E_j)))``, so good
configurations migrate down a temperature ladder while hot rungs keep
exploring.

:class:`EvenOddExchange` is the deterministic checkerboard scheme standard in
parallel tempering: exchange round ``2r`` proposes the adjacent pairs
``(0, 1), (2, 3), ...``, round ``2r + 1`` the pairs ``(1, 2), (3, 4), ...``,
so every adjacent rung pair is proposed every two rounds and all proposals of
a round are disjoint (one vectorised decision per round).  Exchange draws
come from a dedicated per-run stream (see
:func:`repro.dynamics.dynamics.exchange_stream`), never from the replicas'
own streams -- a :class:`NoExchange` run is bit-identical to one that never
heard of exchange.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class ExchangePolicy(ABC):
    """Decides which replica pairs swap state at an iteration boundary."""

    @property
    @abstractmethod
    def is_active(self) -> bool:
        """Whether this policy ever proposes an exchange."""

    @property
    @abstractmethod
    def interval(self) -> int:
        """Iterations between exchange rounds (ignored when inactive)."""

    @abstractmethod
    def swap_pairs(self, round_index: int, num_replicas: int) -> np.ndarray:
        """``(P, 2)`` replica-index pairs proposed in exchange round
        ``round_index``; pairs must be disjoint within a round."""

    @abstractmethod
    def decide(self, pairs: np.ndarray, energies: np.ndarray,
               temperatures: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """``(P,)`` accept verdicts for the proposed pairs.

        ``energies`` and ``temperatures`` are per-replica ``(M,)`` arrays;
        ``draws`` is one pre-drawn uniform per pair (consumed whatever the
        verdict, keeping the exchange stream deterministic)."""


@dataclass
class NoExchange(ExchangePolicy):
    """Replicas stay independent (the default: plain multi-start annealing)."""

    @property
    def is_active(self) -> bool:
        return False

    @property
    def interval(self) -> int:
        return 0

    def swap_pairs(self, round_index: int, num_replicas: int) -> np.ndarray:
        return np.empty((0, 2), dtype=np.intp)

    def decide(self, pairs: np.ndarray, energies: np.ndarray,
               temperatures: np.ndarray, draws: np.ndarray) -> np.ndarray:
        return np.empty(0, dtype=bool)


@dataclass
class EvenOddExchange(ExchangePolicy):
    """Deterministic even-odd (checkerboard) parallel-tempering exchange.

    Every ``interval`` iterations one exchange round runs: even rounds
    propose the pairs ``(0, 1), (2, 3), ...``, odd rounds ``(1, 2),
    (3, 4), ...``.  Each pair swaps configurations with the standard
    detailed-balance probability; with a sorted temperature ladder a swap
    moves the lower-energy configuration toward the colder rung.
    """

    exchange_interval: int = 10

    def __post_init__(self) -> None:
        if self.exchange_interval < 1:
            raise ValueError("exchange_interval must be positive")

    @property
    def is_active(self) -> bool:
        return True

    @property
    def interval(self) -> int:
        return self.exchange_interval

    def swap_pairs(self, round_index: int, num_replicas: int) -> np.ndarray:
        start = round_index % 2
        left = np.arange(start, num_replicas - 1, 2, dtype=np.intp)
        return np.stack([left, left + 1], axis=1) if left.size else \
            np.empty((0, 2), dtype=np.intp)

    def decide(self, pairs: np.ndarray, energies: np.ndarray,
               temperatures: np.ndarray, draws: np.ndarray) -> np.ndarray:
        if pairs.shape[0] == 0:
            return np.empty(0, dtype=bool)
        energies = np.asarray(energies, dtype=float)
        betas = 1.0 / np.asarray(temperatures, dtype=float)
        left, right = pairs[:, 0], pairs[:, 1]
        exponents = (betas[left] - betas[right]) * (energies[left] - energies[right])
        return (exponents >= 0) | (np.asarray(draws, dtype=float)
                                   < np.exp(np.minimum(exponents, 0.0)))

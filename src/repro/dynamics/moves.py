"""Move proposals for simulated annealing.

The SA logic generates a new candidate configuration every iteration (paper
Fig. 6(b), "Generate new x_new").  :class:`MoveGenerator` (aliased
:data:`MoveProposal`) is the proposal component of the dynamics layer;
different problem encodings need different neighbourhoods:

* :class:`SingleFlipMove` -- flip one random bit (QKP, knapsack, Max-Cut, SK).
* :class:`MultiFlipMove` -- flip ``k`` random bits (larger steps early in the
  anneal; used by the D-QUBO baseline whose search space is much larger).
* :class:`OneHotGroupMove` -- move the single 1 inside a one-hot group to a
  different position (keeps graph-colouring / TSP / one-hot slack encodings
  on their feasible manifold).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np


class MoveGenerator(ABC):
    """Produces a neighbouring configuration from the current one.

    Also exported as :data:`MoveProposal`, the dynamics-layer name for the
    proposal component of an annealing loop.
    """

    @abstractmethod
    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a new configuration (must not modify ``x`` in place)."""

    def _validate(self, x: np.ndarray) -> np.ndarray:
        vec = np.asarray(x, dtype=float)
        if vec.ndim != 1:
            raise ValueError("configurations must be 1-D binary vectors")
        if not np.all((vec == 0) | (vec == 1)):
            raise ValueError("configurations must be binary")
        return vec


@dataclass
class SingleFlipMove(MoveGenerator):
    """Flip exactly one uniformly chosen bit."""

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        index = int(rng.integers(0, vec.shape[0]))
        vec[index] = 1.0 - vec[index]
        return vec


@dataclass
class MultiFlipMove(MoveGenerator):
    """Flip ``num_flips`` distinct uniformly chosen bits."""

    num_flips: int = 2

    def __post_init__(self) -> None:
        if self.num_flips < 1:
            raise ValueError("num_flips must be at least 1")

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        k = min(self.num_flips, vec.shape[0])
        indices = rng.choice(vec.shape[0], size=k, replace=False)
        vec[indices] = 1.0 - vec[indices]
        return vec


@dataclass
class KnapsackNeighborhoodMove(MoveGenerator):
    """Add / drop / swap neighbourhood for knapsack-type selection problems.

    Single bit flips explore the capacity frontier poorly: once the knapsack
    is (nearly) full, adding is infeasible and dropping is almost always
    uphill, so plain flips stall.  This generator proposes, with configurable
    probabilities, an *add* (select one unselected item), a *drop* (deselect
    one selected item) or a *swap* (one out, one in), which is the standard SA
    neighbourhood for (quadratic) knapsack problems.
    """

    add_probability: float = 0.3
    drop_probability: float = 0.2

    def __post_init__(self) -> None:
        if self.add_probability < 0 or self.drop_probability < 0:
            raise ValueError("move probabilities must be non-negative")
        if self.add_probability + self.drop_probability > 1.0:
            raise ValueError("add and drop probabilities must sum to at most 1")

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        selected = np.flatnonzero(vec == 1)
        unselected = np.flatnonzero(vec == 0)
        roll = rng.random()
        if roll < self.add_probability and unselected.size:
            vec[rng.choice(unselected)] = 1.0
        elif roll < self.add_probability + self.drop_probability and selected.size:
            vec[rng.choice(selected)] = 0.0
        elif selected.size and unselected.size:
            vec[rng.choice(selected)] = 0.0
            vec[rng.choice(unselected)] = 1.0
        elif unselected.size:
            vec[rng.choice(unselected)] = 1.0
        elif selected.size:
            vec[rng.choice(selected)] = 0.0
        return vec


@dataclass
class PermutationSwapMove(MoveGenerator):
    """Swap the active positions of two one-hot groups.

    For permutation encodings (TSP: one group per city, positions as the
    group's entries) a single-group move always breaks the complementary
    "each position used once" constraint; swapping the active entries of two
    groups keeps the configuration a valid permutation.  All groups must have
    the same size.
    """

    num_groups: int = 0
    group_size: int = 0

    def __post_init__(self) -> None:
        if self.num_groups < 2 or self.group_size < 1:
            raise ValueError("need at least two groups of positive size")

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        expected = self.num_groups * self.group_size
        if vec.shape[0] != expected:
            raise ValueError(f"configuration length {vec.shape[0]} != {expected}")
        first, second = rng.choice(self.num_groups, size=2, replace=False)
        a = slice(first * self.group_size, (first + 1) * self.group_size)
        b = slice(second * self.group_size, (second + 1) * self.group_size)
        block_a = vec[a].copy()
        vec[a] = vec[b]
        vec[b] = block_a
        return vec


@dataclass
class OneHotGroupMove(MoveGenerator):
    """Move the active position within one one-hot group.

    ``group_sizes`` partitions the variable vector into contiguous groups
    (e.g. one group per vertex for graph colouring, one per tour position for
    TSP).  A move picks a random group and re-assigns its single 1 to a
    different position inside the group, so any configuration that starts
    one-hot-valid stays one-hot-valid.
    """

    group_sizes: Sequence[int] = ()

    def __post_init__(self) -> None:
        sizes = [int(s) for s in self.group_sizes]
        if not sizes or any(s < 1 for s in sizes):
            raise ValueError("group_sizes must be a non-empty list of positive integers")
        self.group_sizes = tuple(sizes)
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        self._starts = starts.astype(int)
        self._total = int(np.sum(sizes))

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        if vec.shape[0] != self._total:
            raise ValueError(
                f"configuration length {vec.shape[0]} != sum of group sizes {self._total}"
            )
        group = int(rng.integers(0, len(self.group_sizes)))
        start = self._starts[group]
        size = self.group_sizes[group]
        block = vec[start:start + size]
        active = np.flatnonzero(block == 1)
        if active.size == 1 and size > 1:
            new_position = int(rng.integers(0, size - 1))
            if new_position >= active[0]:
                new_position += 1
            block[:] = 0.0
            block[new_position] = 1.0
        else:
            # Not one-hot (or a singleton group): repair by picking one position.
            block[:] = 0.0
            block[int(rng.integers(0, size))] = 1.0
        vec[start:start + size] = block
        return vec


@dataclass
class BinPackingMove(MoveGenerator):
    """Relocate one item to a different bin and re-derive the usage bits.

    Variable layout (see :class:`repro.problems.BinPackingProblem`): ``n * m``
    one-hot assignment variables followed by ``m`` bin-usage indicators.
    A move picks a random item, moves it to a different bin (repairing the
    item's one-hot block if it is invalid), then sets every usage bit to
    "bin non-empty" — so any proposal satisfies the assignment equalities and
    usage consistency by construction, leaving only the capacity inequalities
    to the filter.
    """

    num_items: int = 0
    num_bins: int = 0

    def __post_init__(self) -> None:
        if self.num_items < 1 or self.num_bins < 1:
            raise ValueError("need at least one item and one bin")

    def propose(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        vec = self._validate(x).copy()
        n, m = self.num_items, self.num_bins
        expected = n * m + m
        if vec.shape[0] != expected:
            raise ValueError(f"configuration length {vec.shape[0]} != {expected}")
        item = int(rng.integers(0, n))
        block = vec[item * m:(item + 1) * m]
        active = np.flatnonzero(block == 1)
        if active.size == 1 and m > 1:
            new_bin = int(rng.integers(0, m - 1))
            if new_bin >= active[0]:
                new_bin += 1
        else:
            new_bin = int(rng.integers(0, m))
        block[:] = 0.0
        block[new_bin] = 1.0
        assignments = vec[:n * m].reshape(n, m)
        vec[n * m:] = (assignments.sum(axis=0) > 0).astype(float)
        return vec


#: Dynamics-layer alias: a move proposal *is* a move generator.
MoveProposal = MoveGenerator

"""Annealing temperature schedules and per-replica temperature ladders.

The SA logic of HyCiM (paper Fig. 6(b)) accepts worse solutions with a
probability tied to an annealing temperature that decreases over iterations.
Several standard schedules are provided; the default used by the solvers is
:class:`GeometricSchedule`, the most common choice for hardware annealers.

Schedules validate their parameters **once at construction** and expose two
evaluation forms:

* :meth:`TemperatureSchedule.temperature` -- one iteration's temperature,
  with range checking (the public spot-check API);
* :meth:`TemperatureSchedule.temperatures` -- the whole run's temperatures as
  one cached, read-only ``np.ndarray``, validated once.  This is the form
  the solver loops consume, so the hot path never re-validates or recomputes
  ``ratio ** fraction`` per iteration.  Table entries are produced by the
  same scalar arithmetic as :meth:`temperature`, so looking up ``table[k]``
  is bit-identical to calling ``temperature(k, K)`` -- a parity requirement
  of the scalar/vectorised engines.

A :class:`TemperatureLadder` scales one schedule into per-replica
temperatures for parallel tempering: rung ``r`` of an ``M``-replica lock-step
batch anneals at ``schedule.temperature(k, K) * factors[r]``.  Ladders are
validated once at construction (positive, sorted ascending).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


class TemperatureSchedule(ABC):
    """Maps iteration progress to an annealing temperature."""

    def temperature(self, iteration: int, num_iterations: int) -> float:
        """Temperature at ``iteration`` (0-based) of a ``num_iterations`` run."""
        self._check(iteration, num_iterations)
        return self._value(iteration, num_iterations)

    @abstractmethod
    def _value(self, iteration: int, num_iterations: int) -> float:
        """Temperature without range checking (validated parameters only)."""

    def temperatures(self, num_iterations: int) -> np.ndarray:
        """The whole run's per-iteration temperatures, cached and read-only.

        ``temperatures(K)[k] == temperature(k, K)`` bit for bit: entries come
        from the same scalar arithmetic, so precomputing the table cannot
        perturb a borderline Metropolis decision.
        """
        if num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        cache: Dict[int, np.ndarray] = getattr(self, "_tables", None)
        if cache is None:
            cache = {}
            self._tables = cache
        table = cache.get(num_iterations)
        if table is None:
            table = np.array([self._value(k, num_iterations)
                              for k in range(num_iterations)], dtype=float)
            table.setflags(write=False)
            cache[num_iterations] = table
        return table

    def _check(self, iteration: int, num_iterations: int) -> None:
        if num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        if not 0 <= iteration < num_iterations:
            raise ValueError(
                f"iteration {iteration} out of range for a {num_iterations}-iteration run"
            )


@dataclass
class _RampSchedule(TemperatureSchedule):
    """Shared construction-time validation for start -> end schedules."""

    start_temperature: float = 10.0
    end_temperature: float = 0.01

    def __post_init__(self) -> None:
        if self.start_temperature <= 0 or self.end_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.end_temperature > self.start_temperature:
            raise ValueError("end temperature must not exceed start temperature")


@dataclass
class GeometricSchedule(_RampSchedule):
    """``T_k = T_start * (T_end / T_start)^(k / (K-1))`` -- exponential decay
    hitting ``T_end`` exactly on the last iteration."""

    def _value(self, iteration: int, num_iterations: int) -> float:
        if num_iterations == 1:
            return self.start_temperature
        ratio = self.end_temperature / self.start_temperature
        fraction = iteration / (num_iterations - 1)
        return self.start_temperature * (ratio ** fraction)


@dataclass
class LinearSchedule(_RampSchedule):
    """Linear interpolation from start to end temperature."""

    def _value(self, iteration: int, num_iterations: int) -> float:
        if num_iterations == 1:
            return self.start_temperature
        fraction = iteration / (num_iterations - 1)
        return self.start_temperature + fraction * (self.end_temperature - self.start_temperature)


@dataclass
class ExponentialSchedule(TemperatureSchedule):
    """``T_k = T_start * alpha^k`` with a fixed decay factor ``alpha``."""

    start_temperature: float = 10.0
    decay: float = 0.99

    def __post_init__(self) -> None:
        if self.start_temperature <= 0:
            raise ValueError("start temperature must be positive")
        if not 0.0 < self.decay < 1.0:
            raise ValueError("decay must be in (0, 1)")

    def _value(self, iteration: int, num_iterations: int) -> float:
        return self.start_temperature * (self.decay ** iteration)


@dataclass
class ConstantSchedule(TemperatureSchedule):
    """Fixed temperature (degenerates SA into Metropolis sampling)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("temperature must be positive")

    def _value(self, iteration: int, num_iterations: int) -> float:
        return self.value


@dataclass
class TemperatureLadder:
    """Per-rung temperature factors for a lock-step replica batch.

    ``factors[r]`` multiplies the base schedule's temperature for replica
    (rung) ``r``: rung 0 is the coldest (usually factor 1.0, the plain
    schedule) and later rungs run hotter.  Validated once at construction:
    factors must be positive and sorted ascending, so adjacent rungs -- the
    pairs an even-odd exchange proposes to swap -- are temperature
    neighbours.
    """

    factors: Sequence[float] = (1.0,)

    def __post_init__(self) -> None:
        factors = tuple(float(f) for f in np.atleast_1d(
            np.asarray(self.factors, dtype=float)))
        if not factors:
            raise ValueError("a temperature ladder needs at least one rung")
        if any(f <= 0 for f in factors):
            raise ValueError("ladder factors must be positive")
        if any(a > b for a, b in zip(factors, factors[1:])):
            raise ValueError("ladder factors must be sorted ascending")
        self.factors = factors

    @property
    def num_rungs(self) -> int:
        return len(self.factors)

    def factors_for(self, num_replicas: int) -> np.ndarray:
        """The ``(M,)`` per-replica factor array; one rung per replica."""
        if num_replicas != self.num_rungs:
            raise ValueError(
                f"ladder has {self.num_rungs} rungs for {num_replicas} replicas; "
                "one rung per lock-step replica is required"
            )
        return np.asarray(self.factors, dtype=float)

    @classmethod
    def geometric(cls, num_rungs: int, hottest: float = 8.0) -> "TemperatureLadder":
        """Geometrically spaced factors from 1.0 (rung 0) to ``hottest``."""
        if num_rungs < 1:
            raise ValueError("num_rungs must be positive")
        if hottest < 1.0:
            raise ValueError("hottest factor must be >= 1 (rung 0 is coldest)")
        if num_rungs == 1:
            return cls((1.0,))
        exponents = np.arange(num_rungs) / (num_rungs - 1)
        return cls(tuple(hottest ** e for e in exponents))

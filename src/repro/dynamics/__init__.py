"""Pluggable annealing dynamics: the control loop of every SA solver.

The HyCiM SA logic (paper Fig. 6(b)) decomposes into four components, each a
pluggable value here rather than code hard-wired into the solvers:

* :mod:`repro.dynamics.schedule` -- temperature schedules (validated once,
  precomputed per-iteration tables) and per-replica
  :class:`TemperatureLadder` s.
* :mod:`repro.dynamics.moves` -- move proposals (:data:`MoveProposal`,
  single-flip, multi-flip, knapsack add/drop/swap, one-hot group moves).
* :mod:`repro.dynamics.acceptance` -- acceptance rules; the batched
  ``(M,)``-shaped decision is the only code path, the scalar API its
  ``M = 1`` view (:class:`MetropolisRule`).
* :mod:`repro.dynamics.exchange` -- inter-replica exchange across the
  lock-step batch (:class:`EvenOddExchange` deterministic parallel
  tempering).

:class:`Dynamics` bundles them into one picklable solver parameter;
:class:`ParallelTempering` is the ready-made tempered bundle
(``run_trials(problem, "hycim", num_trials=M,
dynamics=ParallelTempering())``).  :class:`LoopDriver` is the engine-side
state machine that executes a bundle for one lock-step replica batch while
preserving per-replica stream parity for the default dynamics.
"""

from repro.dynamics.acceptance import (
    AcceptanceRule,
    MetropolisRule,
    acceptance_probability,
)
from repro.dynamics.driver import LoopDriver
from repro.dynamics.dynamics import (
    RNG_MODES,
    Dynamics,
    ParallelTempering,
    exchange_stream,
    shared_stream,
)
from repro.dynamics.exchange import EvenOddExchange, ExchangePolicy, NoExchange
from repro.dynamics.moves import (
    BinPackingMove,
    KnapsackNeighborhoodMove,
    MoveGenerator,
    MoveProposal,
    MultiFlipMove,
    OneHotGroupMove,
    PermutationSwapMove,
    SingleFlipMove,
)
from repro.dynamics.schedule import (
    ConstantSchedule,
    ExponentialSchedule,
    GeometricSchedule,
    LinearSchedule,
    TemperatureLadder,
    TemperatureSchedule,
)

__all__ = [
    "AcceptanceRule",
    "BinPackingMove",
    "ConstantSchedule",
    "Dynamics",
    "EvenOddExchange",
    "ExchangePolicy",
    "ExponentialSchedule",
    "GeometricSchedule",
    "KnapsackNeighborhoodMove",
    "LinearSchedule",
    "LoopDriver",
    "MetropolisRule",
    "MoveGenerator",
    "MoveProposal",
    "MultiFlipMove",
    "NoExchange",
    "OneHotGroupMove",
    "ParallelTempering",
    "PermutationSwapMove",
    "RNG_MODES",
    "SingleFlipMove",
    "TemperatureLadder",
    "TemperatureSchedule",
    "acceptance_probability",
    "exchange_stream",
    "shared_stream",
]

"""The :class:`Dynamics` bundle: one pluggable description of an SA run.

A :class:`Dynamics` object collects the four control-loop components the
solvers used to hard-code -- temperature schedule (plus optional per-replica
:class:`~repro.dynamics.schedule.TemperatureLadder`), acceptance rule,
inter-replica :class:`~repro.dynamics.exchange.ExchangePolicy`, and the RNG
topology -- into one picklable, store-canonicalisable value that travels
through ``run_trials(..., dynamics=...)`` as a solver parameter.

A bundle is *coupled* when the scalar per-trial path cannot honour it, so
the replica group must run as one batched unit on every backend:

* an active exchange policy (replica exchange / parallel tempering) -- the
  replicas genuinely interact;
* a temperature ladder -- a replica's rung (and so its result) depends on
  its position in the group;
* a non-default acceptance rule -- the scalar solvers decide through the
  stock Metropolis rule;
* ``rng_mode="shared"``, the chip-faithful mode where all replicas draw
  moves and acceptance uniforms from **one** stream, the way the physical SA
  logic of the paper's chip would.  Shared mode deliberately gives up
  scalar-parity (per-replica streams) for batched draws -- the per-replica
  Python-level RNG calls are the vectorised engines' throughput floor.

Because coupled trial outcomes depend on the replica-group composition, the
store keys coupled runs by their grouping too (``num_trials`` /
``chunk_size`` / ``replicas_per_task``); see
:func:`repro.store.schema.trial_run_key`.

:class:`ParallelTempering` is the ready-made coupled dynamics: a geometric
temperature ladder sized to the replica group at run time plus even-odd
deterministic exchange.

Auxiliary streams (exchange decisions, the shared stream) are derived from
the replica group's spawned trial seeds via tagged ``SeedSequence`` material
(:func:`exchange_stream` / :func:`shared_stream`), so they are deterministic
per ``(master_seed, group)`` -- a store-resumed tempered run replays them
exactly -- and independent of the replicas' own streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dynamics.acceptance import AcceptanceRule, MetropolisRule
from repro.dynamics.exchange import EvenOddExchange, ExchangePolicy, NoExchange
from repro.dynamics.schedule import TemperatureLadder, TemperatureSchedule

#: RNG topologies: independent per-replica streams (scalar parity) or one
#: shared stream for the whole lock-step group (chip-faithful, batched draws).
RNG_MODES = ("per_replica", "shared")

# Tags mixed into the SeedSequence entropy of the auxiliary streams so they
# can never collide with each other or with a trial's own stream.
_EXCHANGE_STREAM_TAG = 0x78C4A9
_SHARED_STREAM_TAG = 0x51A23D


def exchange_stream(seeds: Sequence[int]) -> np.random.Generator:
    """The dedicated exchange-decision stream of one replica group.

    Derived from the group's spawned trial seeds (plus a fixed tag), so it is
    deterministic per group, independent of every replica's own stream, and
    replayed exactly by a store-resumed run.
    """
    return np.random.default_rng(
        np.random.SeedSequence([_EXCHANGE_STREAM_TAG,
                                *(int(seed) for seed in seeds)]))


def shared_stream(seeds: Sequence[int]) -> np.random.Generator:
    """The single chip-faithful stream all replicas of a group share."""
    return np.random.default_rng(
        np.random.SeedSequence([_SHARED_STREAM_TAG,
                                *(int(seed) for seed in seeds)]))


@dataclass
class Dynamics:
    """Pluggable annealing dynamics for scalar and lock-step solvers.

    Parameters
    ----------
    schedule:
        Temperature schedule override; ``None`` keeps the solver's own
        (explicit ``schedule`` param or the instance-scaled auto schedule).
    ladder:
        Optional per-replica temperature ladder; ``None`` runs every replica
        at the schedule temperature.  Subclasses may size a ladder to the
        replica group at run time (see :meth:`ladder_factors`).
    exchange:
        Inter-replica exchange policy (default: none).
    acceptance:
        Acceptance rule (default: Metropolis).
    rng_mode:
        ``"per_replica"`` (default; scalar parity) or ``"shared"``
        (chip-faithful single stream; breaks scalar parity by design).
    """

    schedule: Optional[TemperatureSchedule] = None
    ladder: Optional[TemperatureLadder] = None
    exchange: ExchangePolicy = field(default_factory=NoExchange)
    acceptance: AcceptanceRule = field(default_factory=MetropolisRule)
    rng_mode: str = "per_replica"

    def __post_init__(self) -> None:
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {self.rng_mode!r}; choose from {RNG_MODES}")
        if self.schedule is not None and \
                not isinstance(self.schedule, TemperatureSchedule):
            raise TypeError("schedule must be a TemperatureSchedule or None")
        if self.ladder is not None and \
                not isinstance(self.ladder, TemperatureLadder):
            raise TypeError("ladder must be a TemperatureLadder or None")
        if not isinstance(self.exchange, ExchangePolicy):
            raise TypeError("exchange must be an ExchangePolicy")
        if not isinstance(self.acceptance, AcceptanceRule):
            raise TypeError("acceptance must be an AcceptanceRule")

    @property
    def coupled(self) -> bool:
        """Whether this bundle must run through the batched engine.

        True for every component the scalar per-trial path cannot honour:
        an active exchange policy and the shared RNG topology (the replicas
        genuinely interact), a temperature ladder (a replica's rung -- and
        so its result -- depends on its position in the group), and any
        non-default acceptance rule (the scalar solvers decide through the
        stock Metropolis rule).  The executor routes coupled replica groups
        to the batched engine on every backend rather than silently dropping
        a component on the scalar path.
        """
        return (self.exchange.is_active
                or self.rng_mode == "shared"
                or self.ladder is not None
                or type(self.acceptance) is not MetropolisRule)

    def ladder_factors(self, num_replicas: int) -> Optional[np.ndarray]:
        """Per-replica temperature factors, or ``None`` for a flat batch."""
        if self.ladder is None:
            return None
        return self.ladder.factors_for(num_replicas)


@dataclass
class ParallelTempering(Dynamics):
    """Replica exchange over a geometric temperature ladder.

    The lock-step replica group becomes one temperature ladder: rung 0
    anneals at the base schedule, the hottest rung at ``hottest`` times it,
    intermediate rungs geometrically spaced, with even-odd deterministic
    exchange every ``exchange_interval`` iterations.  An explicit ``ladder``
    overrides the auto-sized geometric one (its rung count must then match
    the replica group size); an explicit ``exchange`` policy overrides the
    even-odd default.

    ``run_trials(problem, "hycim", num_trials=M,
    dynamics=ParallelTempering())`` turns the ``M`` independent trials into
    one tempered ladder at the same total sweep budget.
    """

    hottest: float = 8.0
    exchange_interval: int = 10

    def __post_init__(self) -> None:
        if self.hottest < 1.0:
            raise ValueError("hottest factor must be >= 1 (rung 0 is coldest)")
        if isinstance(self.exchange, NoExchange):
            self.exchange = EvenOddExchange(
                exchange_interval=int(self.exchange_interval))
        super().__post_init__()

    def ladder_factors(self, num_replicas: int) -> Optional[np.ndarray]:
        if self.ladder is not None:
            return self.ladder.factors_for(num_replicas)
        return TemperatureLadder.geometric(
            num_replicas, hottest=self.hottest).factors_for(num_replicas)

"""The loop driver: one dynamics state machine per lock-step replica batch.

:class:`LoopDriver` owns everything the batched engines used to hard-code
about the SA control loop -- the precomputed temperature table (schedule x
optional per-replica ladder), move-draw and acceptance-draw bookkeeping for
both RNG topologies, and inter-replica exchange at iteration boundaries --
so :class:`~repro.batched.engine.BatchedSimulatedAnnealer` and
:class:`~repro.batched.engine.BatchedHyCiMSolver` contain no Metropolis or
cooling code of their own.

**Parity contract.**  With default dynamics (no ladder, no exchange,
per-replica streams) the driver consumes each replica's ``Generator`` in
exactly the order the scalar solvers do -- one integer draw per single-flip
proposal, one uniform draw per feasible candidate -- and decides through the
same scalar :func:`~repro.dynamics.acceptance.acceptance_probability`, so
per-seed trajectories are bit-identical to the scalar path.  Temperatures
come from :meth:`TemperatureSchedule.temperatures`, whose entries are
bit-identical to per-iteration ``temperature()`` calls.

With coupled dynamics the driver adds behaviour on top without touching the
replica streams: exchange decisions draw from a dedicated per-run stream, so
a ``NoExchange`` run cannot observe whether exchange code exists; shared-RNG
mode replaces the per-replica draws wholesale (documented parity break).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.dynamics.dynamics import Dynamics
from repro.dynamics.moves import MoveGenerator
from repro.dynamics.schedule import TemperatureSchedule
from repro.telemetry.recorder import current_recorder


class LoopDriver:
    """Drives temperature, acceptance and exchange for one replica batch.

    Parameters
    ----------
    schedule:
        The base temperature schedule (its per-iteration table is precomputed
        once here -- the hot loop never calls ``temperature()``).
    num_iterations:
        SA iterations of the run (the table length).
    generators:
        One ``Generator`` per replica (per-replica mode); in shared mode the
        entries may all alias the shared stream (they are only used for
        per-replica fallback paths such as noisy-filter evaluation).
    dynamics:
        The :class:`~repro.dynamics.dynamics.Dynamics` bundle; ``None`` means
        default dynamics (flat batch, Metropolis, no exchange).
    exchange_rng:
        Dedicated exchange-decision stream; required when the exchange
        policy is active (see :func:`repro.dynamics.dynamics.exchange_stream`).
    shared_rng:
        The single chip-faithful stream; required when
        ``dynamics.rng_mode == "shared"``.
    """

    def __init__(self, schedule: TemperatureSchedule, num_iterations: int,
                 generators: Sequence[np.random.Generator],
                 dynamics: Optional[Dynamics] = None,
                 exchange_rng: Optional[np.random.Generator] = None,
                 shared_rng: Optional[np.random.Generator] = None) -> None:
        self.dynamics = dynamics if dynamics is not None else Dynamics()
        self.num_replicas = len(generators)
        self.num_iterations = int(num_iterations)
        self._generators = list(generators)
        self._base = schedule.temperatures(self.num_iterations)
        self._factors = self.dynamics.ladder_factors(self.num_replicas)
        self._exchange = self.dynamics.exchange
        if self._exchange.is_active and exchange_rng is None:
            raise ValueError(
                "an active exchange policy needs a dedicated exchange_rng "
                "(see repro.dynamics.exchange_stream)")
        self._exchange_rng = exchange_rng
        if self.dynamics.rng_mode == "shared" and shared_rng is None:
            raise ValueError(
                'rng_mode="shared" needs the group\'s shared_rng '
                "(see repro.dynamics.shared_stream)")
        self._shared_rng = (shared_rng if self.dynamics.rng_mode == "shared"
                            else None)
        # Pre-bound per-replica draw methods: the engines call these once per
        # replica per proposal, so shaving the attribute lookup matters.
        self._int_draws = [g.integers for g in self._generators]
        self._uniform_draws = [g.random for g in self._generators]
        self._exchange_round = 0
        self.exchange_attempts = 0
        self.exchange_accepted = 0
        # Per-rung exchange tallies stay driver-internal (never in result
        # metadata); telemetry probes and future self-tuning dynamics read
        # them.  Cheap enough to maintain unconditionally.
        self.exchange_attempts_per_rung = np.zeros(self.num_replicas,
                                                   dtype=np.int64)
        self.exchange_accepted_per_rung = np.zeros(self.num_replicas,
                                                   dtype=np.int64)
        self._recorder = current_recorder()
        self._probe_every = (int(self._recorder.probe_interval)
                             if self._recorder.enabled else 0)
        #: Engines guard their per-iteration probe call on this one flag, so
        #: a disabled recorder costs a single attribute test per iteration.
        self.probing = self._probe_every > 0
        if self.probing:
            self._last_probe_iteration = -1
            self._window = {
                "feasible": np.zeros(self.num_replicas, dtype=np.int64),
                "skipped": np.zeros(self.num_replicas, dtype=np.int64),
                "accepted": np.zeros(self.num_replicas, dtype=np.int64),
                "x_att": np.zeros(self.num_replicas, dtype=np.int64),
                "x_acc": np.zeros(self.num_replicas, dtype=np.int64),
            }
            self._block = self._recorder.span(
                "sweep_block", replicas=self.num_replicas)
            self._block.__enter__()

    # ------------------------------------------------------------------ #
    # Temperatures
    # ------------------------------------------------------------------ #
    def temperature(self, iteration: int):
        """Scalar temperature (flat batch) or ``(M,)`` row (ladder)."""
        base = self._base[iteration]
        if self._factors is None:
            return float(base)
        return base * self._factors

    def temperature_row(self, iteration: int) -> np.ndarray:
        """Always the ``(M,)`` per-replica temperatures (exchange view)."""
        base = self._base[iteration]
        if self._factors is None:
            return np.full(self.num_replicas, float(base))
        return base * self._factors

    # ------------------------------------------------------------------ #
    # Fused-block boundaries
    # ------------------------------------------------------------------ #
    def block_length(self, iteration: int,
                     limit: Optional[int] = None) -> int:
        """Iterations a sweep kernel may fuse starting at ``iteration``.

        A fused kernel invocation must end exactly where the driver would
        next act -- an exchange round or a telemetry probe window -- so the
        returned count is the distance to the nearest such boundary (or the
        end of the run).  Exchange fires when ``(it + 1) % interval == 0``
        and probes when ``(it + 1) % probe_every == 0``, so running
        ``block_length`` iterations and then calling
        :meth:`maybe_exchange` / :meth:`maybe_probe` once at the final
        iteration reproduces the per-iteration calling convention exactly.
        ``limit`` caps the block (engines pass 1 when per-iteration state,
        e.g. an energy history, must be observed).
        """
        remaining = self.num_iterations - iteration
        block = remaining if limit is None else min(int(limit), remaining)
        if self._exchange.is_active:
            interval = self._exchange.interval
            block = min(block, interval - iteration % interval)
        if self.probing:
            block = min(block, self._probe_every - iteration % self._probe_every)
        return max(block, 1)

    # ------------------------------------------------------------------ #
    # Move draws
    # ------------------------------------------------------------------ #
    def flip_indices(self, num_variables: int) -> np.ndarray:
        """One single-flip index per replica.

        Per-replica mode consumes one integer draw per replica from that
        replica's own stream (the scalar ``SingleFlipMove.propose`` order);
        shared mode takes one vectorised draw from the shared stream.
        """
        if self._shared_rng is not None:
            return self._shared_rng.integers(
                0, num_variables, size=self.num_replicas).astype(np.intp)
        return np.fromiter((draw(0, num_variables) for draw in self._int_draws),
                           dtype=np.intp, count=self.num_replicas)

    def propose(self, move_generator: MoveGenerator,
                current: np.ndarray) -> np.ndarray:
        """One generic move proposal per replica (arbitrary generators)."""
        if self._shared_rng is not None:
            return np.stack([
                move_generator.propose(current[k], self._shared_rng)
                for k in range(self.num_replicas)
            ])
        return np.stack([
            move_generator.propose(current[k], self._generators[k])
            for k in range(self.num_replicas)
        ])

    # ------------------------------------------------------------------ #
    # Acceptance
    # ------------------------------------------------------------------ #
    def metropolis(self, delta: np.ndarray, replica_indices: np.ndarray,
                   iteration: int) -> np.ndarray:
        """Accept/reject verdicts for the listed replicas at ``iteration``."""
        temperatures = self.temperature(iteration)
        if self._shared_rng is not None:
            draws = self._shared_rng.random(replica_indices.shape[0])
            if isinstance(temperatures, np.ndarray):
                temperatures = temperatures[replica_indices]
            return self.dynamics.acceptance.accept_batch(
                delta, temperatures, draws)
        return self.dynamics.acceptance.accept(
            delta, temperatures, self._uniform_draws, replica_indices)

    # ------------------------------------------------------------------ #
    # Exchange
    # ------------------------------------------------------------------ #
    def maybe_exchange(self, iteration: int, energies: np.ndarray,
                       state_arrays: Tuple[np.ndarray, ...]) -> None:
        """Run one exchange round at this iteration boundary, when due.

        ``state_arrays`` are the per-replica state arrays whose rows travel
        with a swapped configuration (configurations, energies, feasibility
        flags, cached raw energies); per-rung bookkeeping -- generators,
        counters, best-so-far -- stays put, as in standard parallel
        tempering.
        """
        if not self._exchange.is_active:
            return
        if (iteration + 1) % self._exchange.interval != 0:
            return
        pairs = self._exchange.swap_pairs(self._exchange_round,
                                          self.num_replicas)
        self._exchange_round += 1
        if pairs.shape[0] == 0:
            return
        draws = self._exchange_rng.random(pairs.shape[0])
        verdicts = self._exchange.decide(pairs, energies,
                                         self.temperature_row(iteration),
                                         draws)
        swaps = pairs[verdicts]
        self.exchange_attempts += int(pairs.shape[0])
        self.exchange_accepted += int(swaps.shape[0])
        np.add.at(self.exchange_attempts_per_rung, pairs.reshape(-1), 1)
        if swaps.shape[0]:
            np.add.at(self.exchange_accepted_per_rung, swaps.reshape(-1), 1)
            left, right = swaps[:, 0], swaps[:, 1]
            for array in state_arrays:
                held = array[left].copy()
                array[left] = array[right]
                array[right] = held

    # ------------------------------------------------------------------ #
    # Telemetry probes
    # ------------------------------------------------------------------ #
    def maybe_probe(self, iteration: int, *, solver: str,
                    best_energy: np.ndarray, current_energy: np.ndarray,
                    num_accepted: np.ndarray, num_feasible: np.ndarray,
                    num_skipped: np.ndarray,
                    feasible_mask: Optional[np.ndarray] = None,
                    final: bool = False) -> None:
        """Emit one ``"sweep"`` probe if ``iteration`` ends a probe window.

        Call sites MUST guard with ``if driver.probing:`` -- that guard is
        the whole zero-overhead-when-off contract; this method assumes a
        live recorder.  The counter arguments are the engine's cumulative
        ``(M,)`` tallies; rates are reported over the window since the last
        probe (deltas), matching the scalar :class:`SweepProbe`.  Pass
        ``final=True`` on the last iteration so short runs still probe.
        """
        due = final or (iteration + 1) % self._probe_every == 0
        if not due or iteration == self._last_probe_iteration:
            return
        self._last_probe_iteration = iteration
        self._block.__exit__(None, None, None)
        window = self._window
        delta_feasible = num_feasible - window["feasible"]
        delta_skipped = num_skipped - window["skipped"]
        delta_accepted = num_accepted - window["accepted"]
        proposals = delta_feasible + delta_skipped
        values = {
            "temperature": self.temperature_row(iteration),
            "energy": current_energy,
            "best_energy": best_energy,
            "mean_energy": float(np.mean(current_energy)),
            "accept_rate": delta_accepted / np.maximum(delta_feasible, 1),
            "filter_reject_rate": delta_skipped / np.maximum(proposals, 1),
            "proposals_total": num_feasible + num_skipped,
            "accepted_total": num_accepted,
            "rejected_total": num_feasible - num_accepted,
        }
        if feasible_mask is not None:
            values["feasible_replicas"] = int(np.count_nonzero(feasible_mask))
        if self._exchange.is_active:
            delta_x_att = self.exchange_attempts_per_rung - window["x_att"]
            delta_x_acc = self.exchange_accepted_per_rung - window["x_acc"]
            values["exchange_attempts"] = delta_x_att
            values["exchange_accepted"] = delta_x_acc
            values["exchange_rate"] = delta_x_acc / np.maximum(delta_x_att, 1)
            window["x_att"] = self.exchange_attempts_per_rung.copy()
            window["x_acc"] = self.exchange_accepted_per_rung.copy()
        self._recorder.probe("sweep", iteration=iteration + 1, solver=solver,
                             engine="batched", replicas=self.num_replicas,
                             values=values)
        window["feasible"] = num_feasible.copy()
        window["skipped"] = num_skipped.copy()
        window["accepted"] = num_accepted.copy()
        if final:
            self._block = None
        else:
            self._block = self._recorder.span(
                "sweep_block", replicas=self.num_replicas)
            self._block.__enter__()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def metadata(self) -> dict:
        """Result-metadata fields describing the non-default dynamics."""
        fields: dict = {}
        if self._factors is not None:
            fields["ladder_rungs"] = int(self.num_replicas)
        if self._exchange.is_active:
            fields["exchange_interval"] = int(self._exchange.interval)
            fields["exchange_attempts"] = int(self.exchange_attempts)
            fields["exchange_accepted"] = int(self.exchange_accepted)
        if self._shared_rng is not None:
            fields["rng_mode"] = "shared"
        return fields

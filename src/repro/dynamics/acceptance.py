"""Acceptance rules: who decides whether a proposed move is taken.

Per the ARCHITECTURE.md shape contract, the batched ``(M,)``-shaped decision
is the **only** decision code path: :meth:`AcceptanceRule.accept` decides for
a whole replica batch while preserving each replica's ``Generator`` stream,
and the scalar solvers call :meth:`AcceptanceRule.accept_scalar`, the
``M = 1`` view over the same implementation.  This is what keeps a borderline
uniform draw from deciding differently between the scalar and vectorised
engines.

:class:`MetropolisRule` is the rule of the paper's SA logic (and the only
built-in today): always accept downhill moves, accept an uphill move of size
``delta`` at temperature ``T`` with probability ``exp(-delta / T)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

TemperatureLike = Union[float, np.ndarray]


def acceptance_probability(delta: float, temperature: float) -> float:
    """Metropolis acceptance probability for an energy increase ``delta``.

    ``delta <= 0`` is always accepted; otherwise ``exp(-delta / T)``.
    """
    if delta <= 0:
        return 1.0
    if temperature <= 0:
        return 0.0
    exponent = -delta / temperature
    if exponent < -700:
        return 0.0
    return math.exp(exponent)


class AcceptanceRule(ABC):
    """Decides, per replica, whether a proposed move replaces the incumbent."""

    @abstractmethod
    def accept(self, delta: np.ndarray, temperatures: TemperatureLike,
               uniform_draws: Sequence[Callable[[], float]],
               replica_indices: np.ndarray) -> np.ndarray:
        """Stream-preserving decisions for the listed replicas.

        Parameters
        ----------
        delta:
            Energy increases, one per entry of ``replica_indices``.
        temperatures:
            A scalar temperature shared by all replicas, or an ``(M,)`` array
            indexed by *absolute* replica id (a per-replica ladder).
        uniform_draws:
            ``uniform_draws[k]`` is replica ``k``'s bound
            ``Generator.random`` -- exactly one draw is consumed per listed
            replica, from that replica's own stream, whatever the decision.
        replica_indices:
            Absolute replica ids of the ``delta`` entries.
        """

    @abstractmethod
    def accept_batch(self, delta: np.ndarray, temperatures: TemperatureLike,
                     draws: np.ndarray) -> np.ndarray:
        """Vectorised decisions from pre-drawn uniforms (shared-stream mode).

        ``temperatures`` is a scalar or an array already aligned with
        ``delta``.  Used by the chip-faithful shared-RNG mode, where all
        replicas draw from one stream and exact per-replica stream parity is
        deliberately given up for batched draws.
        """

    def accept_scalar(self, delta: float, temperature: float,
                      rng: np.random.Generator) -> bool:
        """The ``M = 1`` view over :meth:`accept` (one replica, one draw)."""
        return bool(self.accept(
            np.array([float(delta)]), float(temperature), (rng.random,),
            np.zeros(1, dtype=np.intp))[0])


@dataclass
class MetropolisRule(AcceptanceRule):
    """The Metropolis criterion of the paper's SA logic (Fig. 6(b)).

    Exactly one uniform draw per listed replica, from that replica's own
    generator, compared against the *scalar* :func:`acceptance_probability`
    (the same ``math.exp`` for every engine, so a borderline draw cannot
    decide differently due to a vectorised-exp ulp).
    """

    def accept(self, delta: np.ndarray, temperatures: TemperatureLike,
               uniform_draws: Sequence[Callable[[], float]],
               replica_indices: np.ndarray) -> np.ndarray:
        per_replica = isinstance(temperatures, np.ndarray) and temperatures.ndim > 0
        decisions = np.empty(replica_indices.shape[0], dtype=bool)
        for position, replica in enumerate(replica_indices):
            draw = uniform_draws[replica]()
            step = delta[position]
            temperature = (float(temperatures[replica]) if per_replica
                           else float(temperatures))
            # delta <= 0 is always accepted (probability 1 > any uniform
            # draw), but the draw above still happens to keep the stream
            # aligned with the scalar solvers.
            decisions[position] = step <= 0 or \
                draw < acceptance_probability(float(step), temperature)
        return decisions

    def accept_batch(self, delta: np.ndarray, temperatures: TemperatureLike,
                     draws: np.ndarray) -> np.ndarray:
        delta = np.asarray(delta, dtype=float)
        temps = np.broadcast_to(np.asarray(temperatures, dtype=float),
                                delta.shape)
        exponents = np.where(temps > 0, -delta / np.where(temps > 0, temps, 1.0),
                             -np.inf)
        probabilities = np.exp(np.minimum(exponents, 0.0))
        return (delta <= 0) | (np.asarray(draws, dtype=float) < probabilities)

    def accept_scalar(self, delta: float, temperature: float,
                      rng: np.random.Generator) -> bool:
        # Allocation-free fast path for the scalar solvers' innermost loop
        # (millions of calls per campaign); the decision -- one uniform draw
        # compared against the scalar acceptance_probability -- is exactly
        # the generic M = 1 view of accept().
        draw = rng.random()
        return delta <= 0 or draw < acceptance_probability(float(delta),
                                                           float(temperature))

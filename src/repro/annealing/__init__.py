"""Simulated annealing engines and the two solver frontends.

* :mod:`repro.annealing.schedule` -- temperature schedules.
* :mod:`repro.annealing.moves` -- move generators (single flip, multi flip,
  one-hot group moves for permutation/colouring encodings).
* :mod:`repro.annealing.sa` -- a generic QUBO simulated annealer.
* :mod:`repro.annealing.hycim` -- the HyCiM hybrid solver: inequality filter
  -> CiM crossbar -> SA logic (paper Fig. 3 / Fig. 6(b)).
* :mod:`repro.annealing.dqubo_solver` -- the D-QUBO baseline annealer that
  embeds constraints as penalties with auxiliary variables.
"""

from repro.annealing.schedule import (
    ConstantSchedule,
    ExponentialSchedule,
    GeometricSchedule,
    LinearSchedule,
    TemperatureSchedule,
)
from repro.annealing.moves import (
    KnapsackNeighborhoodMove,
    MoveGenerator,
    MultiFlipMove,
    OneHotGroupMove,
    PermutationSwapMove,
    SingleFlipMove,
)
from repro.annealing.result import SolveResult
from repro.annealing.sa import SimulatedAnnealer
from repro.annealing.hycim import HyCiMSolver
from repro.annealing.dqubo_solver import DQUBOAnnealer

__all__ = [
    "TemperatureSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "ExponentialSchedule",
    "ConstantSchedule",
    "MoveGenerator",
    "SingleFlipMove",
    "MultiFlipMove",
    "OneHotGroupMove",
    "PermutationSwapMove",
    "KnapsackNeighborhoodMove",
    "SolveResult",
    "SimulatedAnnealer",
    "HyCiMSolver",
    "DQUBOAnnealer",
]

"""The HyCiM hybrid solver (paper Sec. 3, Fig. 3 and Fig. 6(b)).

One solver instance owns the three HyCiM components for a problem:

1. the **inequality-QUBO form** of the problem (Sec. 3.2), obtained from the
   problem's :meth:`to_inequality_qubo`;
2. one **CiM inequality filter** per inequality constraint (Sec. 3.3);
3. a **CiM crossbar** programmed with the QUBO matrix (Sec. 3.4).

Each SA iteration follows the paper's flow exactly: the SA logic proposes a
new configuration, the inequality filter decides feasibility *before* any
QUBO computation, infeasible candidates are bounced straight back to the SA
logic, and feasible ones are evaluated on the crossbar and subjected to the
Metropolis acceptance rule.

``use_hardware=False`` replaces the filter and crossbar with exact arithmetic
(software mode), which is useful for isolating algorithmic effects from
analog non-idealities; the default is hardware simulation with ideal devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.annealing.result import SolveResult
from repro.annealing.sa import _METROPOLIS
from repro.cim.crossbar import CrossbarConfig, FeFETCrossbar
from repro.dynamics.moves import MoveGenerator, SingleFlipMove
from repro.dynamics.schedule import GeometricSchedule, TemperatureSchedule
from repro.cim.inequality_filter import InequalityFilter
from repro.core.constraints import InequalityConstraint
from repro.core.transformation import InequalityQUBO
from repro.fefet.variability import VariabilityModel
from repro.problems.base import CombinatorialProblem
from repro.telemetry.probes import SweepProbe
from repro.telemetry.recorder import current_recorder

ProblemOrModel = Union[CombinatorialProblem, InequalityQUBO]


@dataclass
class HyCiMSolver:
    """Hybrid CiM QUBO solver for COPs with inequality constraints.

    Parameters
    ----------
    problem:
        A :class:`~repro.problems.base.CombinatorialProblem` (converted with
        its ``to_inequality_qubo``) or an :class:`InequalityQUBO` directly.
    use_hardware:
        Simulate the CiM filter and crossbar (default) or use exact software
        arithmetic for both.
    num_iterations:
        SA iterations per run (paper evaluation: 1000).
    moves_per_iteration:
        Candidate proposals per SA iteration.  The paper's hardware annealer
        updates at the granularity of full configuration sweeps, so the
        evaluation experiments set this to the number of problem variables;
        the default of 1 makes each iteration a single proposal.
    schedule:
        Annealing temperature schedule.
    move_generator:
        Candidate generator; defaults to single bit flips.
    filter_rows:
        Rows of the inequality filter arrays (paper: 16).
    crossbar_config:
        Crossbar non-ideality configuration (ideal 7-bit cells by default).
    variability:
        FeFET device variability shared by filter arrays.
    matchline_noise_sigma:
        Filter matchline readout noise (volts).
    record_history:
        Record the incumbent energy after every iteration (Fig. 7(f)).
    seed:
        RNG seed for the SA logic.
    defer_hardware:
        Skip building the shared CiM filter(s)/crossbar even though
        ``use_hardware`` is set.  Intended for the batched engine's
        batch-of-chips mode, where per-replica *device-axis* hardware
        replaces the shared components and building them here would be dead
        work; :meth:`solve` on a deferred solver runs software arithmetic.
    """

    problem: ProblemOrModel
    use_hardware: bool = True
    num_iterations: int = 1000
    moves_per_iteration: int = 1
    schedule: TemperatureSchedule = field(default_factory=GeometricSchedule)
    move_generator: MoveGenerator = field(default_factory=SingleFlipMove)
    filter_rows: int = 16
    crossbar_config: Optional[CrossbarConfig] = None
    variability: Optional[VariabilityModel] = None
    matchline_noise_sigma: float = 0.0
    record_history: bool = False
    seed: Optional[int] = None
    defer_hardware: bool = False

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        if self.moves_per_iteration < 1:
            raise ValueError("moves_per_iteration must be positive")
        if isinstance(self.problem, InequalityQUBO):
            self._model = self.problem
            self._native_problem: Optional[CombinatorialProblem] = None
        elif isinstance(self.problem, CombinatorialProblem):
            self._model = self.problem.to_inequality_qubo()
            self._native_problem = self.problem
        else:
            raise TypeError(
                "problem must be a CombinatorialProblem or an InequalityQUBO, "
                f"got {type(self.problem).__name__}"
            )
        self._build_hardware()

    # ------------------------------------------------------------------ #
    # Hardware construction
    # ------------------------------------------------------------------ #
    def _build_hardware(self) -> None:
        """Instantiate the CiM filter(s) and crossbar when hardware mode is on."""
        self._filters: Dict[int, InequalityFilter] = {}
        self._crossbar: Optional[FeFETCrossbar] = None
        if not self.use_hardware or self.defer_hardware:
            return
        for index, constraint in enumerate(self._model.constraints):
            if isinstance(constraint, InequalityConstraint):
                self._filters[index] = InequalityFilter(
                    constraint,
                    num_rows=self.filter_rows,
                    variability=self.variability,
                    matchline_noise_sigma=self.matchline_noise_sigma,
                )
        config = self.crossbar_config or CrossbarConfig(seed=self.seed)
        self._crossbar = FeFETCrossbar.from_qubo(self._model.qubo, config=config)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> InequalityQUBO:
        """The inequality-QUBO form the solver operates on."""
        return self._model

    @property
    def inequality_filters(self) -> Dict[int, InequalityFilter]:
        """Constraint-index -> hardware filter map (empty in software mode)."""
        return dict(self._filters)

    @property
    def crossbar(self) -> Optional[FeFETCrossbar]:
        """The CiM crossbar (``None`` in software mode)."""
        return self._crossbar

    # ------------------------------------------------------------------ #
    # Evaluation primitives
    # ------------------------------------------------------------------ #
    def _is_feasible(self, x: np.ndarray, rng: np.random.Generator) -> bool:
        """Inequality constraints via the CiM filter; equalities in SA logic."""
        for index, constraint in enumerate(self._model.constraints):
            hardware_filter = self._filters.get(index)
            if hardware_filter is not None:
                if not hardware_filter.is_feasible(x, rng=rng):
                    return False
            elif not constraint.is_satisfied(x):
                return False
        return True

    def _qubo_energy(self, x: np.ndarray) -> float:
        """QUBO value of a *feasible* configuration (crossbar or exact)."""
        if self._crossbar is not None:
            return self._crossbar.compute_energy(x)
        return self._model.qubo.energy(x)

    def _native_objective(self, x: np.ndarray) -> Optional[float]:
        if self._native_problem is None:
            return None
        return self._native_problem.objective(x)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(self, initial: Optional[np.ndarray] = None,
              rng: Optional[np.random.Generator] = None) -> SolveResult:
        """Run one simulated-annealing descent and return the best solution.

        Parameters
        ----------
        initial:
            Starting configuration (may be infeasible -- its Eq. (6) energy is
            then 0, so the solver escapes as soon as a feasible candidate with
            negative QUBO value appears).  Random when omitted.
        rng:
            External random generator (overrides ``seed``).
        """
        generator = rng or np.random.default_rng(self.seed)
        n = self._model.num_variables
        if initial is None:
            current = generator.integers(0, 2, size=n).astype(float)
        else:
            current = np.asarray(initial, dtype=float).copy()
            if current.shape[0] != n:
                raise ValueError(f"initial configuration length {current.shape[0]} != {n}")

        current_feasible = self._is_feasible(current, generator)
        current_energy = self._qubo_energy(current) if current_feasible else 0.0

        best = current.copy()
        best_energy = current_energy
        best_feasible = current_feasible

        # Validated once, computed once (see repro.dynamics.schedule): the
        # hot loop indexes the table, bit-identical to temperature() calls.
        temperatures = self.schedule.temperatures(self.num_iterations)
        history = []
        num_feasible = 0
        num_skipped = 0
        num_accepted = 0
        probe = SweepProbe(current_recorder(), "HyCiM", self.num_iterations)

        for iteration in range(self.num_iterations):
            temperature = temperatures[iteration]
            for _ in range(self.moves_per_iteration):
                candidate = self.move_generator.propose(current, generator)

                # Step 1: inequality evaluation on the CiM filter (Fig. 6(b)).
                if not self._is_feasible(candidate, generator):
                    num_skipped += 1
                    # Under Eq. (6) every infeasible configuration has energy
                    # 0, so while the incumbent is itself infeasible the walk
                    # may drift freely (delta = 0) without touching the
                    # crossbar; once a feasible incumbent exists, infeasible
                    # candidates are simply bounced back to the SA logic.
                    if not current_feasible:
                        current = candidate
                        current_energy = 0.0
                    continue
                num_feasible += 1

                # Step 2: QUBO computation on the CiM crossbar.
                candidate_energy = self._qubo_energy(candidate)

                # Step 3: Metropolis acceptance in the SA logic.
                delta = candidate_energy - current_energy
                if _METROPOLIS.accept_scalar(delta, temperature, generator):
                    current = candidate
                    current_energy = candidate_energy
                    current_feasible = True
                    num_accepted += 1
                    if candidate_energy < best_energy or not best_feasible:
                        best = candidate.copy()
                        best_energy = candidate_energy
                        best_feasible = True

            if probe.every:
                probe.maybe(iteration, temperature=temperature,
                            energy=current_energy, best_energy=best_energy,
                            num_feasible=num_feasible,
                            num_skipped=num_skipped,
                            num_accepted=num_accepted,
                            feasible=current_feasible)

            if self.record_history:
                history.append(best_energy)

        objective = self._native_objective(best) if best_feasible else (
            0.0 if self._native_problem is not None else None
        )
        return SolveResult(
            best_configuration=best,
            best_energy=float(best_energy),
            best_objective=objective,
            feasible=best_feasible,
            energy_history=history,
            num_iterations=self.num_iterations * self.moves_per_iteration,
            num_feasible_evaluations=num_feasible,
            num_infeasible_skipped=num_skipped,
            num_accepted_moves=num_accepted,
            solver_name="HyCiM",
            metadata={
                "use_hardware": self.use_hardware,
                "seed": self.seed,
                "num_constraints": self._model.num_constraints,
            },
        )

    def solve_many(self, initial_configurations: np.ndarray,
                   base_seed: int = 0) -> list[SolveResult]:
        """Run one SA descent per initial configuration (Fig. 10 protocol).

        .. deprecated::
            Legacy sequential-seeding helper (``base_seed + i``).  New code
            should use :func:`repro.runtime.run_trials` with
            ``initial_states`` instead: it derives independent per-trial
            seeds via ``SeedSequence.spawn`` and can run trials in parallel.
        """
        batch = np.asarray(initial_configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        results = []
        for index, row in enumerate(batch):
            run_rng = np.random.default_rng(base_seed + index)
            results.append(self.solve(initial=row, rng=run_rng))
        return results

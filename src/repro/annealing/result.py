"""Result object shared by every solver in the repository."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class SolveResult:
    """Outcome of a single annealing run.

    Attributes
    ----------
    best_configuration:
        Best (lowest-energy feasible) configuration found.  For the D-QUBO
        baseline this is the *decoded* problem-variable part.
    best_energy:
        Energy of the best configuration under the solver's internal
        objective (QUBO value for HyCiM, penalised QUBO value for D-QUBO).
    best_objective:
        The native problem objective of the best configuration (e.g. the QKP
        profit), when the solver knows how to compute it.
    feasible:
        Whether the best configuration satisfies the original constraints.
    energy_history:
        Internal energy of the incumbent after each iteration (recorded only
        when history tracking is enabled; Fig. 7(f) plots this).
    num_iterations:
        Total SA iterations executed.
    num_feasible_evaluations:
        Iterations whose candidate passed the feasibility check and therefore
        required a QUBO computation.
    num_infeasible_skipped:
        Iterations whose candidate was rejected by the inequality filter
        before any QUBO computation (HyCiM's saving mechanism).
    num_accepted_moves:
        Accepted Metropolis moves.
    solver_name:
        Label used in experiment reports.
    trial_seed:
        The spawned per-trial seed when the run was launched through
        :mod:`repro.runtime` (``SeedSequence.spawn`` derived); replaying the
        solver with this seed reproduces the trial bit-for-bit.
    wall_time:
        Wall-clock duration of the trial in seconds (set by the runtime).
    metadata:
        Free-form extras (temperatures, seeds, instance name, ...).
    """

    best_configuration: np.ndarray
    best_energy: float
    best_objective: Optional[float] = None
    feasible: bool = True
    energy_history: List[float] = field(default_factory=list)
    num_iterations: int = 0
    num_feasible_evaluations: int = 0
    num_infeasible_skipped: int = 0
    num_accepted_moves: int = 0
    solver_name: str = "solver"
    trial_seed: Optional[int] = None
    wall_time: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def infeasible_fraction(self) -> float:
        """Fraction of iterations filtered out as infeasible."""
        if self.num_iterations == 0:
            return 0.0
        return self.num_infeasible_skipped / self.num_iterations

    @property
    def acceptance_rate(self) -> float:
        """Fraction of iterations whose move was accepted."""
        if self.num_iterations == 0:
            return 0.0
        return self.num_accepted_moves / self.num_iterations

    def summary(self) -> str:
        """One-line human readable summary."""
        objective = "n/a" if self.best_objective is None else f"{self.best_objective:.4g}"
        return (
            f"[{self.solver_name}] energy={self.best_energy:.4g} objective={objective} "
            f"feasible={self.feasible} iterations={self.num_iterations} "
            f"skipped={self.num_infeasible_skipped} accepted={self.num_accepted_moves}"
        )

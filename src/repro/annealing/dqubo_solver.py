"""The D-QUBO baseline annealer (paper Fig. 1(b) and Sec. 4).

The conventional route the paper compares against: the inequality constraint
is embedded in the objective with auxiliary one-hot slack variables and
penalty weights ``alpha = beta = 2``, producing an unconstrained QUBO over
``n + C`` variables, which is then annealed with a standard simulated
annealer (optionally evaluated on the same FeFET crossbar model for a fair
hardware comparison).

Because the search space is ``2^(n+C)`` and the penalty landscape is full of
deep local minima at infeasible configurations, the baseline frequently ends
an anneal on an infeasible configuration -- exactly the behaviour Fig. 10
reports (10.75% average success rate vs HyCiM's 98.54%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.annealing.result import SolveResult
from repro.annealing.sa import _METROPOLIS, SimulatedAnnealer
from repro.cim.crossbar import CrossbarConfig, FeFETCrossbar
from repro.dynamics.moves import MoveGenerator, SingleFlipMove
from repro.dynamics.schedule import GeometricSchedule, TemperatureSchedule
from repro.core.dqubo import DQUBOTransformation, SlackEncoding, to_dqubo
from repro.core.qubo import QUBOModel
from repro.problems.knapsack import KnapsackProblem
from repro.problems.qkp import QuadraticKnapsackProblem
from repro.telemetry.probes import SweepProbe
from repro.telemetry.recorder import current_recorder

KnapsackLike = Union[QuadraticKnapsackProblem, KnapsackProblem]


@dataclass
class DQUBOAnnealer:
    """Simulated annealing on the D-QUBO (penalty + slack) formulation.

    Parameters
    ----------
    problem:
        A (quadratic) knapsack problem; its objective QUBO and capacity
        constraint define the D-QUBO construction.
    alpha, beta:
        Penalty weights (paper: 2 and 2).
    encoding:
        One-hot (paper baseline) or binary slack encoding (ablation).
    use_hardware:
        Evaluate the combined QUBO on a FeFET crossbar model instead of exact
        arithmetic.  Off by default because the combined matrix needs 16-25
        bit planes, which is exactly the hardware-overhead point of Fig. 9;
        functionally the software path exhibits the same search behaviour.
    num_iterations:
        SA iterations per run (paper: 1000).
    moves_per_iteration:
        Candidate proposals per iteration (the evaluation experiments use one
        sweep of the *combined* variable vector so both solvers get the same
        proposal budget).
    schedule, move_generator, record_history, seed:
        Standard SA knobs (single-flip moves by default).
    """

    problem: KnapsackLike
    alpha: float = 2.0
    beta: float = 2.0
    encoding: SlackEncoding = SlackEncoding.ONE_HOT
    use_hardware: bool = False
    num_iterations: int = 1000
    moves_per_iteration: int = 1
    schedule: TemperatureSchedule = field(default_factory=GeometricSchedule)
    move_generator: MoveGenerator = field(default_factory=SingleFlipMove)
    crossbar_config: Optional[CrossbarConfig] = None
    record_history: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem, (QuadraticKnapsackProblem, KnapsackProblem)):
            raise TypeError(
                "DQUBOAnnealer expects a knapsack-type problem, got "
                f"{type(self.problem).__name__}"
            )
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        if self.moves_per_iteration < 1:
            raise ValueError("moves_per_iteration must be positive")
        self._objective_qubo: QUBOModel = self.problem.to_qubo()
        self._transformation: DQUBOTransformation = to_dqubo(
            self._objective_qubo,
            self.problem.constraint(),
            alpha=self.alpha,
            beta=self.beta,
            encoding=self.encoding,
        )
        self._crossbar: Optional[FeFETCrossbar] = None
        if self.use_hardware:
            from repro.core.quantization import matrix_bit_width

            bits = matrix_bit_width(self._transformation)
            config = self.crossbar_config or CrossbarConfig(weight_bits=bits, seed=self.seed)
            self._crossbar = FeFETCrossbar.from_qubo(self._transformation.qubo, config=config)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def transformation(self) -> DQUBOTransformation:
        """The underlying D-QUBO construction (dimension, Q_max, ...)."""
        return self._transformation

    @property
    def crossbar(self) -> Optional[FeFETCrossbar]:
        """The CiM crossbar used for energy evaluation (``None`` in software mode)."""
        return self._crossbar

    # ------------------------------------------------------------------ #
    # Initial-configuration handling
    # ------------------------------------------------------------------ #
    def extend_initial(self, problem_initial: np.ndarray,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Extend a problem-variable initial configuration with slack bits.

        The slack bits are set consistently with the current total weight when
        possible (one-hot ``y_{w.x} = 1``), mirroring how an operator would
        seed the auxiliary variables; otherwise they are random.
        """
        generator = rng or np.random.default_rng(self.seed)
        x = np.asarray(problem_initial, dtype=float)
        n = self._transformation.num_problem_variables
        if x.shape[0] != n:
            raise ValueError(f"problem initial length {x.shape[0]} != {n}")
        m = self._transformation.num_auxiliary_variables
        aux = np.zeros(m)
        lhs = float(self.problem.constraint().weight_vector @ x)
        if self.encoding is SlackEncoding.ONE_HOT:
            index = int(round(lhs))
            if 1 <= index <= m:
                aux[index - 1] = 1.0
            else:
                aux[int(generator.integers(0, m))] = 1.0
        else:
            slack = int(round(self.problem.constraint().bound - lhs))
            slack = max(0, min(slack, 2 ** m - 1))
            for bit in range(m):
                aux[bit] = (slack >> bit) & 1
        return np.concatenate([x, aux])

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def _energy(self, x: np.ndarray) -> float:
        if self._crossbar is not None:
            return self._crossbar.compute_energy(x)
        return self._transformation.qubo.energy(x)

    def solve(self, initial: Optional[np.ndarray] = None,
              rng: Optional[np.random.Generator] = None) -> SolveResult:
        """Run one SA descent on the penalised D-QUBO objective.

        ``initial`` may be either a full ``n + m`` configuration or just the
        ``n`` problem variables (slack bits are then seeded consistently).
        """
        generator = rng or np.random.default_rng(self.seed)
        total = self._transformation.num_variables
        n = self._transformation.num_problem_variables

        if initial is None:
            start = generator.integers(0, 2, size=total).astype(float)
        else:
            arr = np.asarray(initial, dtype=float)
            if arr.shape[0] == total:
                start = arr.copy()
            elif arr.shape[0] == n:
                start = self.extend_initial(arr, rng=generator)
            else:
                raise ValueError(
                    f"initial configuration length {arr.shape[0]} matches neither "
                    f"the problem dimension {n} nor the full dimension {total}"
                )

        if self._crossbar is None:
            annealer = SimulatedAnnealer(
                schedule=self.schedule,
                move_generator=self.move_generator,
                num_iterations=self.num_iterations,
                moves_per_iteration=self.moves_per_iteration,
                record_history=self.record_history,
            )
            inner = annealer.anneal(self._transformation.qubo, initial=start, rng=generator)
            best_full = inner.best_configuration
            best_energy = inner.best_energy
            history = inner.energy_history
            num_feasible = inner.num_feasible_evaluations
            num_accepted = inner.num_accepted_moves
        else:
            best_full, best_energy, history, num_feasible, num_accepted = (
                self._anneal_on_crossbar(start, generator)
            )

        return self.assemble_result(best_full, best_energy, history,
                                    num_feasible, num_accepted)

    def assemble_result(self, best_full: np.ndarray, best_energy: float,
                        history: list, num_feasible: int, num_accepted: int,
                        extra_metadata: Optional[dict] = None) -> SolveResult:
        """Decode a full-dimension anneal outcome into the D-QUBO result shape.

        The single assembly point shared by :meth:`solve` and the batched
        trial function (:func:`repro.batched.trials.dqubo_batched_trials`),
        so slack decoding, the infeasible-objective convention and the
        metadata schema cannot drift between the scalar and lock-step paths.
        """
        decoded = self._transformation.decode(best_full)
        feasible = self._transformation.is_feasible(best_full)
        objective = self.problem.objective(decoded) if feasible else 0.0
        return SolveResult(
            best_configuration=decoded,
            best_energy=float(best_energy),
            best_objective=float(objective),
            feasible=feasible,
            energy_history=history,
            num_iterations=self.num_iterations * self.moves_per_iteration,
            num_feasible_evaluations=num_feasible,
            num_infeasible_skipped=0,
            num_accepted_moves=num_accepted,
            solver_name="D-QUBO",
            metadata={
                "encoding": self.encoding.value,
                "alpha": self.alpha,
                "beta": self.beta,
                "qubo_dimension": self._transformation.num_variables,
                "use_hardware": self.use_hardware,
                "penalty_satisfied": self._transformation.is_penalty_satisfied(best_full),
                **(extra_metadata or {}),
            },
        )

    def _anneal_on_crossbar(self, start: np.ndarray, generator: np.random.Generator):
        """Full-re-evaluation SA loop on the crossbar (hardware mode)."""
        current = start.copy()
        current_energy = self._energy(current)
        best = current.copy()
        best_energy = current_energy
        history = []
        num_feasible = 0
        num_accepted = 0
        temperatures = self.schedule.temperatures(self.num_iterations)
        probe = SweepProbe(current_recorder(), "D-QUBO", self.num_iterations)
        for iteration in range(self.num_iterations):
            temperature = temperatures[iteration]
            for _ in range(self.moves_per_iteration):
                candidate = self.move_generator.propose(current, generator)
                candidate_energy = self._energy(candidate)
                num_feasible += 1
                delta = candidate_energy - current_energy
                if _METROPOLIS.accept_scalar(delta, temperature, generator):
                    current = candidate
                    current_energy = candidate_energy
                    num_accepted += 1
                    if current_energy < best_energy:
                        best = current.copy()
                        best_energy = current_energy
            if probe.every:
                probe.maybe(iteration, temperature=temperature,
                            energy=current_energy, best_energy=best_energy,
                            num_feasible=num_feasible, num_skipped=0,
                            num_accepted=num_accepted)
            if self.record_history:
                history.append(best_energy)
        return best, best_energy, history, num_feasible, num_accepted

    def solve_many(self, initial_configurations: np.ndarray,
                   base_seed: int = 0) -> list[SolveResult]:
        """Run one SA descent per initial configuration (Fig. 10 protocol).

        .. deprecated::
            Legacy sequential-seeding helper (``base_seed + i``).  New code
            should use :func:`repro.runtime.run_trials` with
            ``initial_states`` instead: it derives independent per-trial
            seeds via ``SeedSequence.spawn`` and can run trials in parallel.
        """
        batch = np.asarray(initial_configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        results = []
        for index, row in enumerate(batch):
            run_rng = np.random.default_rng(base_seed + index)
            results.append(self.solve(initial=row, rng=run_rng))
        return results

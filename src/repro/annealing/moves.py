"""Back-compat shim: move proposals live in :mod:`repro.dynamics.moves`.

The move-generator classes moved into the pluggable dynamics layer; this
module re-exports them so existing imports keep working.
"""

from repro.dynamics.moves import (
    KnapsackNeighborhoodMove,
    MoveGenerator,
    MoveProposal,
    MultiFlipMove,
    OneHotGroupMove,
    PermutationSwapMove,
    SingleFlipMove,
)

__all__ = [
    "MoveGenerator",
    "MoveProposal",
    "SingleFlipMove",
    "MultiFlipMove",
    "KnapsackNeighborhoodMove",
    "PermutationSwapMove",
    "OneHotGroupMove",
]

"""Generic QUBO simulated annealer.

A software reference annealer over any :class:`~repro.core.qubo.QUBOModel`.
Single-flip moves use the O(n) incremental energy delta, so the annealer is
usable at the paper's problem scale; arbitrary move generators fall back to
full re-evaluation.  It is the engine behind the unconstrained rows of the
Table 1 reproduction (Max-Cut, spin glass) and a building block of the
D-QUBO baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.annealing.result import SolveResult
from repro.core.qubo import QUBOModel
from repro.dynamics.acceptance import MetropolisRule
from repro.dynamics.moves import MoveGenerator, SingleFlipMove
from repro.dynamics.schedule import GeometricSchedule, TemperatureSchedule
from repro.telemetry.probes import SweepProbe
from repro.telemetry.recorder import current_recorder

#: The scalar solvers decide through the dynamics layer's batched rule (its
#: M = 1 view), so the Metropolis logic exists exactly once in the codebase.
_METROPOLIS = MetropolisRule()


@dataclass
class SimulatedAnnealer:
    """Simulated annealing over a QUBO model.

    Parameters
    ----------
    schedule:
        Temperature schedule (default geometric 10 -> 0.01).
    move_generator:
        Neighbourhood generator (default single flip, which enables the fast
        incremental energy path).
    num_iterations:
        SA iterations per run (paper evaluation: 1000).
    moves_per_iteration:
        Candidate proposals per iteration (1 by default; the evaluation
        experiments use one sweep, i.e. the number of variables).
    record_history:
        Whether to record the incumbent energy after each iteration.
    seed:
        RNG seed.
    """

    schedule: TemperatureSchedule = field(default_factory=GeometricSchedule)
    move_generator: MoveGenerator = field(default_factory=SingleFlipMove)
    num_iterations: int = 1000
    moves_per_iteration: int = 1
    record_history: bool = False
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        if self.moves_per_iteration < 1:
            raise ValueError("moves_per_iteration must be positive")

    def anneal(
        self,
        qubo: QUBOModel,
        initial: Optional[np.ndarray] = None,
        accept_filter: Optional[Callable[[np.ndarray], bool]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SolveResult:
        """Run one SA descent on ``qubo``.

        Parameters
        ----------
        qubo:
            The QUBO model to minimise.
        initial:
            Starting configuration (random when omitted).
        accept_filter:
            Optional predicate evaluated on each candidate *before* its energy
            is computed; candidates failing it are skipped (this is the hook
            the HyCiM solver replaces with the CiM inequality filter).
        rng:
            External random generator (overrides ``seed``).
        """
        generator = rng or np.random.default_rng(self.seed)
        n = qubo.num_variables
        if initial is None:
            current = generator.integers(0, 2, size=n).astype(float)
        else:
            current = np.asarray(initial, dtype=float).copy()
            if current.shape[0] != n:
                raise ValueError(f"initial configuration length {current.shape[0]} != {n}")
        current_energy = qubo.energy(current)
        best = current.copy()
        best_energy = current_energy

        single_flip = isinstance(self.move_generator, SingleFlipMove)
        # Validated once, computed once: the hot loop indexes the table
        # instead of re-deriving (and re-checking) the temperature per
        # iteration.  Entries are bit-identical to temperature() calls.
        temperatures = self.schedule.temperatures(self.num_iterations)
        history = []
        num_feasible = 0
        num_skipped = 0
        num_accepted = 0
        probe = SweepProbe(current_recorder(), "SimulatedAnnealer",
                           self.num_iterations)

        for iteration in range(self.num_iterations):
            temperature = temperatures[iteration]

            for _ in range(self.moves_per_iteration):
                if single_flip:
                    flip_index = int(generator.integers(0, n))
                    candidate = current.copy()
                    candidate[flip_index] = 1.0 - candidate[flip_index]
                else:
                    candidate = self.move_generator.propose(current, generator)

                if accept_filter is not None and not accept_filter(candidate):
                    num_skipped += 1
                    continue
                num_feasible += 1

                if single_flip:
                    delta = qubo.energy_delta(current, flip_index)
                    candidate_energy = current_energy + delta
                else:
                    candidate_energy = qubo.energy(candidate)
                    delta = candidate_energy - current_energy

                if _METROPOLIS.accept_scalar(delta, temperature, generator):
                    current = candidate
                    current_energy = candidate_energy
                    num_accepted += 1
                    if current_energy < best_energy:
                        best_energy = current_energy
                        best = current.copy()

            if probe.every:
                probe.maybe(iteration, temperature=temperature,
                            energy=current_energy, best_energy=best_energy,
                            num_feasible=num_feasible,
                            num_skipped=num_skipped,
                            num_accepted=num_accepted)

            if self.record_history:
                history.append(best_energy)

        return SolveResult(
            best_configuration=best,
            best_energy=float(best_energy),
            energy_history=history,
            num_iterations=self.num_iterations * self.moves_per_iteration,
            num_feasible_evaluations=num_feasible,
            num_infeasible_skipped=num_skipped,
            num_accepted_moves=num_accepted,
            solver_name="SimulatedAnnealer",
            metadata={"seed": self.seed},
        )

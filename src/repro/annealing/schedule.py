"""Back-compat shim: temperature schedules live in :mod:`repro.dynamics`.

The schedule classes (and the scalar Metropolis
:func:`acceptance_probability`) moved into the pluggable dynamics layer
(:mod:`repro.dynamics.schedule` / :mod:`repro.dynamics.acceptance`); this
module re-exports them so existing imports keep working.
"""

from repro.dynamics.acceptance import acceptance_probability
from repro.dynamics.schedule import (
    ConstantSchedule,
    ExponentialSchedule,
    GeometricSchedule,
    LinearSchedule,
    TemperatureSchedule,
)

__all__ = [
    "TemperatureSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "ExponentialSchedule",
    "ConstantSchedule",
    "acceptance_probability",
]

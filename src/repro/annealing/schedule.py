"""Annealing temperature schedules.

The SA logic of HyCiM (paper Fig. 6(b)) accepts worse solutions with a
probability tied to an annealing temperature that decreases over iterations.
Several standard schedules are provided; the default used by the solvers is
:class:`GeometricSchedule`, the most common choice for hardware annealers.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass


class TemperatureSchedule(ABC):
    """Maps iteration progress to an annealing temperature."""

    @abstractmethod
    def temperature(self, iteration: int, num_iterations: int) -> float:
        """Temperature at ``iteration`` (0-based) of a ``num_iterations`` run."""

    def _check(self, iteration: int, num_iterations: int) -> None:
        if num_iterations < 1:
            raise ValueError("num_iterations must be positive")
        if not 0 <= iteration < num_iterations:
            raise ValueError(
                f"iteration {iteration} out of range for a {num_iterations}-iteration run"
            )


@dataclass
class GeometricSchedule(TemperatureSchedule):
    """``T_k = T_start * (T_end / T_start)^(k / (K-1))`` -- exponential decay
    hitting ``T_end`` exactly on the last iteration."""

    start_temperature: float = 10.0
    end_temperature: float = 0.01

    def __post_init__(self) -> None:
        if self.start_temperature <= 0 or self.end_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.end_temperature > self.start_temperature:
            raise ValueError("end temperature must not exceed start temperature")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        self._check(iteration, num_iterations)
        if num_iterations == 1:
            return self.start_temperature
        ratio = self.end_temperature / self.start_temperature
        fraction = iteration / (num_iterations - 1)
        return self.start_temperature * (ratio ** fraction)


@dataclass
class LinearSchedule(TemperatureSchedule):
    """Linear interpolation from start to end temperature."""

    start_temperature: float = 10.0
    end_temperature: float = 0.01

    def __post_init__(self) -> None:
        if self.start_temperature <= 0 or self.end_temperature <= 0:
            raise ValueError("temperatures must be positive")
        if self.end_temperature > self.start_temperature:
            raise ValueError("end temperature must not exceed start temperature")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        self._check(iteration, num_iterations)
        if num_iterations == 1:
            return self.start_temperature
        fraction = iteration / (num_iterations - 1)
        return self.start_temperature + fraction * (self.end_temperature - self.start_temperature)


@dataclass
class ExponentialSchedule(TemperatureSchedule):
    """``T_k = T_start * alpha^k`` with a fixed decay factor ``alpha``."""

    start_temperature: float = 10.0
    decay: float = 0.99

    def __post_init__(self) -> None:
        if self.start_temperature <= 0:
            raise ValueError("start temperature must be positive")
        if not 0.0 < self.decay < 1.0:
            raise ValueError("decay must be in (0, 1)")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        self._check(iteration, num_iterations)
        return self.start_temperature * (self.decay ** iteration)


@dataclass
class ConstantSchedule(TemperatureSchedule):
    """Fixed temperature (degenerates SA into Metropolis sampling)."""

    value: float = 1.0

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("temperature must be positive")

    def temperature(self, iteration: int, num_iterations: int) -> float:
        self._check(iteration, num_iterations)
        return self.value


def acceptance_probability(delta: float, temperature: float) -> float:
    """Metropolis acceptance probability for an energy increase ``delta``.

    ``delta <= 0`` is always accepted; otherwise ``exp(-delta / T)``.
    """
    if delta <= 0:
        return 1.0
    if temperature <= 0:
        return 0.0
    exponent = -delta / temperature
    if exponent < -700:
        return 0.0
    return math.exp(exponent)

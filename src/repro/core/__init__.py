"""Core QUBO / Ising machinery and the HyCiM inequality-QUBO transformation.

This package contains the mathematical core of the reproduction:

* :class:`~repro.core.qubo.QUBOModel` -- dense/sparse quadratic unconstrained
  binary optimization model with evaluation, algebra and serialization.
* :class:`~repro.core.ising.IsingModel` -- Ising Hamiltonian with lossless
  conversion to and from QUBO form.
* :mod:`repro.core.constraints` -- linear (in)equality constraint objects.
* :mod:`repro.core.transformation` -- the paper's inequality-QUBO form
  ``E(x) = [w.x <= C] * x^T Q x`` (Sec. 3.2).
* :mod:`repro.core.dqubo` -- the conventional D-QUBO transformation with
  one-hot (and log) slack variables (paper Fig. 1(b)), used as a baseline.
* :mod:`repro.core.quantization` -- bit-width / search-space analysis used by
  the hardware-overhead study (Fig. 9).
"""

from repro.core.constraints import (
    EqualityConstraint,
    LinearConstraint,
    InequalityConstraint,
)
from repro.core.ising import IsingModel
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO, to_inequality_qubo
from repro.core.dqubo import DQUBOTransformation, SlackEncoding, to_dqubo
from repro.core.quantization import (
    QuantizationReport,
    matrix_bit_width,
    quantization_report,
    search_space_bits,
)

__all__ = [
    "QUBOModel",
    "IsingModel",
    "LinearConstraint",
    "InequalityConstraint",
    "EqualityConstraint",
    "InequalityQUBO",
    "to_inequality_qubo",
    "DQUBOTransformation",
    "SlackEncoding",
    "to_dqubo",
    "QuantizationReport",
    "matrix_bit_width",
    "quantization_report",
    "search_space_bits",
]

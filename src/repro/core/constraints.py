"""Linear constraint objects over binary variables.

COPs with inequality constraints (knapsack, QKP, bin packing, ...) carry one
or more constraints of the form ``w . x <= C`` (or ``== C``).  These objects
are the interface between problem definitions (:mod:`repro.problems`), the
inequality-QUBO transformation (:mod:`repro.core.transformation`), the
D-QUBO penalty construction (:mod:`repro.core.dqubo`) and the CiM inequality
filter (:mod:`repro.cim.inequality_filter`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class LinearConstraint:
    """Base class for a linear constraint ``w . x  (sense)  bound``.

    Parameters
    ----------
    weights:
        Coefficient vector ``w`` (one entry per binary variable).
    bound:
        Right-hand side constant.
    name:
        Optional label used in reports.
    """

    weights: tuple
    bound: float
    name: str = "constraint"

    def __init__(self, weights: Iterable[float], bound: float, name: str = "constraint"):
        object.__setattr__(self, "weights", tuple(float(w) for w in weights))
        object.__setattr__(self, "bound", float(bound))
        object.__setattr__(self, "name", str(name))

    @property
    def num_variables(self) -> int:
        """Number of variables the constraint spans."""
        return len(self.weights)

    @property
    def weight_vector(self) -> np.ndarray:
        """Coefficients as a NumPy array."""
        return np.asarray(self.weights, dtype=float)

    def lhs(self, x: Iterable[float]) -> float:
        """Evaluate the left-hand side ``w . x``."""
        vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if vec.shape[0] != self.num_variables:
            raise ValueError(
                f"configuration length {vec.shape[0]} != constraint arity {self.num_variables}"
            )
        return float(self.weight_vector @ vec)

    def is_satisfied(self, x: Iterable[float]) -> bool:
        """Whether ``x`` satisfies the constraint (implemented by subclasses)."""
        raise NotImplementedError

    def violation(self, x: Iterable[float]) -> float:
        """Non-negative violation magnitude (0 when satisfied)."""
        raise NotImplementedError


class InequalityConstraint(LinearConstraint):
    """A ``w . x <= C`` constraint -- the constraint class HyCiM targets."""

    def is_satisfied(self, x: Iterable[float]) -> bool:
        return self.lhs(x) <= self.bound + 1e-9

    def violation(self, x: Iterable[float]) -> float:
        return max(0.0, self.lhs(x) - self.bound)

    def slack(self, x: Iterable[float]) -> float:
        """Remaining capacity ``C - w.x`` (may be negative when violated)."""
        return self.bound - self.lhs(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InequalityConstraint(n={self.num_variables}, C={self.bound:g}, name={self.name!r})"


class EqualityConstraint(LinearConstraint):
    """A ``w . x == C`` constraint (special case; see paper Sec. 3.2)."""

    def is_satisfied(self, x: Iterable[float]) -> bool:
        return abs(self.lhs(x) - self.bound) <= 1e-9

    def violation(self, x: Iterable[float]) -> float:
        return abs(self.lhs(x) - self.bound)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EqualityConstraint(n={self.num_variables}, C={self.bound:g}, name={self.name!r})"

"""The conventional D-QUBO transformation (paper Fig. 1(b)) -- the baseline.

A COP ``min x^T Q x  s.t.  w . x <= C`` is turned into an *unconstrained*
QUBO by introducing auxiliary (slack) variables and penalty terms:

One-hot slack encoding (the encoding the paper evaluates, Fig. 1(b)):

    p1(x, y) = alpha * (1 - sum_k y_k)^2
             + beta  * (sum_i w_i x_i - sum_k k y_k)^2,       k = 1..C

    f1(x, y) = x^T Q x + p1(x, y)

The auxiliary vector ``y`` has ``C`` entries (one per admissible total
weight), so the search space grows from ``2^n`` to ``2^(n+C)`` and the
largest matrix coefficient grows like ``beta * C^2`` -- exactly the growth
measured in Fig. 9(a,b).

Binary (log) slack encoding is also provided as an extension/ablation: the
slack ``s = C - w.x`` is encoded with ``ceil(log2(C+1))`` binary digits,

    p2(x, s) = beta * (sum_i w_i x_i + sum_j 2^j s_j - C)^2,

which needs far fewer auxiliary variables than one-hot but still inflates the
coefficient range and couples every item to every slack bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Tuple

import numpy as np

from repro.core.constraints import InequalityConstraint
from repro.core.qubo import QUBOModel


class SlackEncoding(str, Enum):
    """Auxiliary-variable encodings supported by the D-QUBO transformation."""

    ONE_HOT = "one_hot"
    BINARY = "binary"


def _one_hot_slack_size(capacity: int) -> int:
    """Number of one-hot auxiliary variables (one per weight value 1..C)."""
    return int(capacity)


def _binary_slack_size(capacity: int) -> int:
    """Number of binary slack bits needed to represent 0..C."""
    if capacity <= 0:
        return 0
    return int(math.ceil(math.log2(capacity + 1)))


@dataclass
class DQUBOTransformation:
    """Result of a D-QUBO transformation.

    Attributes
    ----------
    qubo:
        The combined unconstrained QUBO over ``n + m`` variables
        (problem variables first, auxiliary variables last).
    num_problem_variables:
        ``n`` -- the original problem variables.
    num_auxiliary_variables:
        ``m`` -- slack variables added by the encoding.
    encoding:
        Which slack encoding was used.
    alpha, beta:
        Penalty weights (paper uses ``alpha = beta = 2`` in Sec. 4.2).
    constraint:
        The original constraint, kept for feasibility checks of decoded
        solutions.
    """

    qubo: QUBOModel
    num_problem_variables: int
    num_auxiliary_variables: int
    encoding: SlackEncoding
    alpha: float
    beta: float
    constraint: InequalityConstraint

    @property
    def num_variables(self) -> int:
        """Total QUBO dimension ``n + m`` (paper Fig. 9(b))."""
        return self.qubo.num_variables

    @property
    def max_abs_coefficient(self) -> float:
        """``(Q_ij)_MAX`` of the combined matrix (paper Fig. 9(a))."""
        return self.qubo.max_abs_coefficient

    def search_space_bits(self) -> int:
        """``log2`` of the search-space size: ``n + m``."""
        return self.num_variables

    # ------------------------------------------------------------------ #
    # Solution decoding
    # ------------------------------------------------------------------ #
    def split(self, configuration: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
        """Split a full configuration into (problem part, auxiliary part)."""
        vec = np.asarray(list(configuration) if not isinstance(configuration, np.ndarray)
                         else configuration, dtype=float)
        if vec.shape[0] != self.num_variables:
            raise ValueError(
                f"configuration length {vec.shape[0]} != total dimension {self.num_variables}"
            )
        n = self.num_problem_variables
        return vec[:n].copy(), vec[n:].copy()

    def decode(self, configuration: Iterable[float]) -> np.ndarray:
        """Extract the problem-variable assignment from a full configuration."""
        problem_part, _ = self.split(configuration)
        return problem_part

    def is_penalty_satisfied(self, configuration: Iterable[float]) -> bool:
        """Whether the auxiliary encoding constraints hold for ``configuration``.

        For the one-hot encoding this requires exactly one ``y_k = 1`` and
        ``w.x == sum_k k y_k``; for the binary encoding it requires
        ``w.x + slack == C``.  A configuration whose penalty is satisfied is
        automatically feasible in the original problem.
        """
        problem_part, aux = self.split(configuration)
        lhs = float(self.constraint.weight_vector @ problem_part)
        if self.encoding is SlackEncoding.ONE_HOT:
            if not np.isclose(aux.sum(), 1.0):
                return False
            encoded = float(np.arange(1, aux.shape[0] + 1) @ aux)
            return np.isclose(lhs, encoded)
        slack = float(np.array([2.0 ** j for j in range(aux.shape[0])]) @ aux)
        return np.isclose(lhs + slack, self.constraint.bound)

    def is_feasible(self, configuration: Iterable[float]) -> bool:
        """Whether the decoded problem variables satisfy the original constraint."""
        return self.constraint.is_satisfied(self.decode(configuration))

    def problem_objective(self, configuration: Iterable[float],
                          problem_qubo: QUBOModel) -> float:
        """Evaluate the *original* objective on the decoded problem variables."""
        return problem_qubo.energy(self.decode(configuration))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DQUBOTransformation(n={self.num_problem_variables}, "
            f"m={self.num_auxiliary_variables}, encoding={self.encoding.value}, "
            f"max|Q|={self.max_abs_coefficient:.3g})"
        )


def predict_dqubo_dimension(num_problem_variables: int, capacity: float,
                            encoding: SlackEncoding = SlackEncoding.ONE_HOT) -> int:
    """Predicted D-QUBO dimension ``n + m`` without building the matrix.

    Used by the Fig. 9(b) study at full problem scale, where constructing the
    dense one-hot matrix (up to 2636 x 2636 per instance) is unnecessary.
    """
    if capacity <= 0 or abs(capacity - round(capacity)) > 1e-9:
        raise ValueError("capacity must be a positive integer")
    c = int(round(capacity))
    if encoding is SlackEncoding.ONE_HOT:
        return num_problem_variables + _one_hot_slack_size(c)
    return num_problem_variables + _binary_slack_size(c)


def predict_dqubo_qmax(objective_qmax: float, max_weight: float, capacity: float,
                       alpha: float = 2.0, beta: float = 2.0,
                       encoding: SlackEncoding = SlackEncoding.ONE_HOT) -> float:
    """Predicted ``(Q_ij)_MAX`` of the D-QUBO matrix without building it.

    For the one-hot encoding the dominant coefficient is the pairwise slack
    coupling ``2 * beta * C * (C - 1)`` (for ``C >= 3``), which is what drives
    the 4e4..2.6e7 range reported in Fig. 9(a).  All other candidate terms are
    included for completeness so the prediction is exact.
    """
    if capacity <= 0 or abs(capacity - round(capacity)) > 1e-9:
        raise ValueError("capacity must be a positive integer")
    c = int(round(capacity))
    w = float(max_weight)
    candidates = [abs(objective_qmax), 2.0 * alpha, abs(alpha * (-2.0 + 1.0))]
    if encoding is SlackEncoding.ONE_HOT:
        candidates.extend([
            beta * w ** 2,
            2.0 * beta * w * w,
            abs(beta * c ** 2 - alpha),
            # Slack-slack pairs carry both the alpha one-hot coupling and the
            # beta product term; the (C-1, C) pair is the global maximum.
            2.0 * alpha + 2.0 * beta * c * max(c - 1, 0),
            2.0 * beta * w * c,
        ])
    else:
        m = _binary_slack_size(c)
        top_slack = 2.0 ** (m - 1) if m > 0 else 0.0
        combined_max = max(w, top_slack)
        candidates.extend([
            beta * abs(combined_max ** 2 - 2.0 * c * combined_max),
            beta * abs(w ** 2 - 2.0 * c * w),
            2.0 * beta * combined_max * max(combined_max / 2.0, w),
        ])
    return float(max(candidates))


def to_dqubo(
    objective: QUBOModel,
    constraint: InequalityConstraint,
    alpha: float = 2.0,
    beta: float = 2.0,
    encoding: SlackEncoding = SlackEncoding.ONE_HOT,
) -> DQUBOTransformation:
    """Transform ``min x^T Q x  s.t.  w.x <= C`` into an unconstrained D-QUBO.

    Parameters
    ----------
    objective:
        The problem QUBO over the ``n`` problem variables (already negated
        for maximisation problems).
    constraint:
        The inequality constraint ``w . x <= C`` with integer capacity.
    alpha, beta:
        Penalty weights of the one-hot encoding (paper default: 2).  The
        binary encoding only uses ``beta``.
    encoding:
        :class:`SlackEncoding.ONE_HOT` reproduces the paper's baseline;
        :class:`SlackEncoding.BINARY` is the log-slack ablation.

    Returns
    -------
    DQUBOTransformation
        The combined QUBO and bookkeeping needed to decode solutions.
    """
    if constraint.num_variables != objective.num_variables:
        raise ValueError("constraint arity must match objective dimension")
    capacity = constraint.bound
    if capacity <= 0 or abs(capacity - round(capacity)) > 1e-9:
        raise ValueError("D-QUBO slack encodings require a positive integer capacity")
    capacity = int(round(capacity))
    weights = constraint.weight_vector
    n = objective.num_variables

    if encoding is SlackEncoding.ONE_HOT:
        m = _one_hot_slack_size(capacity)
        slack_values = np.arange(1, m + 1, dtype=float)
    elif encoding is SlackEncoding.BINARY:
        m = _binary_slack_size(capacity)
        slack_values = np.array([2.0 ** j for j in range(m)])
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown encoding {encoding!r}")

    total = n + m
    q = np.zeros((total, total))
    offset = 0.0

    # Embed the original objective in the top-left block.
    q[:n, :n] += objective.matrix
    offset += objective.offset

    if encoding is SlackEncoding.ONE_HOT:
        # alpha * (1 - sum_k y_k)^2
        #   = alpha * (1 - 2 sum_k y_k + sum_k y_k + 2 sum_{k<l} y_k y_l)
        offset += alpha
        for k in range(m):
            q[n + k, n + k] += alpha * (-2.0 + 1.0)
            for l in range(k + 1, m):
                q[n + k, n + l] += 2.0 * alpha
        # beta * (sum_i w_i x_i - sum_k k y_k)^2
        # Expand with binary idempotence (z^2 == z on the diagonal terms).
        #   = beta * [ sum_i w_i^2 x_i + 2 sum_{i<j} w_i w_j x_i x_j
        #            + sum_k k^2 y_k + 2 sum_{k<l} k l y_k y_l
        #            - 2 sum_{i,k} w_i k x_i y_k ]
        for i in range(n):
            q[i, i] += beta * weights[i] ** 2
            for j in range(i + 1, n):
                q[i, j] += 2.0 * beta * weights[i] * weights[j]
        for k in range(m):
            q[n + k, n + k] += beta * slack_values[k] ** 2
            for l in range(k + 1, m):
                q[n + k, n + l] += 2.0 * beta * slack_values[k] * slack_values[l]
        for i in range(n):
            for k in range(m):
                q[i, n + k] += -2.0 * beta * weights[i] * slack_values[k]
    else:
        # beta * (w.x + sum_j 2^j s_j - C)^2
        combined = np.concatenate([weights, slack_values])
        for a in range(total):
            q[a, a] += beta * (combined[a] ** 2 - 2.0 * capacity * combined[a])
            for b in range(a + 1, total):
                q[a, b] += 2.0 * beta * combined[a] * combined[b]
        offset += beta * capacity ** 2

    combined_qubo = QUBOModel(q, offset=offset)
    return DQUBOTransformation(
        qubo=combined_qubo,
        num_problem_variables=n,
        num_auxiliary_variables=m,
        encoding=encoding,
        alpha=alpha,
        beta=beta,
        constraint=constraint,
    )

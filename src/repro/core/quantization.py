"""Quantization / search-space analysis for crossbar mapping (paper Fig. 9).

When a QUBO matrix is mapped onto a bit-sliced CiM crossbar, the number of
bit planes needed per element is ``ceil(log2 (Q_ij)_MAX)`` (paper Sec. 4.2).
D-QUBO's penalty terms inflate ``(Q_ij)_MAX`` to ``1e4 .. 1e7`` (16-25 bits),
whereas HyCiM keeps the raw problem coefficients (<= 100 for the QKP
benchmark, 7 bits).  This module computes those quantities plus the derived
search-space and hardware-size figures used in the Fig. 9 reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from repro.core.dqubo import DQUBOTransformation
from repro.core.qubo import QUBOModel
from repro.core.transformation import InequalityQUBO

QuantizableModel = Union[QUBOModel, InequalityQUBO, DQUBOTransformation]


def _extract_qubo(model: QuantizableModel) -> QUBOModel:
    """Return the underlying QUBO matrix of any supported model type."""
    if isinstance(model, QUBOModel):
        return model
    if isinstance(model, (InequalityQUBO, DQUBOTransformation)):
        return model.qubo
    raise TypeError(f"unsupported model type {type(model).__name__}")


def matrix_bit_width(model: QuantizableModel) -> int:
    """Bits per matrix element: ``ceil(log2 (Q_ij)_MAX)``, minimum 1.

    The paper quantises magnitudes only (sign handled by the peripheral
    add/shift logic), so the bit width is driven by the largest absolute
    coefficient.
    """
    qubo = _extract_qubo(model)
    q_max = qubo.max_abs_coefficient
    if q_max <= 1.0:
        return 1
    return int(math.ceil(math.log2(q_max)))


def search_space_bits(model: QuantizableModel) -> int:
    """``log2`` of the search-space size (the QUBO dimension ``n``)."""
    qubo = _extract_qubo(model)
    return qubo.num_variables


@dataclass(frozen=True)
class QuantizationReport:
    """Per-model quantization summary used by the hardware cost model.

    Attributes
    ----------
    num_variables:
        QUBO matrix dimension ``n`` (Fig. 9(b)).
    max_abs_coefficient:
        ``(Q_ij)_MAX`` (Fig. 9(a)).
    bits_per_element:
        ``ceil(log2 (Q_ij)_MAX)`` -- crossbar bit planes per element.
    crossbar_cells:
        Total 1-bit cells required for the matrix: ``n * n * bits``.
    search_space_bits:
        ``log2`` of the number of candidate configurations.
    """

    num_variables: int
    max_abs_coefficient: float
    bits_per_element: int
    crossbar_cells: int
    search_space_bits: int

    def bit_reduction_vs(self, other: "QuantizationReport") -> float:
        """Fractional reduction in per-element bits relative to ``other``.

        Fig. 9(a) reports 56-72% reduction of HyCiM vs D-QUBO; this helper
        computes ``1 - self.bits / other.bits``.
        """
        if other.bits_per_element == 0:
            return 0.0
        return 1.0 - self.bits_per_element / other.bits_per_element

    def search_space_reduction_bits_vs(self, other: "QuantizationReport") -> int:
        """How many powers of two smaller this model's search space is."""
        return other.search_space_bits - self.search_space_bits


def quantization_report(model: QuantizableModel) -> QuantizationReport:
    """Build a :class:`QuantizationReport` for a QUBO-like model."""
    qubo = _extract_qubo(model)
    n = qubo.num_variables
    bits = matrix_bit_width(model)
    return QuantizationReport(
        num_variables=n,
        max_abs_coefficient=qubo.max_abs_coefficient,
        bits_per_element=bits,
        crossbar_cells=n * n * bits,
        search_space_bits=search_space_bits(model),
    )

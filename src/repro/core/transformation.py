"""The HyCiM inequality-QUBO transformation (paper Sec. 3.2).

Instead of absorbing an inequality constraint ``w . x <= C`` into the QUBO
objective with slack variables and penalty weights (the D-QUBO route,
:mod:`repro.core.dqubo`), the paper keeps the constraint *outside* the QUBO
and defines the objective

    E(x) = [ w . x <= C ] * x^T Q x              (paper Eq. (6))

where ``[.]`` is the Iverson bracket.  ``Q`` is constructed so that
``x^T Q x`` is non-positive for every feasible ``x`` (for QKP,
``q_ij = -p_ij``), hence ``E`` is non-positive, the infeasible region is flat
at ``E = 0`` and the feasible region carries the (negated) problem profit.

The search space of the QUBO stays ``2^n`` (no auxiliary variables), and the
feasibility check is delegated to the CiM inequality filter at solve time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.constraints import InequalityConstraint, LinearConstraint
from repro.core.qubo import QUBOModel


@dataclass
class InequalityQUBO:
    """An inequality-QUBO objective: a QUBO plus detached constraints.

    This is the object the HyCiM solver consumes: the :attr:`qubo` part is
    mapped to the CiM crossbar, each constraint in :attr:`constraints` is
    mapped to its own CiM inequality filter.
    """

    qubo: QUBOModel
    constraints: Tuple[LinearConstraint, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.constraints = tuple(self.constraints)
        for constraint in self.constraints:
            if constraint.num_variables != self.qubo.num_variables:
                raise ValueError(
                    "constraint arity "
                    f"{constraint.num_variables} != QUBO dimension {self.qubo.num_variables}"
                )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        """Search-space dimension ``n`` (unchanged by the transformation)."""
        return self.qubo.num_variables

    @property
    def num_constraints(self) -> int:
        """Number of detached inequality/equality constraints."""
        return len(self.constraints)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def is_feasible(self, x: Iterable[float]) -> bool:
        """Whether ``x`` satisfies every detached constraint."""
        vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        return all(constraint.is_satisfied(vec) for constraint in self.constraints)

    def energy(self, x: Iterable[float]) -> float:
        """Paper Eq. (6): ``[feasible] * x^T Q x``.

        Infeasible configurations evaluate to exactly ``0`` -- they neither
        help nor hurt, which is what allows the filter to simply skip them.
        """
        vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
        if not self.is_feasible(vec):
            return 0.0
        return self.qubo.energy(vec)

    def qubo_energy(self, x: Iterable[float]) -> float:
        """Raw QUBO value ``x^T Q x`` ignoring constraints (crossbar output)."""
        return self.qubo.energy(x)

    def energies(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised Eq. (6) evaluation over a ``(k, n)`` batch."""
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        raw = self.qubo.energies(batch)
        feasible = np.ones(batch.shape[0], dtype=bool)
        for constraint in self.constraints:
            lhs = batch @ constraint.weight_vector
            if isinstance(constraint, InequalityConstraint):
                feasible &= lhs <= constraint.bound + 1e-9
            else:
                feasible &= np.abs(lhs - constraint.bound) <= 1e-9
        return np.where(feasible, raw, 0.0)

    def brute_force_minimum(self) -> Tuple[np.ndarray, float]:
        """Exhaustive minimisation of Eq. (6) (``n <= 24``)."""
        n = self.num_variables
        if n > 24:
            raise ValueError("brute_force_minimum limited to n <= 24")
        best_energy = np.inf
        best_x = np.zeros(n)
        for bits in range(1 << n):
            x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
            e = self.energy(x)
            if e < best_energy:
                best_energy = e
                best_x = x
        return best_x, float(best_energy)

    # ------------------------------------------------------------------ #
    # Search-space accounting (used by Fig. 9 reproduction)
    # ------------------------------------------------------------------ #
    def search_space_bits(self) -> int:
        """``log2`` of the search-space size: just ``n`` for inequality-QUBO."""
        return self.num_variables

    def count_feasible(self, limit_bits: int = 24) -> int:
        """Exhaustively count feasible configurations (small instances only)."""
        n = self.num_variables
        if n > limit_bits:
            raise ValueError(f"count_feasible limited to n <= {limit_bits}")
        count = 0
        for bits in range(1 << n):
            x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
            if self.is_feasible(x):
                count += 1
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InequalityQUBO(n={self.num_variables}, constraints={self.num_constraints}, "
            f"max|Q|={self.qubo.max_abs_coefficient:.3g})"
        )


def to_inequality_qubo(
    profit_matrix: np.ndarray,
    constraints: Sequence[LinearConstraint] | LinearConstraint,
    maximize: bool = True,
) -> InequalityQUBO:
    """Build an inequality-QUBO form from a (quadratic) profit matrix.

    Parameters
    ----------
    profit_matrix:
        Symmetric profit matrix ``p`` of the COP.  For QKP, ``p_ii`` is the
        individual profit of item ``i`` and ``p_ij`` the pairwise profit.
    constraints:
        One or more detached linear constraints over the same variables.
    maximize:
        When ``True`` (the default, matching QKP), the QUBO matrix is set to
        ``Q = -p`` so that minimising ``x^T Q x`` maximises total profit
        (paper Eq. (5) with ``p_ij = -q_ij``).

    Returns
    -------
    InequalityQUBO
        The paper's Eq. (6) objective.
    """
    p = np.asarray(profit_matrix, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError(f"profit matrix must be square, got shape {p.shape}")
    if not np.allclose(p, p.T):
        raise ValueError("profit matrix must be symmetric (p_ij == p_ji)")
    q = -p if maximize else p.copy()
    qubo = QUBOModel(q)
    constraint_list: List[LinearConstraint]
    if isinstance(constraints, LinearConstraint):
        constraint_list = [constraints]
    else:
        constraint_list = list(constraints)
    return InequalityQUBO(qubo=qubo, constraints=tuple(constraint_list))

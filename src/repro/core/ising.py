"""Ising Hamiltonian model and lossless QUBO conversion.

The paper's Eq. (1) defines the Ising Hamiltonian

    H(sigma) = sum_{i,j} J_ij sigma_i sigma_j + sum_i h_i sigma_i,

with spins ``sigma_i in {-1, +1}``.  Applying the variable change
``sigma_i = 1 - 2 x_i`` (``x_i in {0, 1}``) maps it to an equivalent QUBO
form up to a constant offset; both directions are implemented here and are
exact (tested as a round-trip property).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

import numpy as np

from repro.core.qubo import QUBOModel


def _as_spin_vector(sigma: Iterable[float], n: int) -> np.ndarray:
    vec = np.asarray(list(sigma) if not isinstance(sigma, np.ndarray) else sigma, dtype=float)
    if vec.ndim != 1 or vec.shape[0] != n:
        raise ValueError(f"expected a spin vector of length {n}, got shape {vec.shape}")
    if not np.all(np.isin(vec, (-1.0, 1.0))):
        raise ValueError("Ising inputs must be +/-1 spin vectors")
    return vec


@dataclass
class IsingModel:
    """Ising Hamiltonian with couplings ``J`` and fields ``h``.

    ``couplings`` is stored upper-triangular with a zero diagonal (a constant
    ``J_ii sigma_i^2 = J_ii`` is folded into :attr:`offset`).
    """

    couplings: np.ndarray
    fields: np.ndarray
    offset: float = 0.0
    spin_names: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        j = np.asarray(self.couplings, dtype=float)
        h = np.asarray(self.fields, dtype=float)
        if j.ndim != 2 or j.shape[0] != j.shape[1]:
            raise ValueError(f"coupling matrix must be square, got {j.shape}")
        if h.ndim != 1 or h.shape[0] != j.shape[0]:
            raise ValueError("field vector length must match coupling dimension")
        # sigma_i^2 == 1, so diagonal couplings are constants.
        self.offset = float(self.offset + np.trace(j))
        folded = np.triu(j, k=1) + np.triu(j.T, k=1)
        self.couplings = folded
        self.fields = h
        if not self.spin_names:
            self.spin_names = tuple(f"s{i}" for i in range(j.shape[0]))

    @property
    def num_spins(self) -> int:
        """Number of spins ``N``."""
        return self.fields.shape[0]

    def energy(self, sigma: Iterable[float]) -> float:
        """Hamiltonian value for a +/-1 spin configuration."""
        vec = _as_spin_vector(sigma, self.num_spins)
        return float(vec @ self.couplings @ vec + self.fields @ vec) + self.offset

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to_qubo(self) -> QUBOModel:
        """Convert to an equivalent QUBO via ``sigma_i = 1 - 2 x_i``.

        The resulting QUBO satisfies ``qubo.energy(x) == ising.energy(1-2x)``
        exactly for every binary ``x``.
        """
        n = self.num_spins
        j = self.couplings
        h = self.fields
        q = np.zeros((n, n))
        offset = self.offset
        # sigma_i sigma_j = (1-2x_i)(1-2x_j) = 1 - 2x_i - 2x_j + 4x_i x_j
        for i in range(n):
            for k in range(i + 1, n):
                coeff = j[i, k]
                if coeff == 0.0:
                    continue
                q[i, k] += 4 * coeff
                q[i, i] += -2 * coeff
                q[k, k] += -2 * coeff
                offset += coeff
        # sigma_i = 1 - 2 x_i
        for i in range(n):
            q[i, i] += -2 * h[i]
            offset += h[i]
        return QUBOModel(q, offset=offset)

    @classmethod
    def from_qubo(cls, qubo: QUBOModel) -> "IsingModel":
        """Convert a QUBO to an equivalent Ising model (``x_i = (1-sigma_i)/2``)."""
        n = qubo.num_variables
        q = qubo.matrix
        j = np.zeros((n, n))
        h = np.zeros(n)
        offset = qubo.offset
        # x_i x_j = (1-sigma_i)(1-sigma_j)/4
        for i in range(n):
            for k in range(i + 1, n):
                coeff = q[i, k]
                if coeff == 0.0:
                    continue
                j[i, k] += coeff / 4.0
                h[i] += -coeff / 4.0
                h[k] += -coeff / 4.0
                offset += coeff / 4.0
        # x_i = (1 - sigma_i)/2
        for i in range(n):
            coeff = q[i, i]
            h[i] += -coeff / 2.0
            offset += coeff / 2.0
        return cls(j, h, offset=offset)

    def brute_force_minimum(self) -> Tuple[np.ndarray, float]:
        """Exhaustive ground-state search (``N <= 24``)."""
        n = self.num_spins
        if n > 24:
            raise ValueError("brute_force_minimum limited to N <= 24")
        best_energy = np.inf
        best = np.ones(n)
        for bits in range(1 << n):
            sigma = np.array([1.0 if (bits >> k) & 1 else -1.0 for k in range(n)])
            e = self.energy(sigma)
            if e < best_energy:
                best_energy = e
                best = sigma
        return best, float(best_energy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IsingModel(N={self.num_spins}, offset={self.offset:.3g})"

"""Sparse (CSR) QUBO models for instances whose dense matrix does not fit.

:class:`SparseQUBOModel` mirrors the :class:`~repro.core.qubo.QUBOModel`
surface the annealing stack actually touches -- ``matrix`` / ``offset`` /
``num_variables`` plus ``energy``/``energies`` -- with the coefficient
matrix held as a SciPy CSR array in the same upper-triangular convention
(diagonal = linear terms, strict upper triangle = pairwise couplings).
The batched kernels (:mod:`repro.batched.kernels`) and the sweep kernels
(:mod:`repro.kernels`) detect the CSR payload by duck-typing, so a sparse
model flows through the engines unchanged: energies via scipy's
dense-times-CSR product, single-flip deltas via CSR row gathers at
O(degree) per flip.

SciPy is an *optional* dependency (the ``sparse`` extra): importing this
module without it raises a clear error at first use, and nothing else in
the package imports it at module scope.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.core.qubo import QUBOModel, _as_binary_vector

try:  # SciPy is optional; everything else in repro runs without it.
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - exercised on scipy-less installs
    _sparse = None

__all__ = ["SparseQUBOModel", "have_scipy", "is_sparse_matrix",
           "symmetrized_matrix"]


def have_scipy() -> bool:
    """Whether the optional SciPy dependency is importable."""
    return _sparse is not None


def is_sparse_matrix(matrix) -> bool:
    """True for SciPy sparse payloads (duck-typed, no scipy import needed)."""
    return hasattr(matrix, "tocsr")


def symmetrized_matrix(matrix):
    """``Q + Q^T`` in the same storage family as ``Q`` (dense or CSR).

    The symmetrized matrix is what the delta kernels gather rows from; CSR
    input yields CSR output so a sparse model never densifies.
    """
    symmetric = matrix + matrix.T
    if is_sparse_matrix(symmetric):
        return symmetric.tocsr()
    return symmetric


def _require_scipy():
    if _sparse is None:
        raise ImportError(
            "SparseQUBOModel needs SciPy (install the 'sparse' extra: "
            "pip install repro[sparse])")
    return _sparse


class SparseQUBOModel:
    """``min_x x^T Q x + offset`` with ``Q`` stored as an upper-triangular CSR.

    Parameters
    ----------
    matrix:
        Any SciPy sparse matrix/array (or anything ``csr_array`` accepts).
        Folded to the repository's upper-triangular convention exactly as
        :class:`QUBOModel` folds dense input, so the two models evaluate
        identically for binary configurations.
    offset:
        Constant added to every evaluation.
    """

    def __init__(self, matrix, offset: float = 0.0) -> None:
        sp = _require_scipy()
        q = sp.csr_array(matrix, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError(f"QUBO matrix must be square, got shape {q.shape}")
        upper = (sp.triu(q) + sp.triu(q.T, k=1)).tocsr()
        upper.eliminate_zeros()
        upper.sum_duplicates()
        self.matrix = sp.csr_array(upper)
        self.offset = float(offset)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, model: QUBOModel) -> "SparseQUBOModel":
        """Sparse view of an existing dense model (values preserved exactly)."""
        return cls(model.matrix, offset=model.offset)

    @classmethod
    def from_coo(cls, rows: Iterable[int], cols: Iterable[int],
                 values: Iterable[float], num_variables: int,
                 offset: float = 0.0) -> "SparseQUBOModel":
        """Build directly from coordinate triplets (no dense intermediate).

        Duplicate ``(i, j)`` entries accumulate, and ``(j, i)`` folds onto
        ``(i, j)``, matching :meth:`QUBOModel.from_dict`.
        """
        sp = _require_scipy()
        n = int(num_variables)
        coo = sp.coo_array(
            (np.asarray(list(values), dtype=float),
             (np.asarray(list(rows), dtype=np.int64),
              np.asarray(list(cols), dtype=np.int64))),
            shape=(n, n))
        return cls(coo, offset=offset)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        return self.matrix.shape[0]

    @property
    def nnz(self) -> int:
        """Stored coefficients (upper triangle incl. diagonal)."""
        return int(self.matrix.nnz)

    @property
    def density(self) -> float:
        """Fraction of non-zero entries in the upper triangle (incl. diagonal)."""
        n = self.num_variables
        if n == 0:
            return 0.0
        return self.nnz / (n * (n + 1) // 2)

    # ------------------------------------------------------------------ #
    # Evaluation (parity surface with QUBOModel)
    # ------------------------------------------------------------------ #
    def energy(self, x: Iterable[float]) -> float:
        """Evaluate ``x^T Q x + offset`` for a binary configuration ``x``."""
        vec = _as_binary_vector(x, self.num_variables)
        return float(vec @ (self.matrix @ vec)) + self.offset

    def energies(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised evaluation of a ``(k, n)`` batch of binary rows."""
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.shape[1] != self.num_variables:
            raise ValueError(
                f"configurations have {batch.shape[1]} columns, expected "
                f"{self.num_variables}")
        product = np.asarray(batch @ self.matrix)
        return (product * batch).sum(axis=1) + self.offset

    def to_dense(self) -> QUBOModel:
        """Densify into an equivalent :class:`QUBOModel` (small ``n`` only)."""
        return QUBOModel(self.matrix.toarray(), offset=self.offset)

    def brute_force_minimum(self) -> Tuple[np.ndarray, float]:
        """Exhaustive minimisation via the dense view (``n <= 24``)."""
        return self.to_dense().brute_force_minimum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SparseQUBOModel(n={self.num_variables}, nnz={self.nnz}, "
                f"offset={self.offset:.3g})")

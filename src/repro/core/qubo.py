"""Quadratic Unconstrained Binary Optimization (QUBO) model.

A QUBO instance is ``min_x  x^T Q x`` with ``x`` a binary vector
(paper Eq. (2)).  The matrix convention used throughout this repository is the
*upper-triangular* convention: the diagonal holds linear coefficients
(``x_i^2 == x_i`` for binary variables) and the strict upper triangle holds
pairwise couplings.  Helper constructors accept symmetric matrices or
coefficient dictionaries and normalise them.

The class is deliberately light-weight -- a thin wrapper around a NumPy array
-- because the annealers and the CiM crossbar simulator operate directly on
the dense matrix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Mapping, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, Iterable[Iterable[float]]]
CoefficientKey = Tuple[int, int]


def _as_binary_vector(x: Iterable[float], n: int) -> np.ndarray:
    """Validate and coerce ``x`` into a length-``n`` binary vector."""
    vec = np.asarray(list(x) if not isinstance(x, np.ndarray) else x, dtype=float)
    if vec.ndim != 1 or vec.shape[0] != n:
        raise ValueError(f"expected a binary vector of length {n}, got shape {vec.shape}")
    if not np.all((vec == 0) | (vec == 1)):
        raise ValueError("QUBO inputs must be binary (0/1) vectors")
    return vec


@dataclass
class QUBOModel:
    """A QUBO objective ``f(x) = x^T Q x`` over binary variables.

    Parameters
    ----------
    matrix:
        Square coefficient matrix.  Stored internally in upper-triangular
        form; symmetric input matrices are folded (``Q[i,j] + Q[j,i]`` into
        the upper triangle) so that ``x^T Q_upper x == x^T Q_sym x`` for
        binary ``x``.
    offset:
        Constant added to every evaluation.  Penalty constructions and
        problem-to-QUBO conversions use it to keep objective values aligned
        with the original problem.
    variable_names:
        Optional human readable names (defaults to ``x0..x{n-1}``).
    """

    matrix: np.ndarray
    offset: float = 0.0
    variable_names: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        q = np.asarray(self.matrix, dtype=float)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ValueError(f"QUBO matrix must be square, got shape {q.shape}")
        # Fold to upper triangular: for binary x, x^T Q x only depends on
        # Q[i,j] + Q[j,i] for i != j and on Q[i,i].
        upper = np.triu(q) + np.triu(q.T, k=1)
        self.matrix = upper
        if not self.variable_names:
            self.variable_names = tuple(f"x{i}" for i in range(q.shape[0]))
        elif len(self.variable_names) != q.shape[0]:
            raise ValueError("variable_names length must match matrix dimension")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        coefficients: Mapping[CoefficientKey, float],
        num_variables: int | None = None,
        offset: float = 0.0,
    ) -> "QUBOModel":
        """Build a model from a ``{(i, j): value}`` coefficient mapping.

        Both ``(i, j)`` and ``(j, i)`` keys are accepted and accumulated into
        the upper triangle.  ``num_variables`` may be given explicitly when
        trailing variables have no coefficients.
        """
        if not coefficients and num_variables is None:
            raise ValueError("empty coefficient dict requires explicit num_variables")
        max_index = max((max(i, j) for i, j in coefficients), default=-1)
        if num_variables is not None and max_index >= num_variables:
            raise IndexError(
                f"coefficient index {max_index} out of range for num_variables={num_variables}"
            )
        n = max(max_index + 1, num_variables or 0)
        q = np.zeros((n, n), dtype=float)
        for (i, j), value in coefficients.items():
            if i < 0 or j < 0 or i >= n or j >= n:
                raise IndexError(f"coefficient index ({i}, {j}) out of range for n={n}")
            row, col = (i, j) if i <= j else (j, i)
            q[row, col] += value
        return cls(q, offset=offset)

    @classmethod
    def zeros(cls, num_variables: int) -> "QUBOModel":
        """An all-zero QUBO over ``num_variables`` variables."""
        return cls(np.zeros((num_variables, num_variables)))

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_variables(self) -> int:
        """Dimension ``n`` of the binary variable vector."""
        return self.matrix.shape[0]

    @property
    def linear(self) -> np.ndarray:
        """Diagonal (linear) coefficients."""
        return np.diag(self.matrix).copy()

    @property
    def quadratic(self) -> np.ndarray:
        """Strict upper-triangular (pairwise) coefficients."""
        return np.triu(self.matrix, k=1)

    @property
    def max_abs_coefficient(self) -> float:
        """``(Q_ij)_MAX`` -- the largest absolute matrix element (Fig. 9(a))."""
        if self.num_variables == 0:
            return 0.0
        return float(np.max(np.abs(self.matrix)))

    @property
    def density(self) -> float:
        """Fraction of non-zero entries in the upper triangle (incl. diagonal)."""
        n = self.num_variables
        if n == 0:
            return 0.0
        slots = n * (n + 1) // 2
        nonzero = int(np.count_nonzero(np.triu(self.matrix)))
        return nonzero / slots

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def energy(self, x: Iterable[float]) -> float:
        """Evaluate ``x^T Q x + offset`` for a binary configuration ``x``."""
        vec = _as_binary_vector(x, self.num_variables)
        return float(vec @ self.matrix @ vec) + self.offset

    def energies(self, configurations: np.ndarray) -> np.ndarray:
        """Vectorised evaluation of a ``(k, n)`` batch of binary rows."""
        batch = np.asarray(configurations, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.shape[1] != self.num_variables:
            raise ValueError(
                f"configurations have {batch.shape[1]} columns, expected {self.num_variables}"
            )
        return np.einsum("ki,ij,kj->k", batch, self.matrix, batch) + self.offset

    def energy_delta(self, x: np.ndarray, flip_index: int) -> float:
        """Energy change from flipping bit ``flip_index`` of configuration ``x``.

        Computed in O(n) without re-evaluating the full quadratic form; this
        is the inner loop of every software annealer in the repository.
        """
        vec = _as_binary_vector(x, self.num_variables)
        i = int(flip_index)
        if not 0 <= i < self.num_variables:
            raise IndexError(f"flip index {i} out of range")
        # Contribution of variable i to the energy given the rest of x:
        # diag term + couplings to the other set bits (upper triangle holds
        # the full pairwise coefficient).
        coupling = self.matrix[i, :] @ vec + self.matrix[:, i] @ vec - 2 * self.matrix[i, i] * vec[i]
        linear = self.matrix[i, i]
        current_contrib = vec[i] * (linear + coupling)
        flipped = 1.0 - vec[i]
        new_contrib = flipped * (linear + coupling)
        return float(new_contrib - current_contrib)

    def brute_force_minimum(self) -> Tuple[np.ndarray, float]:
        """Exhaustively minimise the QUBO (only sensible for small ``n``).

        Returns the optimal binary vector and its energy.  Raises for
        ``n > 24`` to avoid accidental exponential blow-ups in tests.
        """
        n = self.num_variables
        if n > 24:
            raise ValueError("brute_force_minimum limited to n <= 24")
        best_energy = np.inf
        best_x = np.zeros(n)
        for bits in range(1 << n):
            x = np.array([(bits >> k) & 1 for k in range(n)], dtype=float)
            e = self.energy(x)
            if e < best_energy:
                best_energy = e
                best_x = x
        return best_x, float(best_energy)

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def scaled(self, factor: float) -> "QUBOModel":
        """Return a new model with all coefficients (and offset) scaled."""
        return QUBOModel(self.matrix * factor, offset=self.offset * factor,
                         variable_names=self.variable_names)

    def __add__(self, other: "QUBOModel") -> "QUBOModel":
        if not isinstance(other, QUBOModel):
            return NotImplemented
        if other.num_variables != self.num_variables:
            raise ValueError("cannot add QUBO models of different dimensions")
        return QUBOModel(self.matrix + other.matrix, offset=self.offset + other.offset,
                         variable_names=self.variable_names)

    def embedded(self, total_variables: int, start: int = 0) -> "QUBOModel":
        """Embed this model into a larger variable space.

        The model's variables are mapped to indices ``start .. start+n-1`` of
        a ``total_variables``-dimensional QUBO whose other coefficients are
        zero.  Used by the D-QUBO construction to combine objective and
        penalty blocks.
        """
        n = self.num_variables
        if start < 0 or start + n > total_variables:
            raise ValueError("embedding window out of range")
        q = np.zeros((total_variables, total_variables))
        q[start:start + n, start:start + n] = self.matrix
        return QUBOModel(q, offset=self.offset)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        coeffs = {}
        n = self.num_variables
        for i in range(n):
            for j in range(i, n):
                if self.matrix[i, j] != 0.0:
                    coeffs[f"{i},{j}"] = float(self.matrix[i, j])
        return {
            "num_variables": n,
            "offset": self.offset,
            "coefficients": coeffs,
            "variable_names": list(self.variable_names),
        }

    @classmethod
    def from_serialized(cls, payload: Mapping[str, object]) -> "QUBOModel":
        """Inverse of :meth:`to_dict`."""
        n = int(payload["num_variables"])
        coeffs: Dict[Tuple[int, int], float] = {}
        for key, value in dict(payload.get("coefficients", {})).items():
            i_str, j_str = key.split(",")
            coeffs[(int(i_str), int(j_str))] = float(value)
        model = cls.from_dict(coeffs, num_variables=n, offset=float(payload.get("offset", 0.0)))
        names = payload.get("variable_names")
        if names:
            model.variable_names = tuple(str(name) for name in names)
        return model

    def save(self, path: Union[str, Path]) -> None:
        """Write the model to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "QUBOModel":
        """Read a model previously written by :meth:`save`."""
        return cls.from_serialized(json.loads(Path(path).read_text()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QUBOModel(n={self.num_variables}, density={self.density:.2f}, "
            f"max|Q|={self.max_abs_coefficient:.3g}, offset={self.offset:.3g})"
        )

"""Domain scenario: cargo loading with synergy profits (logistics).

The paper's introduction motivates COPs with inequality constraints through
logistics and resource-allocation applications.  This example models a cargo
van with a weight limit and a set of delivery orders.  Each order has an
individual revenue and *pairwise* synergy revenues (orders for the same
neighbourhood share a trip), which makes the problem a quadratic knapsack:

    maximise   sum_i revenue_i x_i + sum_{i<j} synergy_ij x_i x_j
    subject to sum_i weight_i x_i <= payload limit

The script builds the instance from named orders, solves it with HyCiM and
prints the chosen manifest, then compares against the greedy dispatcher rule.

Run with:  python examples/logistics_loading.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.exact import solve_qkp_greedy
from repro.problems import QuadraticKnapsackProblem
from repro.runtime import run_trials

# Order name, weight (kg), standalone revenue.
ORDERS = [
    ("machine-parts-A", 180, 420),
    ("machine-parts-B", 160, 380),
    ("fresh-produce", 120, 300),
    ("bakery-retail", 60, 150),
    ("pharmacy-north", 40, 220),
    ("pharmacy-south", 45, 210),
    ("furniture-flatpack", 230, 510),
    ("electronics-hub", 90, 340),
    ("garden-center", 140, 260),
    ("office-supplies", 70, 180),
    ("catering-event", 110, 330),
    ("bookstore", 50, 120),
]

# Pairs of orders that share a district: delivering both in one trip earns a
# synergy bonus (same driver, one detour saved).
SYNERGIES = {
    ("machine-parts-A", "machine-parts-B"): 160,
    ("pharmacy-north", "pharmacy-south"): 120,
    ("fresh-produce", "bakery-retail"): 90,
    ("electronics-hub", "office-supplies"): 70,
    ("catering-event", "bakery-retail"): 60,
    ("furniture-flatpack", "garden-center"): 80,
    ("bookstore", "office-supplies"): 40,
}

PAYLOAD_LIMIT_KG = 800


def build_problem() -> QuadraticKnapsackProblem:
    names = [name for name, _, _ in ORDERS]
    index = {name: i for i, name in enumerate(names)}
    n = len(ORDERS)
    profits = np.zeros((n, n))
    weights = np.zeros(n)
    for i, (_, weight, revenue) in enumerate(ORDERS):
        profits[i, i] = revenue
        weights[i] = weight
    for (a, b), bonus in SYNERGIES.items():
        i, j = index[a], index[b]
        profits[i, j] = bonus
        profits[j, i] = bonus
    return QuadraticKnapsackProblem(profits=profits, weights=weights,
                                    capacity=PAYLOAD_LIMIT_KG, name="van-loading")


def describe(problem: QuadraticKnapsackProblem, selection: np.ndarray,
             label: str) -> None:
    names = [name for name, _, _ in ORDERS]
    chosen = [names[i] for i in range(len(names)) if selection[i] == 1]
    print(f"\n{label}")
    print(f"  revenue: {problem.objective(selection):.0f}")
    print(f"  payload: {problem.total_weight(selection):.0f} / {problem.capacity:.0f} kg")
    print(f"  manifest ({len(chosen)} orders): {', '.join(chosen)}")


def main() -> None:
    problem = build_problem()
    print(f"Cargo-loading QKP: {problem.num_items} orders, "
          f"payload limit {problem.capacity:.0f} kg")

    # Dispatcher baseline: greedy best revenue-per-kg.
    greedy = solve_qkp_greedy(problem)
    describe(problem, greedy.configuration, "Greedy dispatcher rule")

    # HyCiM with the simulated FeFET filter and crossbar: a small batch of
    # independent trials through the parallel runtime, each starting from the
    # empty van (the erased-chip state), best plan wins.
    batch = run_trials(
        problem,
        solver="hycim",
        num_trials=4,
        params={
            "use_hardware": True,
            "num_iterations": 120,
            "moves_per_iteration": problem.num_items,
            "move_generator": "knapsack",
            "schedule": {"kind": "geometric",
                         "start_temperature": 5000.0, "end_temperature": 5.0},
            "initial": "zeros",
        },
        backend="serial",   # "process" fans the trials out over all cores
        master_seed=3,
    )
    result = batch.best_result
    describe(problem, result.best_configuration, "HyCiM loading plan")

    improvement = result.best_objective - greedy.value
    print(f"\nHyCiM improvement over the greedy rule: {improvement:+.0f} revenue "
          f"({improvement / greedy.value * 100:+.1f}%)")
    print(f"Infeasible loadings filtered before any QUBO computation: "
          f"{result.num_infeasible_skipped}")


if __name__ == "__main__":
    main()

"""Monte-Carlo over simulated chips: the paper's device-variability study.

Fig. 2(b) of the paper measures 60 FeFET devices and finds the threshold
voltage of every programmed level spread by tens of millivolts -- the
non-ideality the 1FeFET1R clamp is designed around.  End to end, that spread
matters through the inequality filter: a chip whose cells mis-count marginal
weights makes wrong feasibility calls near the capacity boundary, which
dents the solver's success rate.

This demo quantifies that effect the way a chip characterisation lab would:
sample a population of chips, run the full HyCiM pipeline on every chip, and
report the spread.  Each trial is one freshly sampled chip occupying one
slice of the hardware stack's device axis (ARCHITECTURE.md), so the whole
population anneals in lock-step on the vectorized backend -- per-seed
identical to rebuilding scalar hardware chip by chip, several times faster.

The study sweeps the threshold spread and reports, per sigma:

1. the success rate over the chip population (fraction of chips reaching
   95% of the best-known value);
2. the population mean of the normalised solution value;
3. the worst chip (the yield question: how bad is the tail?).

Run with:  python examples/variability_study.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis.reporting import format_table
from repro.exact.local_search import reference_qkp_value
from repro.problems.generators import generate_qkp_instance
from repro.runtime import run_trials

NUM_CHIPS = 24
MASTER_SEED = 17
THRESHOLD_SIGMAS = (0.0, 0.01, 0.03, 0.08)


def main() -> None:
    problem = generate_qkp_instance(num_items=40, density=0.5, max_weight=12,
                                    seed=23, name="variability-demo")
    reference = reference_qkp_value(problem, seed=MASTER_SEED)
    print(f"Instance: {problem}")
    print(f"Monte-Carlo over {NUM_CHIPS} simulated chips per sigma, "
          f"reference value {reference:.0f}\n")

    rows = []
    all_batched = True
    for sigma in THRESHOLD_SIGMAS:
        batch = run_trials(
            problem,
            solver="hycim",
            num_trials=NUM_CHIPS,
            params={
                "num_iterations": 60,
                "moves_per_iteration": 10,
                "move_generator": "knapsack",
                "use_hardware": True,
                "variability": {"threshold_sigma": float(sigma),
                                "on_current_sigma": 0.15},
            },
            backend="vectorized",
            master_seed=MASTER_SEED,
        )
        all_batched &= all(r.metadata.get("vectorized")
                           and r.metadata.get("num_chips") == NUM_CHIPS
                           for r in batch.results)
        values = np.array([r.best_objective or 0.0 for r in batch.results])
        normalized = values / reference
        success = float(np.mean(normalized >= 0.95))
        rows.append([
            f"{sigma * 1000:.0f} mV",
            f"{success * 100:.0f}%",
            f"{normalized.mean():.3f}",
            f"{normalized.min():.3f}",
            f"{batch.wall_time:.2f}s",
        ])
    print("Variability study (device axis, one chip per trial):")
    print(format_table(
        ["threshold spread", "success rate", "mean value", "worst chip",
         "wall clock"], rows))
    print(f"\nall chips advanced in one lock-step batch: {all_batched}")
    print("Ideal chips set the bar; growing threshold spread erodes the "
          "filter's marginal decisions, and the worst-chip column is the "
          "yield view a deployment would screen for.")


if __name__ == "__main__":
    main()

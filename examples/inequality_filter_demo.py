"""Inequality-filter demo: the worked example of paper Fig. 4(c) / Fig. 5(f).

Walks through the FeFET-based CiM inequality filter at cell and array level:

1. a single 1FeFET1R cell storing weights 0..4 and its matchline voltage after
   the four staircase read phases (Fig. 4(c));
2. the full filter (working array + replica array + comparator) evaluating
   the inequality 4x1 + 7x2 + 2x3 <= 9 over all eight input configurations
   (Fig. 5(f));
3. the same filter under device variability and matchline noise.

Run with:  python examples/inequality_filter_demo.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis.reporting import format_table
from repro.cim.filter_array import FilterArrayConfig, WorkingArray
from repro.cim.inequality_filter import InequalityFilter
from repro.core.constraints import InequalityConstraint
from repro.fefet.variability import VariabilityModel


def cell_level_demo() -> None:
    """Fig. 4(c): matchline voltage vs stored weight after the 4 read phases."""
    print("=== Filter cell (Fig. 4(c)) ===")
    config = FilterArrayConfig(num_rows=1, discharge_per_unit=0.05)
    rows = []
    for weight in range(5):
        array = WorkingArray([weight], config=config)
        waveform = array.phase_waveform([1])
        rows.append([weight] + [f"{v:.2f}" for v in waveform])
    print(format_table(["stored w", "after phase 1", "phase 2", "phase 3", "phase 4"],
                       rows))
    print("The final matchline voltage drops linearly with the stored weight "
          "(Eq. (7)/(8)).\n")


def array_level_demo() -> None:
    """Fig. 5(f): classify all 8 configurations of 4x1 + 7x2 + 2x3 <= 9."""
    print("=== Inequality filter (Fig. 5(f)) ===")
    constraint = InequalityConstraint([4, 7, 2], 9)
    cim_filter = InequalityFilter(constraint)
    rows = []
    for bits in range(8):
        x = [(bits >> k) & 1 for k in range(3)]
        decision = cim_filter.evaluate(x)
        rows.append(["".join(str(v) for v in x),
                     f"{constraint.lhs(x):.0f}",
                     f"{decision.working_readout.voltage:.3f} V",
                     f"{decision.replica_readout.voltage:.3f} V",
                     "feasible" if decision.feasible else "INFEASIBLE"])
    print(format_table(["x1x2x3", "w.x", "ML", "replica ML", "decision"], rows))
    print("Six configurations stay above the replica matchline, two drop "
          "below it and are filtered out.\n")


def non_ideal_demo() -> None:
    """The same filter with FeFET variability and matchline noise."""
    print("=== Filter under non-idealities ===")
    rng = np.random.default_rng(0)
    weights = rng.integers(1, 51, size=100)
    capacity = int(weights.sum() * 0.4)
    constraint = InequalityConstraint(weights, capacity)
    cim_filter = InequalityFilter(
        constraint,
        variability=VariabilityModel(threshold_sigma=0.03, on_current_sigma=0.15,
                                     seed=1),
        matchline_noise_sigma=0.002,
    )
    configurations = rng.integers(0, 2, size=(200, 100)).astype(float)
    accuracy = cim_filter.classification_accuracy(configurations, rng=rng)
    print(f"100-item constraint, 200 random configurations, device variability "
          f"and 2 mV matchline noise: classification accuracy = {accuracy * 100:.1f}%")


def main() -> None:
    cell_level_demo()
    array_level_demo()
    non_ideal_demo()


if __name__ == "__main__":
    main()

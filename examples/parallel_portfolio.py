"""Parallel portfolio: race every solver on one instance, best answer wins.

Demonstrates the :mod:`repro.runtime` subsystem end to end:

1. ``run_trials`` -- a batch of independent HyCiM trials with
   ``SeedSequence``-spawned per-trial seeds, executed on the serial and the
   multiprocessing backend, verifying the results are bitwise identical;
2. ``run_portfolio`` -- greedy, local search, feasibility-filtered software
   SA, and HyCiM racing on the same instance;
3. ``run_campaign`` -- a small (instance x solver) sweep with per-cell
   success-rate aggregation and early stopping on the paper's 95% bar.

Run with:  python examples/parallel_portfolio.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis.reporting import format_table
from repro.exact import reference_qkp_value
from repro.problems.generators import generate_qkp_instance
from repro.runtime import (
    STATISTICS_HEADER,
    available_solvers,
    run_campaign,
    run_portfolio,
    run_trials,
    statistics_table,
)

HYCIM_PARAMS = {
    "num_iterations": 120,
    "move_generator": "knapsack",
    "use_hardware": False,   # software mode keeps the demo snappy
}


def main() -> None:
    print(f"Registered solvers: {', '.join(available_solvers())}")
    problem = generate_qkp_instance(num_items=30, density=0.5, max_weight=12,
                                    seed=42, name="portfolio-demo")
    reference = reference_qkp_value(problem)
    print(f"Instance: {problem} (reference value {reference:.0f})")

    # ------------------------------------------------------------------ #
    # 1. Replica batch: serial vs process vs vectorized backend, bitwise
    #    identical per seed (the vectorized backend advances all replicas
    #    in lock-step NumPy -- see examples/vectorized_replicas.py).
    # ------------------------------------------------------------------ #
    params = dict(HYCIM_PARAMS, moves_per_iteration=problem.num_items)
    serial = run_trials(problem, solver="hycim", num_trials=8, params=params,
                        backend="serial", master_seed=7)
    parallel = run_trials(problem, solver="hycim", num_trials=8, params=params,
                          backend="process", master_seed=7, chunk_size=2)
    vectorized = run_trials(problem, solver="hycim", num_trials=8,
                            params=params, backend="vectorized", master_seed=7)
    identical = np.array_equal(serial.best_energies, parallel.best_energies) \
        and np.array_equal(serial.best_energies, vectorized.best_energies)
    print(f"\n8 HyCiM trials: serial {serial.wall_time:.2f}s, "
          f"process {parallel.wall_time:.2f}s, "
          f"vectorized {vectorized.wall_time:.2f}s, "
          f"bitwise identical energies: {identical}")
    best = serial.best_result
    print(f"best trial: profit {best.best_objective:.0f} "
          f"(trial seed {best.trial_seed} -- replayable)")

    # ------------------------------------------------------------------ #
    # 2. Portfolio race on the instance.
    # ------------------------------------------------------------------ #
    portfolio = run_portfolio(
        problem,
        solvers=("greedy", "local_search", "sa", "hycim"),
        num_trials=4,
        params={"hycim": params,
                "sa": {"num_iterations": 120,
                       "moves_per_iteration": problem.num_items}},
        master_seed=11,
        reference=reference,
    )
    print(f"\nPortfolio ranking (best first): {', '.join(portfolio.ranking())}")
    print(f"winner: {portfolio.winner} with profit "
          f"{portfolio.best_result.best_objective:.0f} "
          f"(feasible={portfolio.best_result.feasible})")

    # ------------------------------------------------------------------ #
    # 3. Campaign: instances x solvers with early stopping at 95%.
    # ------------------------------------------------------------------ #
    suite = [generate_qkp_instance(num_items=20, density=d, max_weight=8,
                                   seed=100 + i, name=f"camp_{i}")
             for i, d in enumerate((0.25, 0.75))]
    campaign = run_campaign(
        suite,
        solvers=["greedy", ("hycim", HYCIM_PARAMS)],
        num_trials=5,
        references=lambda p: reference_qkp_value(p),
        master_seed=2024,
    )
    print("\nCampaign summary (cells early-stop at the 95% success bar):")
    print(format_table(STATISTICS_HEADER, statistics_table(campaign.statistics)))
    # Early-stopped cells have no unbiased per-trial success rate, so the
    # headline statistic for an early-stopping campaign is the fraction of
    # instances each solver solved.
    for label, rate in sorted(campaign.solved_fraction_by_solver().items()):
        print(f"  mean success (instances solved) {label}: {rate * 100:.0f}%")


if __name__ == "__main__":
    main()

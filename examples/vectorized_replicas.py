"""Vectorised multi-replica annealing: one crossbar, a whole replica batch.

The paper scores HyCiM by running many independent SA replicas per instance
(Fig. 10).  The scalar solvers step one configuration at a time through
Python; ``run_trials(backend="vectorized")`` advances *all* replicas in
lock-step NumPy instead -- one batched inequality-filter decision and one
batched crossbar MVM per proposal round, exactly as the physical array
evaluates a batch of candidates in one shot.  Per-replica ``Generator``
streams keep every trajectory identical, seed for seed, to the scalar path.

This demo shows, on one QKP instance:

1. per-seed result identity between the serial and vectorized backends;
2. the per-replica throughput gap in software and hardware-simulation mode;
3. composing both parallelism levels: process workers x replica groups
   (``backend="process"`` + ``replicas_per_task``).

Run with:  python examples/vectorized_replicas.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis.reporting import format_table
from repro.problems.generators import generate_qkp_instance
from repro.runtime import run_trials

NUM_REPLICAS = 24
MASTER_SEED = 5


def main() -> None:
    problem = generate_qkp_instance(num_items=50, density=0.5, max_weight=15,
                                    seed=31, name="vectorized-demo")
    print(f"Instance: {problem}")
    print(f"{NUM_REPLICAS} replicas per batch, master seed {MASTER_SEED}\n")

    rows = []
    batches = {}
    for label, use_hardware, backend, kwargs in [
        ("serial / software", False, "serial", {}),
        ("vectorized / software", False, "vectorized", {}),
        ("serial / hardware", True, "serial", {}),
        ("vectorized / hardware", True, "vectorized", {}),
    ]:
        params = {"num_iterations": 60,
                  "moves_per_iteration": 10,
                  "use_hardware": use_hardware}
        batch = run_trials(problem, "hycim", num_trials=NUM_REPLICAS,
                           params=params, backend=backend,
                           master_seed=MASTER_SEED, **kwargs)
        batches[label] = batch
        rows.append([label, f"{batch.wall_time:.2f}s",
                     f"{batch.wall_time / batch.num_trials * 1000:.1f}ms",
                     f"{batch.best_result.best_objective:.0f}"])
    print(format_table(["backend / mode", "wall clock", "per replica",
                        "best profit"], rows))

    identical = np.array_equal(batches["serial / software"].best_energies,
                               batches["vectorized / software"].best_energies)
    print(f"\nsoftware-mode energies identical per seed: {identical}")
    sw_speedup = (batches["serial / software"].wall_time
                  / batches["vectorized / software"].wall_time)
    hw_speedup = (batches["serial / hardware"].wall_time
                  / batches["vectorized / hardware"].wall_time)
    print(f"per-replica speedup: software {sw_speedup:.1f}x, "
          f"hardware {hw_speedup:.1f}x")

    # Composing both levels: chunks fan out over processes, and every worker
    # advances its chunk as one lock-step replica group.
    composed = run_trials(problem, "hycim", num_trials=NUM_REPLICAS,
                          params={"num_iterations": 60,
                                  "moves_per_iteration": 10,
                                  "use_hardware": False},
                          backend="process", num_workers=2,
                          chunk_size=NUM_REPLICAS // 2,
                          replicas_per_task=NUM_REPLICAS // 2,
                          master_seed=MASTER_SEED)
    composed_identical = np.array_equal(
        batches["serial / software"].best_energies, composed.best_energies)
    print(f"process x vectorized (2 workers x {NUM_REPLICAS // 2} replicas): "
          f"{composed.wall_time:.2f}s, identical per seed: {composed_identical}")


if __name__ == "__main__":
    main()

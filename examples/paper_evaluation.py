"""Reproduce the paper's evaluation section (Figs. 8, 9, 10 and Table 1).

Runs the four experiment harnesses at a configurable scale and prints the
rows/series each figure reports.  The default scale finishes in a couple of
minutes on a laptop; pass ``--paper-scale`` for the full 40-instance / 100-item
protocol (much slower, intended for an overnight run).

Run with:  python examples/paper_evaluation.py [--paper-scale]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.analysis.experiments import (
    run_filter_validation,
    run_hardware_overhead_study,
    run_solver_summary,
    run_solving_efficiency_study,
)
from repro.analysis.reporting import format_table
from repro.fefet.variability import VariabilityModel
from repro.problems.generators import generate_qkp_instance


def build_suite(paper_scale: bool):
    """QKP suite: 40x100 items at paper scale, 6x30 items otherwise."""
    if paper_scale:
        num_instances, num_items, max_weight = 40, 100, 50
    else:
        num_instances, num_items, max_weight = 6, 30, 10
    densities = (0.25, 0.5, 0.75, 1.0)
    return [
        generate_qkp_instance(num_items=num_items, density=densities[i % 4],
                              max_weight=max_weight, seed=2024 + i,
                              name=f"qkp_{i:02d}")
        for i in range(num_instances)
    ]


def fig8(suite) -> None:
    result = run_filter_validation(
        suite, samples_per_instance=20,
        variability=VariabilityModel(threshold_sigma=0.02, on_current_sigma=0.1, seed=8),
        seed=8)
    feasible = result.normalized_voltages[result.ground_truth_feasible]
    infeasible = result.normalized_voltages[~result.ground_truth_feasible]
    print("\n--- Fig. 8: inequality filter validation ---")
    print(f"cases: {result.num_cases}, accuracy: {result.metrics['accuracy'] * 100:.2f}%")
    print(f"feasible   normalized ML: min {feasible.min():.3f}, max {feasible.max():.3f}")
    print(f"infeasible normalized ML: min {infeasible.min():.3f}, max {infeasible.max():.3f}")


def fig9(suite) -> None:
    records = run_hardware_overhead_study(suite)
    print("\n--- Fig. 9: hardware overhead (HyCiM vs D-QUBO) ---")
    print(format_table(
        ["instance", "D-QUBO Qmax", "D-QUBO n", "bits", "HyCiM Qmax", "bits",
         "search-space reduction", "HW saving"],
        [[r.instance_name,
          f"{r.dqubo_report.max_abs_coefficient:.2e}",
          r.dqubo_report.num_variables,
          r.dqubo_report.bits_per_element,
          f"{r.hycim_report.max_abs_coefficient:.0f}",
          r.hycim_report.bits_per_element,
          f"2^{r.search_space_reduction_bits}",
          f"{r.hardware_saving * 100:.2f}%"] for r in records]))
    savings = [r.hardware_saving for r in records]
    print(f"hardware saving range: {min(savings) * 100:.2f}% .. {max(savings) * 100:.2f}%")


def fig10(suite, paper_scale: bool) -> None:
    result = run_solving_efficiency_study(
        suite,
        num_initial_states=20 if paper_scale else 5,
        sa_iterations=1000 if paper_scale else 100,
        seed=10)
    print("\n--- Fig. 10: solving efficiency ---")
    print(format_table(
        ["instance", "HyCiM success", "D-QUBO success"],
        [[name, f"{h * 100:.1f}%", f"{d * 100:.1f}%"]
         for name, h, d in zip(result.instance_names,
                               result.hycim_success_rates,
                               result.dqubo_success_rates)]))
    print(f"average success rate: HyCiM {result.hycim_mean_success * 100:.2f}% "
          f"vs D-QUBO {result.dqubo_mean_success * 100:.2f}%")
    print(f"mean normalized QKP value: HyCiM {result.hycim_normalized.mean():.3f} "
          f"vs D-QUBO {result.dqubo_normalized.mean():.3f}")


def table1() -> None:
    rows = run_solver_summary(num_runs=8, sa_iterations=1500, seed=11)
    print("\n--- Table 1: solver summary ---")
    print(format_table(
        ["COP", "constraint", "search-space reduction", "size", "success rate"],
        [[r.problem_class, r.constraint_type,
          "Yes" if r.search_space_reduction else "No",
          r.problem_size, f"{r.success_rate * 100:.0f}%"] for r in rows]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="run the full 40-instance / 100-item protocol")
    args = parser.parse_args()

    suite = build_suite(args.paper_scale)
    fig8(suite)
    fig9(suite)
    fig10(suite, args.paper_scale)
    table1()


if __name__ == "__main__":
    main()

"""Resumable campaign: checkpoint trials to a store, survive an interrupt.

Demonstrates the :mod:`repro.store` persistence layer end to end:

1. run a reference campaign with no store (the ground truth);
2. run the same campaign against a :class:`repro.store.CampaignStore` and
   *interrupt* it partway through (a stand-in for a killed process or a
   pre-empted spot instance);
3. resume: re-issue the identical campaign with the same store -- persisted
   trials are loaded instead of re-run, the rest execute, and the resulting
   aggregates are bitwise identical to the uninterrupted run;
4. inspect what the store holds (the same view ``python -m repro.store
   list`` prints) and export every trial to CSV.

Run with:  python examples/resumable_campaign.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.reporting import format_table
from repro.exact import reference_qkp_value
from repro.problems.generators import generate_qkp_instance
from repro.runtime import run_campaign
from repro.store import CampaignStore

HYCIM_PARAMS = {
    "num_iterations": 120,
    "move_generator": "knapsack",
    "use_hardware": False,
}


class InterruptingStore(CampaignStore):
    """A store that "kills the process" after a fixed number of appends."""

    def __init__(self, root, limit: int):
        super().__init__(root)
        self.limit = limit

    def append_result(self, *args, **kwargs):
        if self.limit <= 0:
            raise KeyboardInterrupt("simulated crash")
        super().append_result(*args, **kwargs)
        self.limit -= 1


def main() -> None:
    suite = [generate_qkp_instance(num_items=25, density=d, max_weight=10,
                                   seed=500 + i, name=f"resume_{i}")
             for i, d in enumerate((0.3, 0.7))]
    references = {p.name: reference_qkp_value(p) for p in suite}
    solvers = ["greedy", ("hycim", HYCIM_PARAMS)]
    campaign_args = dict(num_trials=6, references=references,
                         master_seed=2026, early_stop=False)
    total_trials = len(suite) * (1 + 6)   # greedy once + 6 hycim per instance

    # ------------------------------------------------------------------ #
    # 1. Ground truth: the same campaign with no store.
    # ------------------------------------------------------------------ #
    uninterrupted = run_campaign(suite, solvers, **campaign_args)
    print(f"Reference campaign: {len(uninterrupted.records)} cells, "
          f"{total_trials} trials")

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "campaign-store"

        # -------------------------------------------------------------- #
        # 2. Same campaign, checkpointed -- killed partway through.
        # -------------------------------------------------------------- #
        killed_after = 5
        try:
            run_campaign(suite, solvers,
                         store=InterruptingStore(store_dir, killed_after),
                         **campaign_args)
        except KeyboardInterrupt:
            pass
        print(f"interrupted after {killed_after} of {total_trials} trials "
              "(simulated crash)")

        # -------------------------------------------------------------- #
        # 3. Resume: persisted trials load, the rest run, aggregates match.
        # -------------------------------------------------------------- #
        store = CampaignStore(store_dir)
        resumed = run_campaign(suite, solvers, store=store, **campaign_args)
        loaded = sum(r.batch.num_loaded_from_store for r in resumed.records)
        executed = sum(r.batch.num_trials for r in resumed.records) - loaded
        parity = resumed.fingerprint() == uninterrupted.fingerprint()
        print(f"resumed: {loaded} trials loaded from the store, "
              f"{executed} freshly executed")
        print(f"aggregate parity with uninterrupted run: {parity}")

        # -------------------------------------------------------------- #
        # 4. The results CLI view (python -m repro.store list <dir>).
        # -------------------------------------------------------------- #
        print("\nStore contents:")
        rows = [[m.run_key[:12], m.problem_name, m.label, m.backend,
                 f"{store.num_results(m.run_key)}/{m.num_trials_requested}"]
                for m in store.runs()]
        print(format_table(["run key", "instance", "solver", "backend",
                            "trials"], rows))
        csv_rows = store.export_csv(store_dir / "trials.csv")
        print(f"exported {csv_rows} trial rows to CSV")


if __name__ == "__main__":
    main()

"""Quickstart: solve a quadratic knapsack problem with HyCiM.

Builds a random 40-item QKP instance, converts it to the paper's
inequality-QUBO form, runs a batch of independent HyCiM trials through the
parallel runtime (simulated FeFET inequality filter + crossbar per trial) and
compares the best-of-batch result against the greedy + local-search reference
and against the conventional D-QUBO baseline annealer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.dqubo import SlackEncoding, predict_dqubo_dimension
from repro.exact import reference_qkp_value
from repro.problems import generate_qkp_instance
from repro.runtime import run_trials


def main() -> None:
    # 1. A Billionnet-Soutif style QKP instance: 40 items, 50% profit density.
    problem = generate_qkp_instance(num_items=40, density=0.5, max_weight=20,
                                    seed=7, name="quickstart")
    print(f"Instance: {problem}")
    print(f"  capacity C = {problem.capacity:.0f}, "
          f"total weight = {problem.weights.sum():.0f}")

    # 2. The HyCiM transformation keeps the search space at 2^n and the QUBO
    #    coefficients at the profit scale.
    model = problem.to_inequality_qubo()
    print(f"  inequality-QUBO: n = {model.num_variables}, "
          f"Q_max = {model.qubo.max_abs_coefficient:.0f}, "
          f"constraints kept outside the QUBO = {model.num_constraints}")

    # 3. A batch of independent HyCiM trials (hardware simulation enabled).
    #    Swap backend="serial" for "process" to fan the trials out over all
    #    cores -- the results are bitwise identical either way.
    params = {
        "use_hardware": True,
        "num_iterations": 150,                       # SA iterations (sweeps)
        "moves_per_iteration": problem.num_items,    # one sweep per iteration
        "move_generator": "knapsack",
        "schedule": {"kind": "geometric",
                     "start_temperature": 2000.0, "end_temperature": 2.0},
    }
    batch = run_trials(problem, solver="hycim", num_trials=3, params=params,
                       backend="serial", master_seed=1)
    result = batch.best_result

    reference = reference_qkp_value(problem)
    print(f"\nHyCiM result: (best of {batch.num_trials} trials, "
          f"{batch.wall_time:.1f}s)")
    print(f"  profit          = {result.best_objective:.0f}")
    print(f"  reference value = {reference:.0f} "
          f"(normalized {result.best_objective / reference:.3f})")
    print(f"  feasible        = {result.feasible}, "
          f"weight used = {problem.total_weight(result.best_configuration):.0f} / "
          f"{problem.capacity:.0f}")
    print(f"  filtered (skipped) candidates: {result.num_infeasible_skipped} of "
          f"{result.num_iterations}")
    print(f"  winning trial seed = {result.trial_seed} (replayable)")

    # 4. The D-QUBO baseline with the same per-trial budget.
    baseline_batch = run_trials(
        problem, solver="dqubo", num_trials=3,
        params={"num_iterations": 150,
                "moves_per_iteration": problem.num_items,
                "schedule": params["schedule"]},
        backend="serial", master_seed=1)
    baseline_result = baseline_batch.best_result
    dqubo_dimension = predict_dqubo_dimension(problem.num_items, problem.capacity,
                                              SlackEncoding.ONE_HOT)
    print("\nD-QUBO baseline:")
    print(f"  QUBO dimension  = {dqubo_dimension} "
          f"(vs {model.num_variables} for HyCiM)")
    print(f"  profit          = {baseline_result.best_objective:.0f} "
          f"(feasible = {baseline_result.feasible})")


if __name__ == "__main__":
    main()

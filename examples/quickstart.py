"""Quickstart: solve a quadratic knapsack problem with HyCiM.

Builds a random 40-item QKP instance, converts it to the paper's
inequality-QUBO form, solves it with the HyCiM hybrid solver (simulated FeFET
inequality filter + crossbar) and compares the result against the greedy +
local-search reference and against the conventional D-QUBO baseline annealer.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.annealing import DQUBOAnnealer, HyCiMSolver, KnapsackNeighborhoodMove
from repro.annealing.schedule import GeometricSchedule
from repro.exact import reference_qkp_value
from repro.problems import generate_qkp_instance


def main() -> None:
    # 1. A Billionnet-Soutif style QKP instance: 40 items, 50% profit density.
    problem = generate_qkp_instance(num_items=40, density=0.5, max_weight=20,
                                    seed=7, name="quickstart")
    print(f"Instance: {problem}")
    print(f"  capacity C = {problem.capacity:.0f}, "
          f"total weight = {problem.weights.sum():.0f}")

    # 2. The HyCiM transformation keeps the search space at 2^n and the QUBO
    #    coefficients at the profit scale.
    model = problem.to_inequality_qubo()
    print(f"  inequality-QUBO: n = {model.num_variables}, "
          f"Q_max = {model.qubo.max_abs_coefficient:.0f}, "
          f"constraints kept outside the QUBO = {model.num_constraints}")

    # 3. Solve with the HyCiM hybrid solver (hardware simulation enabled).
    schedule = GeometricSchedule(start_temperature=2000.0, end_temperature=2.0)
    solver = HyCiMSolver(
        problem,
        use_hardware=True,
        num_iterations=300,                       # SA iterations (sweeps)
        moves_per_iteration=problem.num_items,    # one sweep per iteration
        move_generator=KnapsackNeighborhoodMove(),
        schedule=schedule,
        seed=1,
    )
    rng = np.random.default_rng(0)
    result = solver.solve(initial=problem.random_feasible_configuration(rng), rng=rng)

    reference = reference_qkp_value(problem)
    print("\nHyCiM result:")
    print(f"  profit          = {result.best_objective:.0f}")
    print(f"  reference value = {reference:.0f} "
          f"(normalized {result.best_objective / reference:.3f})")
    print(f"  feasible        = {result.feasible}, "
          f"weight used = {problem.total_weight(result.best_configuration):.0f} / "
          f"{problem.capacity:.0f}")
    print(f"  filtered (skipped) candidates: {result.num_infeasible_skipped} of "
          f"{result.num_iterations}")

    # 4. The D-QUBO baseline on the same starting point and budget.
    baseline = DQUBOAnnealer(problem, num_iterations=150,
                             moves_per_iteration=problem.num_items,
                             schedule=schedule, seed=1)
    baseline_result = baseline.solve(
        initial=problem.random_feasible_configuration(np.random.default_rng(0)),
        rng=np.random.default_rng(0))
    print("\nD-QUBO baseline:")
    print(f"  QUBO dimension  = {baseline.transformation.num_variables} "
          f"(vs {model.num_variables} for HyCiM)")
    print(f"  profit          = {baseline_result.best_objective:.0f} "
          f"(feasible = {baseline_result.feasible})")


if __name__ == "__main__":
    main()

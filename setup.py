"""Setuptools shim for offline editable installs.

All project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e .`` can fall back to the legacy ``setup.py develop`` path on
machines without the ``wheel`` package (PEP 660 editable builds need it).
"""

from setuptools import setup

setup()

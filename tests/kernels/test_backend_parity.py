"""Backend parity: fused, packed (and interpreted-JIT) kernels vs reference.

The contract from :mod:`repro.kernels.base`: on integer-valued instances the
fused backend consumes the same RNG draws and produces *exactly* equal
trajectories -- best energies, configurations, proposal counters, recorded
histories, and (crucially) the final per-replica generator states, so a
kernel swap mid-campaign cannot desynchronise a seeded experiment.

The JIT kernels are exercised here through their interpreted fallback
(``_ALLOW_INTERPRETED``), so the compiled path's draw-replay logic is
covered even where numba is not installed; the CI optional-deps job re-runs
this module with numba present to cover the compiled path itself.
"""

import numpy as np
import pytest

import repro.kernels.jit as jit_module
from repro.annealing.hycim import HyCiMSolver
from repro.annealing.sa import SimulatedAnnealer
from repro.batched import BatchedHyCiMSolver, BatchedSimulatedAnnealer
from repro.dynamics import (
    Dynamics,
    ParallelTempering,
    exchange_stream,
)
from repro.problems.maxcut import MaxCutProblem
from repro.problems.qkp import QuadraticKnapsackProblem

NUM_REPLICAS = 5


def make_qkp(seed, n=18):
    rng = np.random.default_rng(seed)
    profits = np.zeros((n, n))
    np.fill_diagonal(profits, rng.integers(1, 100, size=n))
    upper = np.triu_indices(n, 1)
    values = (rng.integers(0, 60, size=len(upper[0]))
              * (rng.random(len(upper[0])) < 0.4))
    profits[upper] = values
    profits = profits + np.triu(profits, 1).T
    weights = rng.integers(1, 30, size=n).astype(float)
    return QuadraticKnapsackProblem(profits=profits, weights=weights,
                                    capacity=float(weights.sum()) * 0.5,
                                    name="parity_qkp")


def make_maxcut(seed, n=16):
    rng = np.random.default_rng(seed)
    adjacency = rng.integers(0, 8, size=(n, n)) * (rng.random((n, n)) < 0.3)
    adjacency = np.triu(adjacency, 1)
    return MaxCutProblem(adjacency=(adjacency + adjacency.T).astype(float))


def make_generators(seed, count=NUM_REPLICAS):
    return [np.random.default_rng([seed, k]) for k in range(count)]


def assert_exact_parity(reference, other, generator_pairs=None):
    """Results and (optionally) final RNG states are exactly equal."""
    for a, b in zip(reference, other):
        assert a.best_energy == b.best_energy
        np.testing.assert_array_equal(a.best_configuration,
                                      b.best_configuration)
        assert a.feasible == b.feasible
        assert a.num_accepted_moves == b.num_accepted_moves
        assert a.num_feasible_evaluations == b.num_feasible_evaluations
        assert a.num_infeasible_skipped == b.num_infeasible_skipped
        assert a.energy_history == b.energy_history
    if generator_pairs is not None:
        for mine, theirs in zip(*generator_pairs):
            state_a = mine.bit_generator.state
            state_b = theirs.bit_generator.state
            assert state_a["state"]["state"] == state_b["state"]["state"]
            assert state_a["has_uint32"] == state_b["has_uint32"]
            assert state_a["uinteger"] == state_b["uinteger"]


@pytest.fixture(params=["fused", "packed", "numba"])
def backend(request, monkeypatch):
    if request.param == "numba":
        # Run the JIT kernels interpreted when numba is missing -- the
        # stream-replay and commit logic is identical either way.
        monkeypatch.setattr(jit_module, "_ALLOW_INTERPRETED", True)
    return request.param


@pytest.fixture
def qkp():
    return make_qkp(5)


@pytest.fixture
def qkp_initials(qkp):
    rng = np.random.default_rng(7)
    return np.stack([qkp.random_feasible_configuration(rng)
                     for _ in range(NUM_REPLICAS)])


def anneal_qkp(annealer, qkp, initials, generators, kernel):
    return BatchedSimulatedAnnealer(annealer).anneal(
        qkp.to_qubo(), initials, generators,
        accept_filter_batch=qkp.is_feasible_batch,
        feasibility_constraints=qkp.linear_feasibility_constraints(),
        kernel=kernel)


class TestSAParity:
    def test_constrained_qkp(self, backend, qkp, qkp_initials):
        annealer = SimulatedAnnealer(num_iterations=150)
        ref_gens, gens = make_generators(11), make_generators(11)
        reference = anneal_qkp(annealer, qkp, qkp_initials, ref_gens,
                               "reference")
        other = anneal_qkp(annealer, qkp, qkp_initials, gens, backend)
        assert_exact_parity(reference, other, (ref_gens, gens))

    def test_unconstrained_maxcut(self, backend):
        problem = make_maxcut(3)
        annealer = SimulatedAnnealer(num_iterations=150)
        initials = (np.random.default_rng(1)
                    .random((NUM_REPLICAS, problem.num_variables))
                    < 0.5).astype(float)
        ref_gens, gens = make_generators(21), make_generators(21)
        reference = BatchedSimulatedAnnealer(annealer).anneal(
            problem.to_qubo(), initials, ref_gens, kernel="reference")
        other = BatchedSimulatedAnnealer(annealer).anneal(
            problem.to_qubo(), initials, gens, kernel=backend)
        assert_exact_parity(reference, other, (ref_gens, gens))

    def test_recorded_history(self, backend, qkp, qkp_initials):
        annealer = SimulatedAnnealer(num_iterations=80, record_history=True)
        ref_gens, gens = make_generators(61), make_generators(61)
        reference = anneal_qkp(annealer, qkp, qkp_initials, ref_gens,
                               "reference")
        other = anneal_qkp(annealer, qkp, qkp_initials, gens, backend)
        assert_exact_parity(reference, other, (ref_gens, gens))
        assert reference[0].energy_history  # the histories were recorded

    def test_multiple_moves_per_iteration(self, backend, qkp, qkp_initials):
        annealer = SimulatedAnnealer(num_iterations=60, moves_per_iteration=3)
        ref_gens, gens = make_generators(71), make_generators(71)
        reference = anneal_qkp(annealer, qkp, qkp_initials, ref_gens,
                               "reference")
        other = anneal_qkp(annealer, qkp, qkp_initials, gens, backend)
        assert_exact_parity(reference, other, (ref_gens, gens))


class TestSparseParity:
    def test_sparse_fused_equals_dense_reference(self, qkp, qkp_initials):
        pytest.importorskip("scipy")
        annealer = SimulatedAnnealer(num_iterations=150)
        ref_gens, gens = make_generators(31), make_generators(31)
        reference = anneal_qkp(annealer, qkp, qkp_initials, ref_gens,
                               "reference")
        sparse = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_sparse_qubo(), qkp_initials, gens,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            kernel="fused")
        assert_exact_parity(reference, sparse, (ref_gens, gens))


class TestHyCiMParity:
    def test_software_mode(self, backend, qkp, qkp_initials):
        solver = HyCiMSolver(qkp, use_hardware=False, num_iterations=150)
        ref_gens, gens = make_generators(41), make_generators(41)
        reference = BatchedHyCiMSolver(solver).solve_batch(
            qkp_initials, ref_gens, kernel="reference")
        other = BatchedHyCiMSolver(solver).solve_batch(
            qkp_initials, gens, kernel=backend)
        assert_exact_parity(reference, other, (ref_gens, gens))

    def test_ladder_with_replica_exchange(self, backend, qkp, qkp_initials):
        solver = HyCiMSolver(qkp, use_hardware=False, num_iterations=150)
        dynamics = ParallelTempering(exchange_interval=5)
        ref_gens, gens = make_generators(51), make_generators(51)
        reference = BatchedHyCiMSolver(solver).solve_batch(
            qkp_initials, ref_gens, dynamics=dynamics,
            exchange_rng=exchange_stream([4242]), kernel="reference")
        other = BatchedHyCiMSolver(solver).solve_batch(
            qkp_initials, gens, dynamics=dynamics,
            exchange_rng=exchange_stream([4242]), kernel=backend)
        assert_exact_parity(reference, other, (ref_gens, gens))
        # Exchange really happened, identically on both backends.
        assert (reference[0].metadata["exchange_accepted"]
                == other[0].metadata["exchange_accepted"])
        assert reference[0].metadata["exchange_attempts"] > 0


class TestSharedRNGMode:
    def test_fused_falls_back_to_driver_draws(self, qkp, qkp_initials):
        # Shared-RNG mode is not stream-replayable; the fused kernel must
        # fall back to driver-mediated draws and still match exactly.
        annealer = SimulatedAnnealer(num_iterations=100)
        shared_ref = np.random.default_rng(5)
        shared_fused = np.random.default_rng(5)
        reference = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_qubo(), qkp_initials, [shared_ref] * NUM_REPLICAS,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            dynamics=Dynamics(rng_mode="shared"), shared_rng=shared_ref,
            kernel="reference")
        fused = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_qubo(), qkp_initials, [shared_fused] * NUM_REPLICAS,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            dynamics=Dynamics(rng_mode="shared"), shared_rng=shared_fused,
            kernel="fused")
        assert_exact_parity(reference, fused)
        assert (shared_ref.bit_generator.state["state"]["state"]
                == shared_fused.bit_generator.state["state"]["state"])

"""Hypothesis properties for the packed kernel's bit-twiddling layer.

Three invariants back the popcount arithmetic in :mod:`repro.kernels.bits`:

1. packing is lossless -- ``unpack_bits(pack_bits(x), n) == x`` for every
   0/1 batch, including widths that are not multiples of 64 (the padding
   bits of the last word stay zero and never leak back);
2. the plane-mask local field equals the dense dot product -- for arbitrary
   integer matrices (negative entries included) the offset-plane
   decomposition reproduces ``x @ S`` exactly, and the single-flip delta
   assembled from it equals :func:`batched_energy_delta`;
3. the same machinery over a row of constraint weights is an exact packed
   dot product -- the popcount load equals ``x @ w``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batched.kernels import batched_energy_delta, symmetrized_matrix
from repro.kernels.bits import (
    build_plane_masks,
    pack_bits,
    packed_dot,
    packed_width,
    popcount_rows,
    unpack_bits,
)


@st.composite
def bit_batches(draw, max_variables=150, max_replicas=6):
    """A random ``(M, n)`` 0/1 float batch, with n straddling word edges."""
    n = draw(st.integers(1, max_variables))
    m = draw(st.integers(1, max_replicas))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    return (rng.random((m, n)) < 0.5).astype(float)


@st.composite
def integer_model(draw, max_variables=24, max_replicas=5):
    """A signed-integer matrix plus a binary batch and per-replica flips."""
    n = draw(st.integers(2, max_variables))
    m = draw(st.integers(1, max_replicas))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    matrix = rng.integers(-60, 60, size=(n, n)).astype(float)
    batch = (rng.random((m, n)) < 0.5).astype(float)
    flips = rng.integers(0, n, size=m)
    return matrix, batch, flips


class TestPackRoundTrip:
    @given(bit_batches())
    @settings(max_examples=80, deadline=None)
    def test_pack_unpack_round_trip(self, batch):
        words = pack_bits(batch)
        assert words.shape == (batch.shape[0], packed_width(batch.shape[1]))
        assert words.dtype == np.uint64
        np.testing.assert_array_equal(unpack_bits(words, batch.shape[1]),
                                      batch)

    @given(bit_batches())
    @settings(max_examples=80, deadline=None)
    def test_popcount_rows_equals_sum(self, batch):
        np.testing.assert_array_equal(
            popcount_rows(pack_bits(batch)),
            batch.sum(axis=1).astype(np.int64))

    def test_word_edge_widths(self):
        # The off-by-one widths around a word boundary, deterministically.
        for n in (63, 64, 65, 127, 128, 129):
            batch = np.eye(n)[: min(4, n)]
            np.testing.assert_array_equal(
                unpack_bits(pack_bits(batch), n), batch)


class TestPlaneMaskField:
    @given(integer_model())
    @settings(max_examples=60, deadline=None)
    def test_packed_field_equals_dense_dot(self, model):
        matrix, batch, _ = model
        symmetric = symmetrized_matrix(matrix)
        offsets, masks, weights = build_plane_masks(symmetric)
        words = pack_bits(batch)
        for i in range(matrix.shape[0]):
            rows = np.full(batch.shape[0], i)
            field = packed_dot(masks[rows], words, weights, offsets[rows])
            np.testing.assert_array_equal(field.astype(float),
                                          batch @ symmetric[i])

    @given(integer_model())
    @settings(max_examples=60, deadline=None)
    def test_packed_delta_equals_dense_delta(self, model):
        matrix, batch, flips = model
        symmetric = symmetrized_matrix(matrix)
        offsets, masks, weights = build_plane_masks(symmetric)
        words = pack_bits(batch)
        rows = np.arange(batch.shape[0])
        field = packed_dot(masks[flips], words, weights,
                           offsets[flips]).astype(float)
        bits = batch[rows, flips]
        signs = 1.0 - 2.0 * bits
        diag = np.diag(matrix)[flips]
        delta = signs * (diag + field - 2.0 * diag * bits)
        np.testing.assert_array_equal(
            delta, batched_energy_delta(matrix, batch, flips))

    @given(integer_model())
    @settings(max_examples=40, deadline=None)
    def test_packed_constraint_load_equals_dot_product(self, model):
        # A constraint row w >= 0 packs into plane masks exactly like a
        # matrix row; its popcount load must equal the dense dot product.
        matrix, batch, _ = model
        weights_matrix = np.abs(matrix)
        offsets, masks, weights = build_plane_masks(weights_matrix)
        words = pack_bits(batch)
        row = np.zeros(batch.shape[0], dtype=int)
        load = packed_dot(masks[row], words, weights, offsets[row])
        np.testing.assert_array_equal(load.astype(float),
                                      batch @ weights_matrix[0])
        assert (offsets == 0).all()  # non-negative rows need no offset

"""ReplayStreams vs real NumPy generators: bit-exact draw replay.

The fused/JIT kernels vectorise the per-replica PCG64 streams instead of
calling each ``Generator`` in a Python loop.  These tests pin the replay
contract against NumPy itself: every ``uniforms``/``integers`` draw matches
what the corresponding ``Generator`` would have produced (including Lemire
rejection resampling and the 32-bit buffering of ``integers``), and
``write_back`` leaves the generators exactly where real draws would have.
"""

import numpy as np
import pytest

from repro.dynamics.acceptance import MetropolisRule, acceptance_probability
from repro.dynamics.schedule import GeometricSchedule
from repro.dynamics.dynamics import Dynamics
from repro.dynamics.driver import LoopDriver
from repro.kernels.base import KernelUnsupportedError
from repro.kernels.streams import (
    BUFFER_OUTPUTS,
    ReplayStreams,
    metropolis_decisions,
    try_replay_streams,
)


def make_generators(count, seed=5):
    return [np.random.default_rng([seed, k]) for k in range(count)]


class TestDrawReplay:
    def test_uniforms_match_generator_random(self):
        generators = make_generators(3)
        control = make_generators(3)
        streams = ReplayStreams(generators)
        lanes = np.arange(3)
        # Cross several refill boundaries (the jump buffer holds
        # BUFFER_OUTPUTS outputs per lane).
        for _ in range(3 * BUFFER_OUTPUTS + 7):
            got = streams.uniforms(lanes)
            expected = [g.random() for g in control]
            np.testing.assert_array_equal(got, expected)

    def test_uniforms_partial_lane_subsets(self):
        generators = make_generators(4)
        control = make_generators(4)
        streams = ReplayStreams(generators)
        rng = np.random.default_rng(0)
        for _ in range(200):
            lanes = np.flatnonzero(rng.random(4) < 0.6)
            if lanes.size == 0:
                continue
            got = streams.uniforms(lanes)
            expected = [control[k].random() for k in lanes]
            np.testing.assert_array_equal(got, expected)

    @pytest.mark.parametrize("bound", [2, 3, 7, 24, 1000, 2**31 + 11])
    def test_integers_match_generator_integers(self, bound):
        generators = make_generators(3)
        control = make_generators(3)
        streams = ReplayStreams(generators)
        for _ in range(150):
            got = streams.integers(bound)
            expected = [g.integers(0, bound) for g in control]
            np.testing.assert_array_equal(got, expected)

    def test_bound_of_one_consumes_no_draws(self):
        generators = make_generators(2)
        control = make_generators(2)
        streams = ReplayStreams(generators)
        assert np.array_equal(streams.integers(1), [0, 0])
        # NumPy's integers(0, 1) consumes nothing either, so the streams
        # stay aligned afterwards.
        np.testing.assert_array_equal(
            streams.uniforms(np.arange(2)),
            [g.random() for g in control])

    def test_mixed_integer_uniform_interleaving(self):
        # integers() buffers the unused high half of each 64-bit output in
        # has_uint32/uinteger; interleaved random() calls must not disturb
        # that bookkeeping.
        generators = make_generators(3)
        control = make_generators(3)
        streams = ReplayStreams(generators)
        lanes = np.arange(3)
        pattern_rng = np.random.default_rng(1)
        for _ in range(300):
            if pattern_rng.random() < 0.5:
                np.testing.assert_array_equal(
                    streams.integers(24),
                    [g.integers(0, 24) for g in control])
            else:
                np.testing.assert_array_equal(
                    streams.uniforms(lanes),
                    [g.random() for g in control])


class TestWriteBack:
    @pytest.mark.parametrize("draws", [0, 1, 7, BUFFER_OUTPUTS,
                                       2 * BUFFER_OUTPUTS + 3])
    def test_generators_resume_exactly_after_write_back(self, draws):
        generators = make_generators(3)
        control = make_generators(3)
        streams = ReplayStreams(generators)
        lanes = np.arange(3)
        for _ in range(draws):
            streams.uniforms(lanes)
            for g in control:
                g.random()
        streams.integers(24)
        for g in control:
            g.integers(0, 24)
        streams.write_back()
        # The written-back generators produce the same continuation as
        # generators that made the identical draws natively -- including the
        # parked 32-bit half left by integers().
        for mine, theirs in zip(generators, control):
            assert mine.bit_generator.state == theirs.bit_generator.state
            assert mine.integers(0, 1000) == theirs.integers(0, 1000)
            assert mine.random() == theirs.random()


class TestEligibility:
    def test_non_pcg64_generators_are_rejected(self):
        bad = [np.random.Generator(np.random.MT19937(3))]
        with pytest.raises(KernelUnsupportedError, match="PCG64"):
            ReplayStreams(bad)

    def _driver(self, generators, dynamics=None, shared_rng=None):
        return LoopDriver(GeometricSchedule(10.0, 0.1), 10, generators,
                          dynamics=dynamics, shared_rng=shared_rng)

    def test_try_replay_accepts_default_configuration(self):
        generators = make_generators(2)
        driver = self._driver(generators)
        assert try_replay_streams(driver, generators, 100) is not None

    def test_try_replay_rejects_shared_rng(self):
        generators = make_generators(2)
        driver = self._driver(generators, dynamics=Dynamics(rng_mode="shared"),
                              shared_rng=np.random.default_rng(0))
        assert try_replay_streams(driver, generators, 100) is None

    def test_try_replay_rejects_missing_generators(self):
        driver = self._driver(make_generators(2))
        assert try_replay_streams(driver, None, 100) is None

    def test_try_replay_rejects_non_metropolis_acceptance(self):
        class CustomRule(MetropolisRule):
            pass

        generators = make_generators(2)
        driver = self._driver(
            generators, dynamics=Dynamics(acceptance=CustomRule()))
        assert try_replay_streams(driver, generators, 100) is None

    def test_try_replay_rejects_oversized_lemire_bound(self):
        generators = make_generators(2)
        driver = self._driver(generators)
        assert try_replay_streams(driver, generators, 2**32 + 1) is None

    def test_try_replay_rejects_non_pcg64(self):
        generators = [np.random.Generator(np.random.MT19937(k))
                      for k in range(2)]
        driver = self._driver(generators)
        assert try_replay_streams(driver, generators, 100) is None


class TestMetropolisDecisions:
    def test_matches_scalar_acceptance_probability(self):
        rng = np.random.default_rng(2)
        step = rng.normal(scale=3.0, size=500)
        temperature = 0.8
        draws = rng.random(500)
        got = metropolis_decisions(step, temperature, draws)
        expected = [d < acceptance_probability(float(s), temperature)
                    for s, d in zip(step, draws)]
        np.testing.assert_array_equal(got, expected)

    def test_negative_step_always_accepts(self):
        step = np.array([-1.0, 0.0, -1e-300])
        draws = np.array([0.999999, 0.999999, 0.999999])
        assert metropolis_decisions(step, 1e-12, draws).all()

    def test_zero_temperature_accepts_only_downhill(self):
        step = np.array([-1.0, 0.0, 1.0])
        draws = np.zeros(3)
        np.testing.assert_array_equal(
            metropolis_decisions(step, 0.0, draws), [True, True, False])

    def test_per_replica_temperature_rows(self):
        step = np.array([1.0, 1.0, -0.5])
        temps = np.array([0.5, 2.0, 1.0])
        draws = np.array([0.2, 0.2, 0.9])
        got = metropolis_decisions(step, temps, draws)
        expected = [d < acceptance_probability(float(s), float(t))
                    for s, t, d in zip(step, temps, draws)]
        np.testing.assert_array_equal(got, expected)

    def test_extreme_uphill_step_rejects_without_warning(self):
        step = np.array([1e6])
        draws = np.array([0.0])
        with np.errstate(all="raise"):
            assert not metropolis_decisions(step, 1e-3, draws)[0]

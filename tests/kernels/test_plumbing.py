"""Kernel-backend plumbing: params, run keys, fallbacks and failure modes.

``params["kernel"]`` travels from :func:`repro.runtime.run_trials` through
the batched trial functions into the engines; these tests pin the runtime
contract around it: per-seed results are backend-invariant, the default
backend canonicalises *out* of store run keys (old keys stay valid), scalar
solvers refuse the param instead of ignoring it, and the ``"auto"`` /
explicit backends fall back / fail the way :mod:`repro.kernels.base`
documents.
"""

import numpy as np
import pytest

from repro.batched.kernels import batched_energies
from repro.dynamics.driver import LoopDriver
from repro.dynamics.moves import SingleFlipMove
from repro.dynamics.schedule import GeometricSchedule
from repro.kernels import (
    KernelUnavailableError,
    KernelUnsupportedError,
    canonical_kernel_param,
    make_sa_kernel,
    resolve_kernel_backend,
)
from repro.kernels.reference import ReferenceSAKernel
from repro.problems.generators import generate_qkp_instance
from repro.runtime import run_trials
from repro.store import CampaignStore


def _has_numba():
    try:
        import numba  # noqa: F401
        return True
    except ImportError:
        return False


@pytest.fixture(scope="module")
def problem():
    return generate_qkp_instance(num_items=20, density=0.5, seed=412,
                                 name="kernel_plumbing_qkp")


PARAMS = {"num_iterations": 60, "use_hardware": False}


class TestBackendNames:
    def test_default_resolution(self):
        assert resolve_kernel_backend(None) == "reference"
        assert resolve_kernel_backend("auto") == "auto"
        assert resolve_kernel_backend("fused") == "fused"

    def test_unknown_backend_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_kernel_backend("fsued")

    def test_default_canonicalises_to_none(self):
        assert canonical_kernel_param(None) is None
        assert canonical_kernel_param("reference") is None
        assert canonical_kernel_param("fused") == "fused"
        assert canonical_kernel_param("auto") == "auto"


class TestRunTrialsParity:
    def test_fused_param_matches_default_per_seed(self, problem):
        default = run_trials(problem, "hycim", num_trials=4, params=PARAMS,
                             backend="vectorized", master_seed=6)
        fused = run_trials(problem, "hycim", num_trials=4,
                           params=dict(PARAMS, kernel="fused"),
                           backend="vectorized", master_seed=6)
        np.testing.assert_array_equal(default.best_energies,
                                      fused.best_energies)
        for a, b in zip(default.results, fused.results):
            assert a.trial_seed == b.trial_seed
            np.testing.assert_array_equal(a.best_configuration,
                                          b.best_configuration)
            assert a.num_accepted_moves == b.num_accepted_moves

    def test_kernel_param_routes_serial_backend_to_engine(self, problem):
        # Requesting a kernel forces the lock-step engine even on the
        # "serial" backend -- per-seed results still match the scalar path.
        serial = run_trials(problem, "hycim", num_trials=3, params=PARAMS,
                            backend="serial", master_seed=6)
        routed = run_trials(problem, "hycim", num_trials=3,
                            params=dict(PARAMS, kernel="fused"),
                            backend="serial", master_seed=6)
        np.testing.assert_array_equal(serial.best_energies,
                                      routed.best_energies)

    def test_scalar_only_solver_refuses_kernel_param(self, problem):
        with pytest.raises(ValueError, match="cannot honour"):
            run_trials(problem, "greedy", num_trials=1,
                       params={"kernel": "fused"})


class TestRunKeyStability:
    def test_explicit_reference_addresses_the_default_run(self, problem,
                                                          tmp_path):
        store = CampaignStore(tmp_path / "store")
        cold = run_trials(problem, "hycim", num_trials=3, params=PARAMS,
                          master_seed=6, store=store)
        assert cold.num_loaded_from_store == 0
        # Spelling out the default backend must hit the same persisted run.
        warm = run_trials(problem, "hycim", num_trials=3,
                          params=dict(PARAMS, kernel="reference"),
                          master_seed=6, store=store)
        assert warm.num_loaded_from_store == 3
        np.testing.assert_array_equal(cold.best_energies, warm.best_energies)

    def test_non_default_backend_addresses_its_own_run(self, problem,
                                                       tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_trials(problem, "hycim", num_trials=2, params=PARAMS,
                   master_seed=6, store=store)
        fused = run_trials(problem, "hycim", num_trials=2,
                           params=dict(PARAMS, kernel="fused"),
                           master_seed=6, store=store)
        # A fused run is only tolerance-equal on float data, so it must not
        # silently resolve to the reference run's shards.
        assert fused.num_loaded_from_store == 0


def _kernel_args(problem, *, single_flip=True, generic_filter=False):
    matrix = problem.to_qubo().matrix
    current = np.zeros((3, problem.num_variables))
    generators = [np.random.default_rng([9, k]) for k in range(3)]
    driver = LoopDriver(GeometricSchedule(10.0, 0.1), 10, generators)
    return dict(
        matrix=matrix, offset=0.0, driver=driver,
        move_generator=SingleFlipMove(), single_flip=single_flip,
        moves_per_iteration=1, current=current,
        current_energy=batched_energies(matrix, current),
        accept_filter=(lambda row: True) if generic_filter else None,
        generators=generators)


class TestConstructionFallbacks:
    def test_auto_falls_back_to_reference_on_unsupported(self, problem):
        # An opaque per-row filter is not expressible incrementally: "auto"
        # lands on the reference kernel instead of raising.
        kernel = make_sa_kernel("auto",
                                **_kernel_args(problem, generic_filter=True))
        assert isinstance(kernel, ReferenceSAKernel)
        assert kernel.backend == "reference"

    def test_explicit_fused_raises_on_unsupported(self, problem):
        with pytest.raises(KernelUnsupportedError, match="accept_filter"):
            make_sa_kernel("fused",
                           **_kernel_args(problem, generic_filter=True))

    def test_explicit_fused_raises_on_generic_moves(self, problem):
        with pytest.raises(KernelUnsupportedError, match="single-flip"):
            make_sa_kernel("fused",
                           **_kernel_args(problem, single_flip=False))

    @pytest.mark.skipif(_has_numba(), reason="numba is installed")
    def test_numba_unavailable_raises(self, problem):
        with pytest.raises(KernelUnavailableError, match="numba"):
            make_sa_kernel("numba", **_kernel_args(problem))

    def test_auto_never_fails_for_support_reasons(self, problem):
        # The QKP matrix is integer-valued, so auto lands on the fastest
        # pure-NumPy backend (packed) unless numba is importable.
        kernel = make_sa_kernel("auto", **_kernel_args(problem))
        assert kernel.backend in ("packed", "numba")

    def test_auto_falls_back_to_fused_on_float_matrices(self, problem):
        # Non-integer coefficients void the popcount exactness guarantee:
        # packed refuses them, so auto lands on fused.
        args = _kernel_args(problem)
        args["matrix"] = args["matrix"] + 0.25
        kernel = make_sa_kernel("auto", **args)
        assert kernel.backend in ("fused", "numba")

    def test_explicit_packed_raises_on_float_matrices(self, problem):
        args = _kernel_args(problem)
        args["matrix"] = args["matrix"] + 0.25
        with pytest.raises(KernelUnsupportedError, match="integer-valued"):
            make_sa_kernel("packed", **args)

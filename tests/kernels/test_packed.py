"""Packed-backend specifics beyond the shared parity suite.

``tests/kernels/test_backend_parity.py`` already runs the packed backend
through every parity scenario (exchange ladders, histories, final RNG
states) via its backend fixture.  This module covers what is unique to the
bit-packed representation: the words/popcount state stays consistent with a
dense recomputation under arbitrary sweeps (hypothesis), block boundaries
are unobservable, the shared-RNG fallback and CSR matrices stay exact, the
store addresses packed runs separately from reference ones, the crossbar's
packed bit-plane accumulation equals the dense plane dot product, and the
packed travelling state is an order of magnitude smaller per replica.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.annealing.sa import SimulatedAnnealer
from repro.batched import BatchedSimulatedAnnealer
from repro.batched.kernels import batched_energies
from repro.core.constraints import InequalityConstraint
from repro.core.sparse import symmetrized_matrix
from repro.dynamics import Dynamics
from repro.dynamics.driver import LoopDriver
from repro.dynamics.schedule import GeometricSchedule
from repro.kernels import make_sa_kernel
from repro.kernels.bits import pack_bits, popcount_rows, unpack_bits
from repro.kernels.packed import PackedSAKernel
from repro.problems.generators import generate_qkp_instance
from repro.runtime import run_trials
from repro.store import CampaignStore

from test_backend_parity import (
    NUM_REPLICAS,
    assert_exact_parity,
    make_generators,
    make_qkp,
)


@st.composite
def annealing_run(draw):
    """An integer QKP-like model, zero starts, and an iteration count."""
    n = draw(st.integers(3, 20))
    m = draw(st.integers(1, 5))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    matrix = -np.triu(rng.integers(0, 40, size=(n, n)).astype(float))
    weights = rng.integers(1, 9, size=n).astype(float)
    constraints = ([InequalityConstraint(weights, float(weights.sum()) * 0.6)]
                   if draw(st.booleans()) else None)
    return matrix, np.zeros((m, n)), constraints, draw(st.integers(1, 60)), \
        draw(st.integers(0, 999))


def _unconsulted_filter(batch):  # pragma: no cover - must never run
    raise AssertionError(
        "the packed kernel must track feasibility incrementally, never "
        "through the opaque batch filter")


def _make_packed(matrix, starts, constraints, num_iterations, seed):
    generators = [np.random.default_rng([seed, k])
                  for k in range(starts.shape[0])]
    driver = LoopDriver(GeometricSchedule(5.0, 0.1), num_iterations,
                        generators)
    current = starts.copy()
    kernel = make_sa_kernel(
        "packed", matrix=matrix, offset=0.0, driver=driver,
        move_generator=None, single_flip=True, moves_per_iteration=1,
        current=current, current_energy=batched_energies(matrix, current),
        accept_filter_batch=(_unconsulted_filter if constraints else None),
        feasibility_constraints=constraints, generators=generators)
    assert isinstance(kernel, PackedSAKernel)
    return kernel


class TestPackedStateConsistency:
    @given(annealing_run())
    @settings(max_examples=40, deadline=None)
    def test_words_equal_dense_recomputation_after_sweeps(self, run):
        matrix, starts, constraints, iterations, seed = run
        kernel = _make_packed(matrix, starts, constraints, iterations, seed)
        kernel.run_block(0, iterations)
        n = matrix.shape[0]
        decoded = unpack_bits(kernel.words, n)
        # The popcount tally and the running constraint loads track the
        # packed words exactly ...
        np.testing.assert_array_equal(kernel._ones,
                                      popcount_rows(kernel.words))
        if constraints is not None:
            weights = np.stack([c.weight_vector for c in constraints], axis=1)
            np.testing.assert_array_equal(kernel.loads, decoded @ weights)
        # ... and the incremental energies equal a full re-evaluation.
        np.testing.assert_array_equal(kernel.current_energy,
                                      batched_energies(matrix, decoded))
        kernel.finalize()
        np.testing.assert_array_equal(kernel.current, decoded)
        np.testing.assert_array_equal(
            kernel.best_energy, batched_energies(matrix, kernel.best))

    @given(annealing_run())
    @settings(max_examples=20, deadline=None)
    def test_one_block_of_k_equals_k_single_steps(self, run):
        matrix, starts, constraints, iterations, seed = run
        fused = _make_packed(matrix, starts, constraints, iterations, seed)
        stepped = _make_packed(matrix, starts, constraints, iterations, seed)
        fused.run_block(0, iterations)
        for iteration in range(iterations):
            stepped.run_block(iteration, 1)
        fused.finalize()
        stepped.finalize()
        np.testing.assert_array_equal(fused.current, stepped.current)
        np.testing.assert_array_equal(fused.best, stepped.best)
        np.testing.assert_array_equal(fused.best_energy, stepped.best_energy)
        np.testing.assert_array_equal(fused.num_accepted, stepped.num_accepted)


@pytest.fixture
def qkp():
    return make_qkp(5)


@pytest.fixture
def qkp_initials(qkp):
    rng = np.random.default_rng(7)
    return np.stack([qkp.random_feasible_configuration(rng)
                     for _ in range(NUM_REPLICAS)])


class TestSharedRNGFallback:
    def test_packed_falls_back_to_driver_draws(self, qkp, qkp_initials):
        # Shared-RNG mode is not stream-replayable; the packed kernel must
        # fall back to driver-mediated draws and still match exactly.
        annealer = SimulatedAnnealer(num_iterations=100)
        shared_ref = np.random.default_rng(5)
        shared_packed = np.random.default_rng(5)
        reference = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_qubo(), qkp_initials, [shared_ref] * NUM_REPLICAS,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            dynamics=Dynamics(rng_mode="shared"), shared_rng=shared_ref,
            kernel="reference")
        packed = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_qubo(), qkp_initials, [shared_packed] * NUM_REPLICAS,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            dynamics=Dynamics(rng_mode="shared"), shared_rng=shared_packed,
            kernel="packed")
        assert_exact_parity(reference, packed)
        assert (shared_ref.bit_generator.state["state"]["state"]
                == shared_packed.bit_generator.state["state"]["state"])


class TestSparsePacked:
    def test_sparse_packed_equals_dense_reference(self, qkp, qkp_initials):
        pytest.importorskip("scipy")
        annealer = SimulatedAnnealer(num_iterations=150)
        ref_gens, gens = make_generators(31), make_generators(31)
        reference = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_qubo(), qkp_initials, ref_gens,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            kernel="reference")
        sparse = BatchedSimulatedAnnealer(annealer).anneal(
            qkp.to_sparse_qubo(), qkp_initials, gens,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints(),
            kernel="packed")
        assert_exact_parity(reference, sparse, (ref_gens, gens))


PARAMS = {"num_iterations": 60, "use_hardware": False}


class TestStoreRunKeys:
    @pytest.fixture
    def problem(self):
        return generate_qkp_instance(num_items=20, density=0.5, seed=412,
                                     name="packed_runkey_qkp")

    def test_packed_addresses_its_own_run(self, problem, tmp_path):
        store = CampaignStore(tmp_path / "store")
        run_trials(problem, "hycim", num_trials=2, params=PARAMS,
                   master_seed=6, store=store)
        packed = run_trials(problem, "hycim", num_trials=2,
                            params=dict(PARAMS, kernel="packed"),
                            master_seed=6, store=store)
        # Exact per-seed parity notwithstanding, an explicit backend keeps
        # its own run key -- loading another backend's shards would hide
        # which backend actually produced the persisted trials.
        assert packed.num_loaded_from_store == 0

    def test_packed_run_resumes_warm(self, problem, tmp_path):
        store = CampaignStore(tmp_path / "store")
        params = dict(PARAMS, kernel="packed")
        cold = run_trials(problem, "hycim", num_trials=3, params=params,
                          master_seed=6, store=store)
        assert cold.num_loaded_from_store == 0
        warm = run_trials(problem, "hycim", num_trials=3, params=params,
                          master_seed=6, store=store)
        assert warm.num_loaded_from_store == 3
        np.testing.assert_array_equal(cold.best_energies, warm.best_energies)
        manifest = store.get_manifest(cold.run_key)
        assert manifest.provenance.get("kernel_resolved") == "packed"


class TestCrossbarBitPlanes:
    def test_conduction_counts_equal_dense_plane_dot(self, qkp):
        from repro.cim.crossbar import FeFETCrossbar

        crossbar = FeFETCrossbar.from_qubo(qkp.to_qubo())
        rng = np.random.default_rng(3)
        states = (rng.random((7, crossbar.num_variables)) < 0.5).astype(float)
        state_words = pack_bits(states)
        for sign, planes in (("pos", crossbar._pos_planes),
                             ("neg", crossbar._neg_planes)):
            packed_planes = crossbar._packed_column_planes(sign)
            for b in range(planes.shape[0]):
                counts = crossbar.conduction_counts(packed_planes[b],
                                                    state_words)
                np.testing.assert_array_equal(
                    counts, (states @ planes[b]).astype(np.int64))


class TestStateFootprint:
    def test_packed_state_is_far_smaller_per_replica(self, qkp, qkp_initials):
        args = dict(
            matrix=qkp.to_qubo().matrix, offset=0.0,
            move_generator=None, single_flip=True, moves_per_iteration=1,
            accept_filter_batch=qkp.is_feasible_batch,
            feasibility_constraints=qkp.linear_feasibility_constraints())
        kernels = {}
        for backend in ("fused", "packed"):
            generators = make_generators(17)
            current = qkp_initials.copy()
            driver = LoopDriver(GeometricSchedule(5.0, 0.1), 10, generators)
            kernels[backend] = make_sa_kernel(
                backend, driver=driver, current=current,
                current_energy=batched_energies(args["matrix"], current),
                generators=generators, **args)
        packed = kernels["packed"].state_nbytes_per_replica()
        fused = kernels["fused"].state_nbytes_per_replica()
        assert packed < fused / 4

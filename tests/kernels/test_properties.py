"""Hypothesis property tests for the fused sweep kernels.

Three invariants back the incremental arithmetic:

1. the batched single-flip delta computed against a CSR matrix equals the
   dense computation, for arbitrary QUBO matrices and flip choices;
2. after an arbitrary run of fused sweeps, the local-field cache and the
   running constraint loads equal a from-scratch recomputation from the
   travelling configurations (and the incremental energies equal a full
   re-evaluation, exactly, on integer data);
3. fusing K iterations into one ``run_block`` call leaves exactly the same
   state as K single-iteration calls (block boundaries are unobservable).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batched.kernels import batched_energies, batched_energy_delta
from repro.core.constraints import InequalityConstraint
from repro.core.sparse import symmetrized_matrix
from repro.dynamics.driver import LoopDriver
from repro.dynamics.schedule import GeometricSchedule
from repro.kernels.fused import FusedSAKernel

scipy_sparse = pytest.importorskip("scipy.sparse")


@st.composite
def qubo_and_batch(draw, max_variables=10, max_replicas=6):
    """A random integer QUBO matrix plus a binary replica batch and flips."""
    n = draw(st.integers(2, max_variables))
    m = draw(st.integers(1, max_replicas))
    element = st.integers(-50, 50)
    matrix = np.array(
        draw(st.lists(st.lists(element, min_size=n, max_size=n),
                      min_size=n, max_size=n)),
        dtype=float)
    batch = np.array(
        draw(st.lists(st.lists(st.integers(0, 1), min_size=n, max_size=n),
                      min_size=m, max_size=m)),
        dtype=float)
    flips = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m,
                                   max_size=m)), dtype=int)
    return matrix, batch, flips


class TestDenseSparseEquality:
    @given(qubo_and_batch())
    @settings(max_examples=60, deadline=None)
    def test_csr_delta_equals_dense_delta(self, data):
        matrix, batch, flips = data
        sparse = scipy_sparse.csr_matrix(matrix)
        dense_delta = batched_energy_delta(matrix, batch, flips)
        sparse_delta = batched_energy_delta(sparse, batch, flips)
        # Integer-valued data: the summation-order difference is invisible.
        np.testing.assert_array_equal(dense_delta, sparse_delta)

    @given(qubo_and_batch())
    @settings(max_examples=60, deadline=None)
    def test_csr_energies_equal_dense_energies(self, data):
        matrix, batch, _ = data
        sparse = scipy_sparse.csr_matrix(matrix)
        np.testing.assert_array_equal(batched_energies(matrix, batch, 3.0),
                                      batched_energies(sparse, batch, 3.0))


def _unconsulted_filter(batch):  # pragma: no cover - must never run
    raise AssertionError(
        "the fused kernel must track feasibility incrementally, never "
        "through the opaque batch filter")


def _make_kernel(matrix, starts, constraints, num_iterations, seed,
                 sparse=False):
    """A FusedSAKernel wired to a fresh driver, plus its travelling arrays."""
    generators = [np.random.default_rng([seed, k])
                  for k in range(starts.shape[0])]
    driver = LoopDriver(GeometricSchedule(5.0, 0.1), num_iterations,
                        generators)
    current = starts.copy()
    energy = batched_energies(matrix, current)
    kernel = FusedSAKernel(
        matrix=scipy_sparse.csr_matrix(matrix) if sparse else matrix,
        offset=0.0, driver=driver, single_flip=True, moves_per_iteration=1,
        current=current, current_energy=energy,
        accept_filter_batch=(_unconsulted_filter if constraints else None),
        constraints=constraints or None, generators=generators)
    return kernel


@st.composite
def annealing_run(draw):
    """An integer QKP-like model, feasible starts, and an iteration count."""
    n = draw(st.integers(3, 12))
    m = draw(st.integers(1, 5))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    matrix = -rng.integers(0, 40, size=(n, n)).astype(float)
    matrix = np.triu(matrix)
    weights = rng.integers(1, 9, size=n).astype(float)
    bound = float(weights.sum()) * 0.6
    constrained = draw(st.booleans())
    constraints = ([InequalityConstraint(weights, bound)]
                   if constrained else [])
    starts = np.zeros((m, n))
    iterations = draw(st.integers(1, 60))
    return matrix, starts, constraints, iterations, draw(st.integers(0, 999))


class TestFieldCacheConsistency:
    @given(annealing_run())
    @settings(max_examples=40, deadline=None)
    def test_caches_equal_recomputation_after_arbitrary_sweeps(self, run):
        matrix, starts, constraints, iterations, seed = run
        kernel = _make_kernel(matrix, starts, constraints, iterations, seed)
        kernel.run_block(0, iterations)
        # Local fields: row k must equal current[k] @ (Q + Q^T) recomputed
        # from scratch.  Integer coefficients make this exact.
        np.testing.assert_array_equal(
            kernel.field, kernel.current @ symmetrized_matrix(matrix))
        # Running constraint loads match a fresh matvec.
        if constraints:
            weights = np.stack([c.weight_vector for c in constraints], axis=1)
            np.testing.assert_array_equal(kernel.loads,
                                          kernel.current @ weights)
            # And the travelling batch still satisfies every constraint.
            for constraint in constraints:
                assert (kernel.current @ constraint.weight_vector
                        <= constraint.bound + 1e-9).all()
        # Incremental energies equal full re-evaluation.
        np.testing.assert_array_equal(kernel.current_energy,
                                      batched_energies(matrix, kernel.current))

    @given(annealing_run())
    @settings(max_examples=20, deadline=None)
    def test_sparse_kernel_caches_equal_recomputation(self, run):
        matrix, starts, constraints, iterations, seed = run
        kernel = _make_kernel(matrix, starts, constraints, iterations, seed,
                              sparse=True)
        kernel.run_block(0, iterations)
        np.testing.assert_array_equal(
            kernel.field, kernel.current @ symmetrized_matrix(matrix))
        np.testing.assert_array_equal(kernel.current_energy,
                                      batched_energies(matrix, kernel.current))


class TestBlockFusionInvariance:
    @given(annealing_run())
    @settings(max_examples=40, deadline=None)
    def test_one_block_of_k_equals_k_single_steps(self, run):
        matrix, starts, constraints, iterations, seed = run
        fused = _make_kernel(matrix, starts, constraints, iterations, seed)
        stepped = _make_kernel(matrix, starts, constraints, iterations, seed)
        fused.run_block(0, iterations)
        for iteration in range(iterations):
            stepped.run_block(iteration, 1)
        fused.finalize()
        stepped.finalize()
        np.testing.assert_array_equal(fused.current, stepped.current)
        np.testing.assert_array_equal(fused.current_energy,
                                      stepped.current_energy)
        np.testing.assert_array_equal(fused.best, stepped.best)
        np.testing.assert_array_equal(fused.best_energy, stepped.best_energy)
        np.testing.assert_array_equal(fused.num_accepted, stepped.num_accepted)
        np.testing.assert_array_equal(fused.num_feasible, stepped.num_feasible)
        np.testing.assert_array_equal(fused.num_skipped, stepped.num_skipped)

"""Unit tests for the quadratic knapsack problem."""

import numpy as np
import pytest

from repro.problems.qkp import QuadraticKnapsackProblem


class TestConstruction:
    def test_symmetry_required(self):
        with pytest.raises(ValueError):
            QuadraticKnapsackProblem(np.array([[1.0, 2.0], [3.0, 1.0]]),
                                     np.array([1.0, 1.0]), 2.0)

    def test_positive_weights_required(self):
        with pytest.raises(ValueError):
            QuadraticKnapsackProblem(np.eye(2), np.array([1.0, 0.0]), 2.0)

    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            QuadraticKnapsackProblem(np.eye(2), np.array([1.0, 1.0]), 0.0)

    def test_weight_length_must_match(self):
        with pytest.raises(ValueError):
            QuadraticKnapsackProblem(np.eye(3), np.array([1.0, 1.0]), 2.0)


class TestObjectiveAndFeasibility:
    def test_objective_counts_pairwise_profit_once(self, tiny_qkp):
        assert tiny_qkp.objective([1, 0, 1]) == pytest.approx(10 + 8 + 7)
        assert tiny_qkp.objective([1, 1, 1]) == pytest.approx(10 + 6 + 8 + 3 + 7 + 2)
        assert tiny_qkp.objective([0, 0, 0]) == 0.0

    def test_total_weight_and_feasibility(self, tiny_qkp):
        assert tiny_qkp.total_weight([1, 1, 0]) == pytest.approx(11)
        assert not tiny_qkp.is_feasible([1, 1, 0])
        assert tiny_qkp.is_feasible([0, 1, 1])  # exactly at capacity

    def test_brute_force_best(self, tiny_qkp):
        best_x, best_value = tiny_qkp.brute_force_best()
        assert best_value == pytest.approx(25.0)
        np.testing.assert_array_equal(best_x, [1.0, 0.0, 1.0])

    def test_constraint_object(self, tiny_qkp):
        constraint = tiny_qkp.constraint()
        assert constraint.bound == 9.0
        np.testing.assert_array_equal(constraint.weight_vector, tiny_qkp.weights)

    def test_density(self, tiny_qkp, small_qkp):
        assert tiny_qkp.density() == pytest.approx(1.0)
        assert 0.0 < small_qkp.density() < 1.0


class TestQUBOConversions:
    def test_to_qubo_energy_is_negated_objective(self, tiny_qkp, rng):
        qubo = tiny_qkp.to_qubo()
        for _ in range(8):
            x = rng.integers(0, 2, size=3).astype(float)
            assert qubo.energy(x) == pytest.approx(-tiny_qkp.objective(x))

    def test_to_inequality_qubo_matches_eq6(self, tiny_qkp, rng):
        model = tiny_qkp.to_inequality_qubo()
        for bits in range(8):
            x = np.array([(bits >> k) & 1 for k in range(3)], dtype=float)
            if tiny_qkp.is_feasible(x):
                assert model.energy(x) == pytest.approx(-tiny_qkp.objective(x))
            else:
                assert model.energy(x) == 0.0

    def test_inequality_qubo_max_coefficient_is_problem_scale(self, small_qkp):
        # HyCiM's Q_max equals the largest profit, independent of the capacity.
        model = small_qkp.to_inequality_qubo()
        assert model.qubo.max_abs_coefficient == pytest.approx(
            float(np.max(np.abs(small_qkp.profits)))
        )


class TestSampling:
    def test_random_feasible_configuration_is_feasible(self, small_qkp, rng):
        for _ in range(50):
            x = small_qkp.random_feasible_configuration(rng)
            assert small_qkp.is_feasible(x)

    def test_random_infeasible_configuration_is_infeasible(self, small_qkp, rng):
        for _ in range(50):
            x = small_qkp.random_infeasible_configuration(rng)
            assert not small_qkp.is_feasible(x)

    def test_infeasible_sampling_fails_when_capacity_exceeds_total_weight(self, rng):
        problem = QuadraticKnapsackProblem(np.eye(3), np.ones(3), capacity=10.0)
        with pytest.raises(RuntimeError):
            problem.random_infeasible_configuration(rng, max_tries=20)

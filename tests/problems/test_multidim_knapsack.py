"""Unit tests for the multi-dimensional quadratic knapsack problem."""

import numpy as np
import pytest

from repro.annealing.hycim import HyCiMSolver
from repro.annealing.moves import KnapsackNeighborhoodMove
from repro.annealing.schedule import GeometricSchedule
from repro.exact.brute_force import solve_brute_force
from repro.problems.multidim_knapsack import (
    MultiDimensionalKnapsackProblem,
    generate_mdqkp_instance,
)


@pytest.fixture
def small_mdqkp():
    """3 items, 2 resource dimensions, optimum computable by hand.

    Profits: diag (10, 6, 8), p02 = 7.  Weights: dimension 0 = (4, 7, 2) with
    C0 = 9, dimension 1 = (5, 1, 5) with C1 = 8.  Items {0, 2} fit dimension 0
    (6 <= 9) but not dimension 1 (10 > 8), so the optimum drops to item 0
    alone or items {1, 2}: profit({1,2}) = 6 + 8 = 14 beats 10.
    """
    profits = np.array([
        [10.0, 0.0, 7.0],
        [0.0, 6.0, 0.0],
        [7.0, 0.0, 8.0],
    ])
    weights = np.array([
        [4.0, 7.0, 2.0],
        [5.0, 1.0, 5.0],
    ])
    capacities = np.array([9.0, 8.0])
    return MultiDimensionalKnapsackProblem(profits=profits, weights=weights,
                                           capacities=capacities, name="small_md")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiDimensionalKnapsackProblem(np.array([[1.0, 2.0], [3.0, 1.0]]),
                                            np.ones((1, 2)), np.array([1.0]))
        with pytest.raises(ValueError):
            MultiDimensionalKnapsackProblem(np.eye(2), np.ones((1, 3)), np.array([1.0]))
        with pytest.raises(ValueError):
            MultiDimensionalKnapsackProblem(np.eye(2), np.ones((2, 2)), np.array([1.0]))
        with pytest.raises(ValueError):
            MultiDimensionalKnapsackProblem(np.eye(2), -np.ones((1, 2)), np.array([1.0]))
        with pytest.raises(ValueError):
            MultiDimensionalKnapsackProblem(np.eye(2), np.ones((1, 2)), np.array([0.0]))

    def test_dimensions(self, small_mdqkp):
        assert small_mdqkp.num_items == 3
        assert small_mdqkp.num_constraints == 2


class TestObjectiveAndFeasibility:
    def test_objective(self, small_mdqkp):
        assert small_mdqkp.objective([1, 0, 1]) == pytest.approx(25.0)
        assert small_mdqkp.objective([0, 1, 1]) == pytest.approx(14.0)

    def test_resource_usage_and_feasibility(self, small_mdqkp):
        np.testing.assert_allclose(small_mdqkp.resource_usage([1, 0, 1]), [6.0, 10.0])
        assert not small_mdqkp.is_feasible([1, 0, 1])   # violates dimension 1
        assert small_mdqkp.is_feasible([0, 1, 1])
        assert small_mdqkp.is_feasible([1, 0, 0])

    def test_brute_force_optimum(self, small_mdqkp):
        result = solve_brute_force(small_mdqkp)
        assert result.best_value == pytest.approx(14.0)
        np.testing.assert_array_equal(result.best_configuration, [0.0, 1.0, 1.0])

    def test_constraints_objects(self, small_mdqkp):
        constraints = small_mdqkp.constraints()
        assert len(constraints) == 2
        assert constraints[0].bound == 9.0
        assert constraints[1].bound == 8.0


class TestQUBOAndSolver:
    def test_inequality_qubo_has_one_constraint_per_dimension(self, small_mdqkp):
        model = small_mdqkp.to_inequality_qubo()
        assert model.num_constraints == 2
        assert model.num_variables == 3
        assert model.energy([0, 1, 1]) == pytest.approx(-14.0)
        assert model.energy([1, 0, 1]) == 0.0  # infeasible in dimension 1

    def test_hycim_builds_one_filter_per_constraint(self, small_mdqkp):
        solver = HyCiMSolver(small_mdqkp, use_hardware=True, num_iterations=10)
        assert len(solver.inequality_filters) == 2

    def test_hycim_solves_small_instance(self, small_mdqkp):
        solver = HyCiMSolver(small_mdqkp, use_hardware=True, num_iterations=200, seed=0)
        result = solver.solve()
        assert result.feasible
        assert result.best_objective == pytest.approx(14.0)

    def test_hycim_respects_all_constraints_on_random_instance(self):
        problem = generate_mdqkp_instance(num_items=16, num_constraints=3,
                                          max_weight=10, seed=4)
        solver = HyCiMSolver(problem, use_hardware=False, num_iterations=60,
                             moves_per_iteration=16,
                             move_generator=KnapsackNeighborhoodMove(),
                             schedule=GeometricSchedule(2000.0, 2.0), seed=1)
        result = solver.solve()
        assert result.feasible
        assert problem.is_feasible(result.best_configuration)
        assert result.best_objective > 0


class TestGenerator:
    def test_generator_shapes_and_tightness(self):
        problem = generate_mdqkp_instance(num_items=20, num_constraints=4,
                                          tightness=0.4, seed=1)
        assert problem.num_items == 20
        assert problem.num_constraints == 4
        # Capacities are roughly the requested fraction of the total weights.
        ratios = problem.capacities / problem.weights.sum(axis=1)
        assert np.all(ratios <= 0.45)

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            generate_mdqkp_instance(num_constraints=0)
        with pytest.raises(ValueError):
            generate_mdqkp_instance(tightness=1.5)

    def test_random_feasible_configuration(self, rng):
        problem = generate_mdqkp_instance(num_items=15, num_constraints=3, seed=2)
        for _ in range(20):
            assert problem.is_feasible(problem.random_feasible_configuration(rng))

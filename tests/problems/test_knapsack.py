"""Unit tests for the linear knapsack problem."""

import numpy as np
import pytest

from repro.problems.knapsack import KnapsackProblem


@pytest.fixture
def simple_knapsack():
    return KnapsackProblem(profits=np.array([10.0, 5.0, 7.0, 3.0]),
                           weights=np.array([4.0, 3.0, 5.0, 1.0]),
                           capacity=8.0)


class TestBasics:
    def test_objective_and_weight(self, simple_knapsack):
        assert simple_knapsack.objective([1, 0, 0, 1]) == pytest.approx(13.0)
        assert simple_knapsack.total_weight([1, 0, 0, 1]) == pytest.approx(5.0)

    def test_feasibility(self, simple_knapsack):
        assert simple_knapsack.is_feasible([1, 1, 0, 1])      # weight 8
        assert not simple_knapsack.is_feasible([1, 0, 1, 0])  # weight 9

    def test_brute_force(self, simple_knapsack):
        _, best = simple_knapsack.brute_force_best()
        assert best == pytest.approx(18.0)  # items 0, 1, 3: weight 8, profit 18

    def test_validation(self):
        with pytest.raises(ValueError):
            KnapsackProblem(np.ones(3), np.ones(2), 2.0)
        with pytest.raises(ValueError):
            KnapsackProblem(np.ones(2), np.array([1.0, -1.0]), 2.0)
        with pytest.raises(ValueError):
            KnapsackProblem(np.ones(2), np.ones(2), -1.0)


class TestConversions:
    def test_qubo_is_diagonal_and_negated(self, simple_knapsack, rng):
        qubo = simple_knapsack.to_qubo()
        assert np.count_nonzero(qubo.matrix - np.diag(np.diag(qubo.matrix))) == 0
        x = rng.integers(0, 2, size=4).astype(float)
        assert qubo.energy(x) == pytest.approx(-simple_knapsack.objective(x))

    def test_inequality_qubo_constraint_detached(self, simple_knapsack):
        model = simple_knapsack.to_inequality_qubo()
        assert model.num_constraints == 1
        assert model.num_variables == 4
        assert model.energy([1, 0, 1, 0]) == 0.0  # infeasible
        assert model.energy([1, 1, 0, 1]) == pytest.approx(-18.0)

    def test_lift_to_quadratic_preserves_objective(self, simple_knapsack, rng):
        qkp = simple_knapsack.to_quadratic()
        for _ in range(10):
            x = rng.integers(0, 2, size=4).astype(float)
            assert qkp.objective(x) == pytest.approx(simple_knapsack.objective(x))
        assert qkp.capacity == simple_knapsack.capacity

    def test_random_feasible_configuration(self, simple_knapsack, rng):
        for _ in range(25):
            assert simple_knapsack.is_feasible(
                simple_knapsack.random_feasible_configuration(rng)
            )

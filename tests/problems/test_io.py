"""Unit tests for the Billionnet-Soutif QKP file format reader/writer."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.problems.generators import generate_qkp_instance
from repro.problems.io import content_hash, read_qkp_file, write_qkp_file
from repro.problems.qkp import QuadraticKnapsackProblem


class TestRoundTrip:
    def test_round_trip_preserves_instance(self, tmp_path, tiny_qkp):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, tiny_qkp.profits)
        np.testing.assert_array_equal(restored.weights, tiny_qkp.weights)
        assert restored.capacity == tiny_qkp.capacity
        assert restored.name == tiny_qkp.name

    def test_round_trip_generated_instance(self, tmp_path):
        problem = generate_qkp_instance(num_items=25, density=0.5, seed=9)
        path = tmp_path / "gen.txt"
        write_qkp_file(problem, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, problem.profits)
        np.testing.assert_array_equal(restored.weights, problem.weights)
        assert restored.capacity == problem.capacity

    def test_objective_preserved_through_round_trip(self, tmp_path, tiny_qkp, rng):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        restored = read_qkp_file(path)
        for _ in range(8):
            x = rng.integers(0, 2, size=3).astype(float)
            assert restored.objective(x) == pytest.approx(tiny_qkp.objective(x))


class TestFormat:
    def test_written_layout(self, tmp_path, tiny_qkp):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "tiny"
        assert int(lines[1]) == 3
        assert [int(v) for v in lines[2].split()] == [10, 6, 8]
        assert [int(v) for v in lines[3].split()] == [3, 7]
        assert [int(v) for v in lines[4].split()] == [2]
        assert lines[5] == ""
        assert int(lines[6]) == 0
        assert int(lines[7]) == 9

    def test_reader_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n3\n1 2 3\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)

    def test_reader_rejects_wrong_row_length(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n3\n1 2 3\n4 5 6\n7\n\n0\n5\n1 1 1\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)

    def test_reader_rejects_wrong_weight_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n2\n1 2\n3\n\n0\n5\n1\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)


class TestContentHash:
    def test_deterministic_and_content_sensitive(self):
        a = generate_qkp_instance(num_items=12, seed=3)
        b = generate_qkp_instance(num_items=12, seed=3)
        c = generate_qkp_instance(num_items=12, seed=4)
        assert content_hash(a) == content_hash(b)
        assert content_hash(a) != content_hash(c)
        assert len(content_hash(a)) == 64

    def test_name_is_not_content(self):
        problem = generate_qkp_instance(num_items=8, seed=1, name="alpha")
        renamed = QuadraticKnapsackProblem(
            profits=problem.profits, weights=problem.weights,
            capacity=problem.capacity, name="beta")
        assert content_hash(problem) == content_hash(renamed)

    def test_stable_across_array_dtype(self):
        weights = [2, 3, 4]
        profits = np.diag([5, 6, 7])
        as_int = QuadraticKnapsackProblem(
            profits=profits.astype(np.int64), weights=np.array(weights, dtype=np.int32),
            capacity=6, name="dtype")
        as_float = QuadraticKnapsackProblem(
            profits=profits.astype(np.float64), weights=np.array(weights, dtype=float),
            capacity=6.0, name="dtype")
        assert content_hash(as_int) == content_hash(as_float)

    def test_object_attributes_hash_by_value_not_address(self):
        """Equal instances carrying object-valued attributes must hash
        identically (a default repr would embed the memory address and give
        every process a fresh hash, defeating store resume)."""
        class Aux:
            def __init__(self, level):
                self.level = level

        def build(level):
            problem = generate_qkp_instance(num_items=6, seed=2)
            problem.aux = Aux(level)
            return problem

        assert content_hash(build(1)) == content_hash(build(1))
        assert content_hash(build(1)) != content_hash(build(2))

    def test_different_problem_classes_never_collide(self):
        from repro.problems.generators import generate_maxcut_instance

        qkp = generate_qkp_instance(num_items=6, seed=2)
        maxcut = generate_maxcut_instance(num_nodes=6, edge_probability=0.5,
                                          seed=2)
        assert content_hash(qkp) != content_hash(maxcut)

    def test_save_load_round_trip_preserves_hash(self, tmp_path):
        problem = generate_qkp_instance(num_items=20, density=0.6, seed=8)
        path = tmp_path / "inst.txt"
        write_qkp_file(problem, path)
        assert content_hash(read_qkp_file(path)) == content_hash(problem)

    def test_non_integral_capacity_survives_save_load(self, tmp_path):
        # The float-formatting instability the hash surfaced: int() used to
        # silently truncate a non-integral capacity on write.
        problem = QuadraticKnapsackProblem(
            profits=np.diag([3.0, 4.0]), weights=np.array([1.0, 2.0]),
            capacity=2.5, name="fractional")
        path = tmp_path / "frac.txt"
        write_qkp_file(problem, path)
        restored = read_qkp_file(path)
        assert restored.capacity == 2.5
        assert content_hash(restored) == content_hash(problem)

    def test_non_integral_profits_and_weights_round_trip(self, tmp_path):
        profits = np.array([[0.1 + 0.2, 1.25], [1.25, 2.0]])
        problem = QuadraticKnapsackProblem(
            profits=profits, weights=np.array([0.5, 1.5]), capacity=1.75,
            name="floats")
        path = tmp_path / "floats.txt"
        write_qkp_file(problem, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, problem.profits)
        np.testing.assert_array_equal(restored.weights, problem.weights)
        assert content_hash(restored) == content_hash(problem)


# --------------------------------------------------------------------- #
# Property tests: any integer QKP instance round-trips exactly.
# --------------------------------------------------------------------- #
@st.composite
def qkp_instances(draw):
    """Random integer-valued QKP instances in the Billionnet-Soutif domain."""
    n = draw(st.integers(min_value=1, max_value=10))
    diagonal = draw(st.lists(st.integers(0, 100), min_size=n, max_size=n))
    profits = np.zeros((n, n))
    np.fill_diagonal(profits, diagonal)
    for i in range(n):
        for j in range(i + 1, n):
            value = draw(st.integers(0, 100))
            profits[i, j] = profits[j, i] = value
    weights = draw(st.lists(st.integers(1, 50), min_size=n, max_size=n))
    capacity = draw(st.integers(1, sum(weights)))
    name = draw(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
                        min_size=1, max_size=12))
    return QuadraticKnapsackProblem(
        profits=profits, weights=np.asarray(weights, dtype=float),
        capacity=float(capacity), name=name)


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(problem=qkp_instances())
    def test_write_read_round_trip_is_identity(self, tmp_path, problem):
        path = tmp_path / "prop.txt"
        write_qkp_file(problem, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, problem.profits)
        np.testing.assert_array_equal(restored.weights, problem.weights)
        assert restored.capacity == problem.capacity
        assert restored.name == problem.name
        assert restored.num_items == problem.num_items
        assert content_hash(restored) == content_hash(problem)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(problem=qkp_instances(), cut=st.integers(min_value=1, max_value=6),
           garbage=st.sampled_from(["", "not a number\n", "1 2 x\n", "-0.5.3\n"]))
    def test_truncated_or_corrupted_file_raises_value_error(self, tmp_path,
                                                            problem, cut, garbage):
        path = tmp_path / "prop_bad.txt"
        write_qkp_file(problem, path)
        lines = path.read_text().splitlines(keepends=True)
        kept = max(2, len(lines) - cut)
        path.write_text("".join(lines[:kept]) + garbage)
        with pytest.raises(ValueError):
            read_qkp_file(path)

"""Unit tests for the Billionnet-Soutif QKP file format reader/writer."""

import numpy as np
import pytest

from repro.problems.generators import generate_qkp_instance
from repro.problems.io import read_qkp_file, write_qkp_file


class TestRoundTrip:
    def test_round_trip_preserves_instance(self, tmp_path, tiny_qkp):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, tiny_qkp.profits)
        np.testing.assert_array_equal(restored.weights, tiny_qkp.weights)
        assert restored.capacity == tiny_qkp.capacity
        assert restored.name == tiny_qkp.name

    def test_round_trip_generated_instance(self, tmp_path):
        problem = generate_qkp_instance(num_items=25, density=0.5, seed=9)
        path = tmp_path / "gen.txt"
        write_qkp_file(problem, path)
        restored = read_qkp_file(path)
        np.testing.assert_array_equal(restored.profits, problem.profits)
        np.testing.assert_array_equal(restored.weights, problem.weights)
        assert restored.capacity == problem.capacity

    def test_objective_preserved_through_round_trip(self, tmp_path, tiny_qkp, rng):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        restored = read_qkp_file(path)
        for _ in range(8):
            x = rng.integers(0, 2, size=3).astype(float)
            assert restored.objective(x) == pytest.approx(tiny_qkp.objective(x))


class TestFormat:
    def test_written_layout(self, tmp_path, tiny_qkp):
        path = tmp_path / "tiny.txt"
        write_qkp_file(tiny_qkp, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "tiny"
        assert int(lines[1]) == 3
        assert [int(v) for v in lines[2].split()] == [10, 6, 8]
        assert [int(v) for v in lines[3].split()] == [3, 7]
        assert [int(v) for v in lines[4].split()] == [2]
        assert lines[5] == ""
        assert int(lines[6]) == 0
        assert int(lines[7]) == 9

    def test_reader_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n3\n1 2 3\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)

    def test_reader_rejects_wrong_row_length(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n3\n1 2 3\n4 5 6\n7\n\n0\n5\n1 1 1\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)

    def test_reader_rejects_wrong_weight_count(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("name\n2\n1 2\n3\n\n0\n5\n1\n")
        with pytest.raises(ValueError):
            read_qkp_file(path)
